"""Expected performability over the outage-duration distribution.

The figures evaluate fixed durations and the availability analyzer rolls
Monte-Carlo years; between them sits the per-outage expectation an operator
quotes in a design review: *"when an outage hits, what do we expect?"*

:class:`ExpectedOutageAnalyzer` integrates the simulator's outcome metrics
over Figure 1(b) deterministically — log-spaced quadrature nodes within
each duration bucket, weighted by the bucket masses — so the answer is
reproducible to the last digit and needs no sampling-error judgement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Tuple

from repro.core.configurations import BackupConfiguration
from repro.core.performability import (
    DEFAULT_NUM_SERVERS,
    make_datacenter,
    plan_power_budget_watts,
)
from repro.errors import ConfigurationError, TechniqueError
from repro.outages.distributions import (
    OUTAGE_DURATION_DISTRIBUTION,
    EmpiricalDistribution,
)
from repro.servers.server import PAPER_SERVER, ServerSpec
from repro.sim.outage_sim import simulate_outage
from repro.techniques.base import OutageTechnique, TechniqueContext
from repro.workloads.base import WorkloadSpec

#: Where the unbounded tail bucket is truncated for quadrature (the paper
#: recommends geo-redirection past ~4 h anyway).
TAIL_TRUNCATION_SECONDS = 8 * 3600.0


@dataclass(frozen=True)
class ExpectedOutageReport:
    """Per-outage expectations for one (configuration, technique) pairing.

    Attributes:
        configuration_name / technique_name: The pairing.
        expected_downtime_seconds: E[down time | an outage occurs].
        expected_performance: E[mean performance during the outage].
        crash_probability: P[volatile state is lost].
        expected_ups_charge: E[battery charge consumed].
        nodes: Quadrature nodes used, for audit.
    """

    configuration_name: str
    technique_name: str
    expected_downtime_seconds: float
    expected_performance: float
    crash_probability: float
    expected_ups_charge: float
    nodes: Tuple[Tuple[float, float], ...]  # (duration, weight)

    @property
    def expected_downtime_minutes(self) -> float:
        return self.expected_downtime_seconds / 60.0


class ExpectedOutageAnalyzer:
    """Deterministic quadrature over the outage-duration distribution.

    Args:
        workload: The application.
        distribution: Duration distribution (defaults to Figure 1(b)).
        nodes_per_bucket: Log-spaced evaluation points per bucket.
        num_servers / server: Cluster shape (metrics are scale-free).
    """

    def __init__(
        self,
        workload: WorkloadSpec,
        distribution: EmpiricalDistribution = OUTAGE_DURATION_DISTRIBUTION,
        nodes_per_bucket: int = 3,
        num_servers: int = DEFAULT_NUM_SERVERS,
        server: ServerSpec = PAPER_SERVER,
    ):
        if nodes_per_bucket <= 0:
            raise ConfigurationError("nodes_per_bucket must be positive")
        self.workload = workload
        self.distribution = distribution
        self.nodes_per_bucket = nodes_per_bucket
        self.num_servers = num_servers
        self.server = server

    def quadrature_nodes(self) -> List[Tuple[float, float]]:
        """(duration, weight) nodes; weights sum to 1."""
        nodes: List[Tuple[float, float]] = []
        for bucket in self.distribution.buckets:
            low = max(bucket.low_seconds, 1.0)
            high = bucket.high_seconds
            if math.isinf(high):
                high = TAIL_TRUNCATION_SECONDS
            if high <= low:
                continue
            weight = bucket.probability / self.nodes_per_bucket
            for i in range(self.nodes_per_bucket):
                # Log-spaced interior points (matches the log-uniform
                # within-bucket sampling of the Monte-Carlo path).
                fraction = (i + 0.5) / self.nodes_per_bucket
                duration = math.exp(
                    math.log(low) + fraction * (math.log(high) - math.log(low))
                )
                nodes.append((duration, weight))
        return nodes

    def analyze(
        self,
        configuration: BackupConfiguration,
        technique: OutageTechnique,
        lost_work_seconds: Optional[float] = None,
    ) -> ExpectedOutageReport:
        """Integrate the simulator's metrics over the duration distribution."""
        datacenter = make_datacenter(
            self.workload, configuration, self.num_servers, self.server
        )
        context = TechniqueContext(
            cluster=datacenter.cluster,
            workload=self.workload,
            power_budget_watts=plan_power_budget_watts(datacenter),
        )
        try:
            plan = technique.compile_plan(context)
        except TechniqueError as exc:
            raise ConfigurationError(
                f"{technique.name} cannot compile on {configuration.name}: {exc}"
            ) from exc

        nodes = self.quadrature_nodes()
        total_weight = sum(weight for _, weight in nodes)
        downtime = 0.0
        performance = 0.0
        crash = 0.0
        charge = 0.0
        for duration, weight in nodes:
            outcome = simulate_outage(
                datacenter, plan, duration, lost_work_seconds=lost_work_seconds
            )
            downtime += weight * outcome.downtime_seconds
            performance += weight * outcome.mean_performance
            crash += weight * (1.0 if outcome.crashed else 0.0)
            charge += weight * outcome.ups_charge_consumed
        return ExpectedOutageReport(
            configuration_name=configuration.name,
            technique_name=plan.technique_name,
            expected_downtime_seconds=downtime / total_weight,
            expected_performance=performance / total_weight,
            crash_probability=crash / total_weight,
            expected_ups_charge=charge / total_weight,
            nodes=tuple(nodes),
        )


def whatif_cell(spec: Mapping[str, Any], seed: Any) -> ExpectedOutageReport:
    """Runner job: one deterministic what-if expectation.

    The spec carries only registry names and scalars, so the job's
    fingerprint is stable across processes and the result caches cleanly
    (``seed`` is ignored — the quadrature is deterministic).  This is
    the unit the evaluation service dispatches for ``whatif`` queries.
    """
    from repro.core.configurations import get_configuration
    from repro.techniques.registry import get_technique
    from repro.workloads.registry import get_workload

    analyzer = ExpectedOutageAnalyzer(
        get_workload(spec["workload"]),
        nodes_per_bucket=spec["nodes_per_bucket"],
        num_servers=spec["servers"],
    )
    return analyzer.analyze(
        get_configuration(spec["configuration"]),
        get_technique(spec["technique"]),
    )
