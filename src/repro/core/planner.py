"""Provisioning planner: the minimum-cost backup for an outage target.

Answers the paper's headline question — "What is the minimum cost, and the
resulting backup capacity, to handle different outage durations?" — by
searching jointly over techniques and DG-less UPS sizings (and, optionally,
DG-backed configurations) subject to performability targets:

* a floor on mean performance during the outage, and
* a ceiling on total down time.

This is what produces insights like "for outages up to 40 mins, DGs are not
needed" and "40 % performance degradation tolerance -> 40 % cost savings".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.configurations import BackupConfiguration, PAPER_CONFIGURATIONS
from repro.core.costs import BackupCostModel
from repro.core.performability import (
    DEFAULT_NUM_SERVERS,
    PerformabilityPoint,
    evaluate_point,
)
from repro.core.selection import DEFAULT_CANDIDATES, lowest_cost_backup
from repro.errors import InfeasibleError
from repro.servers.server import PAPER_SERVER, ServerSpec
from repro.techniques.registry import get_technique
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class ProvisioningResult:
    """The planner's answer.

    Attributes:
        configuration: The chosen backup sizing.
        technique_name: The outage-handling technique to pair with it.
        normalized_cost: Cost relative to MaxPerf.
        point: Performability at the target outage duration.
    """

    configuration: BackupConfiguration
    technique_name: str
    normalized_cost: float
    point: PerformabilityPoint


class ProvisioningPlanner:
    """Searches (technique x sizing) for the cheapest plan meeting targets.

    Args:
        workload: The application to protect.
        num_servers: Cluster size (performability is scale-free).
        server: Server model.
        cost_model: Pricing (defaults to Table 1).
    """

    def __init__(
        self,
        workload: WorkloadSpec,
        num_servers: int = DEFAULT_NUM_SERVERS,
        server: ServerSpec = PAPER_SERVER,
        cost_model: Optional[BackupCostModel] = None,
    ):
        self.workload = workload
        self.num_servers = num_servers
        self.server = server
        self.cost_model = cost_model if cost_model is not None else BackupCostModel()

    def _meets(
        self,
        point: PerformabilityPoint,
        min_performance: float,
        max_downtime_seconds: float,
    ) -> bool:
        return (
            point.feasible
            and point.performance >= min_performance - 1e-9
            and point.downtime_seconds <= max_downtime_seconds + 1e-9
        )

    def plan(
        self,
        outage_seconds: float,
        min_performance: float = 0.0,
        max_downtime_seconds: float = math.inf,
        technique_names: Iterable[str] = DEFAULT_CANDIDATES,
    ) -> ProvisioningResult:
        """Cheapest DG-less (technique, UPS) meeting the targets.

        Raises:
            InfeasibleError: No candidate meets the targets (e.g. demanding
                zero down time without any backup money).
        """
        best: Optional[ProvisioningResult] = None
        for name in technique_names:
            technique = get_technique(name)
            try:
                sized = lowest_cost_backup(
                    technique,
                    self.workload,
                    outage_seconds,
                    num_servers=self.num_servers,
                    server=self.server,
                    cost_model=self.cost_model,
                )
            except InfeasibleError:
                continue
            if not self._meets(sized.point, min_performance, max_downtime_seconds):
                continue
            if best is None or sized.normalized_cost < best.normalized_cost:
                best = ProvisioningResult(
                    configuration=sized.configuration,
                    technique_name=name,
                    normalized_cost=sized.normalized_cost,
                    point=sized.point,
                )
        if best is None:
            raise InfeasibleError(
                f"no (technique, UPS) meets perf>={min_performance:.2f}, "
                f"downtime<={max_downtime_seconds / 60:.1f} min for a "
                f"{outage_seconds / 60:.0f} min outage"
            )
        return best

    def compare_named_configurations(
        self,
        outage_seconds: float,
        configurations: Iterable[BackupConfiguration] = PAPER_CONFIGURATIONS,
        technique_names: Iterable[str] = DEFAULT_CANDIDATES,
    ) -> List[Tuple[BackupConfiguration, PerformabilityPoint]]:
        """Best-technique point for each named configuration — the Figure 5
        data generator, reusable for custom configuration lists."""
        from repro.core.selection import best_technique  # local: avoids cycle at import

        rows = []
        for config in configurations:
            point = best_technique(
                config,
                self.workload,
                outage_seconds,
                candidates=technique_names,
                num_servers=self.num_servers,
                server=self.server,
            )
            rows.append((config, point))
        return rows
