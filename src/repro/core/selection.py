"""The Section 6 selection rules.

Two searches recur throughout the evaluation:

* **best technique for a configuration** (Figure 5): "for each backup
  configuration, we choose the system technique that offers the highest
  performance and lowest down time" — we rank candidates by (down time,
  then -performance) and return the winner's point;
* **lowest-cost backup for a technique** (Figures 6-9): "for each system
  technique, we use the lowest cost backup configuration ... at each of the
  offered performance and availability operating points" — a DG-less search
  over UPS power fractions and battery runtimes for the cheapest
  installation under which the technique rides out the outage without a
  crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.configurations import BackupConfiguration
from repro.core.costs import BackupCostModel
from repro.core.performability import (
    DEFAULT_NUM_SERVERS,
    PerformabilityPoint,
    evaluate_point,
)
from repro.errors import InfeasibleError, TechniqueError
from repro.power.ups import DEFAULT_FREE_RUNTIME_SECONDS
from repro.servers.server import PAPER_SERVER, ServerSpec
from repro.techniques.base import OutageTechnique
from repro.techniques.registry import PAPER_TECHNIQUES, get_technique
from repro.workloads.base import WorkloadSpec

#: Candidate set for best-technique selection: the paper's techniques plus
#: the do-nothing endpoint and the deepest-throttle variant (the auto
#: variant picks the *fastest* fitting P-state; the deepest one trades
#: performance for runtime, which wins on long outages).
DEFAULT_CANDIDATES: Tuple[str, ...] = ("full-service",) + PAPER_TECHNIQUES + (
    "throttling-p6",
)

#: UPS power fractions explored by the lowest-cost search.
_POWER_FRACTION_GRID = tuple(i / 20.0 for i in range(1, 21))  # 0.05 .. 1.00

#: Resolution of the battery-runtime binary search (seconds).
_RUNTIME_TOLERANCE = 5.0


def _point_evaluator(engine: str):
    """Resolve an engine name to an ``evaluate_point``-compatible callable.

    ``"scalar"`` is the per-outage simulator; ``"batch"`` runs each point
    on a cached :class:`repro.vsim.kernel.PlanKernel` — bit-identical
    points (see docs/BATCH.md), faster sizing searches.
    """
    if engine == "scalar":
        return evaluate_point
    if engine == "batch":
        from repro.vsim.select import evaluate_point_batch

        return evaluate_point_batch
    raise ValueError(f"unknown engine {engine!r}; use scalar or batch")


def best_technique(
    configuration: BackupConfiguration,
    workload: WorkloadSpec,
    outage_seconds: float,
    candidates: Optional[Iterable[str]] = None,
    num_servers: int = DEFAULT_NUM_SERVERS,
    server: ServerSpec = PAPER_SERVER,
    engine: str = "scalar",
) -> PerformabilityPoint:
    """The winning technique's point for a configuration (Figure 5 rule)."""
    names = list(candidates) if candidates is not None else list(DEFAULT_CANDIDATES)
    evaluator = _point_evaluator(engine)
    points = [
        evaluator(
            configuration,
            get_technique(name),
            workload,
            outage_seconds,
            num_servers=num_servers,
            server=server,
        )
        for name in names
    ]
    feasible = [p for p in points if p.feasible]
    pool = feasible if feasible else points
    return min(pool, key=lambda p: (round(p.downtime_seconds, 3), -p.performance))


@dataclass(frozen=True)
class SizedBackup:
    """Result of the lowest-cost UPS search for one technique.

    Attributes:
        configuration: The winning DG-less configuration.
        point: The technique's performability at that configuration.
        normalized_cost: Cost relative to MaxPerf.
    """

    configuration: BackupConfiguration
    point: PerformabilityPoint
    normalized_cost: float


def lowest_cost_backup(
    technique: OutageTechnique,
    workload: WorkloadSpec,
    outage_seconds: float,
    num_servers: int = DEFAULT_NUM_SERVERS,
    server: ServerSpec = PAPER_SERVER,
    cost_model: Optional[BackupCostModel] = None,
    power_fractions: Sequence[float] = _POWER_FRACTION_GRID,
    max_runtime_seconds: Optional[float] = None,
    engine: str = "scalar",
) -> SizedBackup:
    """Cheapest DG-less UPS under which ``technique`` survives the outage.

    "Survives" means the plan compiles within the UPS power rating and the
    simulation completes without a crash (state is either sustained or
    safely parked).  Raises :class:`InfeasibleError` when no grid point
    works — e.g. Throttling against a multi-hour outage.
    """
    model = cost_model if cost_model is not None else BackupCostModel()
    evaluator = _point_evaluator(engine)
    if max_runtime_seconds is None:
        # Enough headroom for save phases that stretch past the outage.
        max_runtime_seconds = 4.0 * outage_seconds + 7200.0

    best: Optional[SizedBackup] = None
    for fraction in power_fractions:
        runtime = _minimal_runtime(
            technique,
            workload,
            outage_seconds,
            fraction,
            num_servers,
            server,
            max_runtime_seconds,
            evaluator=evaluator,
        )
        if runtime is None:
            continue
        config = BackupConfiguration(
            name=f"ups-{fraction:.2f}p-{runtime / 60:.0f}min",
            dg_power_fraction=0.0,
            ups_power_fraction=fraction,
            ups_runtime_seconds=runtime,
        )
        point = evaluator(
            config,
            technique,
            workload,
            outage_seconds,
            num_servers=num_servers,
            server=server,
            cost_model=model,
        )
        if not point.feasible or point.crashed:
            continue
        cost = config.normalized_cost(model)
        if best is None or cost < best.normalized_cost:
            best = SizedBackup(
                configuration=config, point=point, normalized_cost=cost
            )
    if best is None:
        raise InfeasibleError(
            f"{technique.name} cannot survive a {outage_seconds / 60:.0f} min "
            "outage on any UPS-only backup in the search grid"
        )
    return best


def _minimal_runtime(
    technique: OutageTechnique,
    workload: WorkloadSpec,
    outage_seconds: float,
    power_fraction: float,
    num_servers: int,
    server: ServerSpec,
    max_runtime_seconds: float,
    evaluator=evaluate_point,
) -> Optional[float]:
    """Binary-search the smallest battery runtime avoiding a crash.

    Feasibility is monotone in runtime (more energy at every load level),
    so a standard bisection applies once any feasible upper bound exists.
    ``evaluator`` is any ``evaluate_point``-compatible callable (see
    :func:`_point_evaluator`).
    """

    def survives(runtime_seconds: float) -> bool:
        config = BackupConfiguration(
            name="probe",
            dg_power_fraction=0.0,
            ups_power_fraction=power_fraction,
            ups_runtime_seconds=runtime_seconds,
        )
        try:
            point = evaluator(
                config,
                technique,
                workload,
                outage_seconds,
                num_servers=num_servers,
                server=server,
            )
        except TechniqueError:  # pragma: no cover - evaluate_point absorbs
            return False
        return point.feasible and not point.crashed

    low = DEFAULT_FREE_RUNTIME_SECONDS
    if survives(low):
        return low
    high = max(low * 2, 600.0)
    while high <= max_runtime_seconds and not survives(high):
        high *= 2.0
    if high > max_runtime_seconds:
        if not survives(max_runtime_seconds):
            return None
        high = max_runtime_seconds
    lo, hi = low, high
    while hi - lo > _RUNTIME_TOLERANCE:
        mid = (lo + hi) / 2.0
        if survives(mid):
            hi = mid
        else:
            lo = mid
    return hi


def _rank_job(spec, seed) -> Optional["SizedBackup"]:
    """Runner job: one technique's lowest-cost sizing (None if infeasible)."""
    try:
        return lowest_cost_backup(
            get_technique(spec["technique"]),
            spec["workload"],
            spec["outage_seconds"],
            num_servers=spec["num_servers"],
            server=spec["server"],
            engine=spec.get("engine", "scalar"),
        )
    except InfeasibleError:
        return None


def rank_jobs(
    workload: WorkloadSpec,
    outage_seconds: float,
    technique_names: Iterable[str] = PAPER_TECHNIQUES,
    num_servers: int = DEFAULT_NUM_SERVERS,
    server: ServerSpec = PAPER_SERVER,
    engine: str = "scalar",
) -> List["Job"]:
    """The ranking's runner job list — one sizing search per technique.

    Deterministic (no seeds), so the fingerprints key an on-disk cache
    across CLI runs and the evaluation service alike.  Reduce the values
    with :func:`reduce_rank`.  The ``engine`` knob enters each spec only
    when non-default, so scalar fingerprints (and cache entries) are
    unchanged; batch jobs fingerprint separately even though their values
    are bit-identical.
    """
    _point_evaluator(engine)  # validate the name before building jobs
    names = list(technique_names)
    specs: List[dict] = []
    for name in names:
        spec = {
            "technique": name,
            "workload": workload,
            "outage_seconds": outage_seconds,
            "num_servers": num_servers,
            "server": server,
        }
        if engine != "scalar":
            spec["engine"] = engine
        specs.append(spec)
    from repro.runner.jobs import make_jobs

    return make_jobs(_rank_job, specs, labels=names)


def reduce_rank(values: Iterable[Optional[SizedBackup]]) -> List[SizedBackup]:
    """Fold :func:`rank_jobs` values: drop infeasibles, sort cheapest-first."""
    results = [sized for sized in values if sized is not None]
    results.sort(key=lambda sized: sized.normalized_cost)
    return results


def rank_techniques(
    workload: WorkloadSpec,
    outage_seconds: float,
    technique_names: Iterable[str] = PAPER_TECHNIQUES,
    num_servers: int = DEFAULT_NUM_SERVERS,
    server: ServerSpec = PAPER_SERVER,
    executor: Optional["BaseExecutor"] = None,
    engine: str = "scalar",
) -> List[SizedBackup]:
    """Every technique's lowest-cost sizing, sorted cheapest-first; the
    Figure 6-9 bar-chart generator.  Infeasible techniques are omitted.

    Args:
        executor: Optional :class:`repro.runner.BaseExecutor` — the
            per-technique sizing searches run as independent jobs on it
            (parallel and/or cached); ``None`` keeps the in-process loop.
        engine: ``"scalar"`` or ``"batch"`` (kernel-backed point
            evaluation; identical rankings — see docs/BATCH.md).
    """
    if executor is None:
        from repro.runner.executor import SerialExecutor

        executor = SerialExecutor()
    report = executor.run(
        rank_jobs(
            workload,
            outage_seconds,
            technique_names=technique_names,
            num_servers=num_servers,
            server=server,
            engine=engine,
        )
    )
    return reduce_rank(report.values)
