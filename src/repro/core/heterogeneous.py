"""Heterogeneous provisioning: different backup tiers for different apps.

Section 7: "Multiple datacenters or sections in a datacenter could have
different backup configurations, in the spectrum of cost-performability
choices we outlined.  Capacity planning could depend on historic data about
multiple application requirements and cost preferences."

This module implements that planner.  A fleet is described as *sections* —
(workload, fraction of servers, performability target) — and the planner
answers two questions:

* **tiered plan** — the cheapest (technique, UPS sizing) *per section*,
  blended by fleet fraction; and
* **uniform baseline** — the cheapest *single* configuration that meets
  every section's target simultaneously (what a one-size-fits-all build
  would cost).

The gap between the two is the value of heterogeneity, and the planner's
output doubles as the workload-to-tier assignment Section 7 calls for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.configurations import BackupConfiguration
from repro.core.costs import BackupCostModel
from repro.core.performability import DEFAULT_NUM_SERVERS, evaluate_point
from repro.core.planner import ProvisioningPlanner, ProvisioningResult
from repro.core.selection import DEFAULT_CANDIDATES
from repro.errors import ConfigurationError
from repro.servers.server import PAPER_SERVER, ServerSpec
from repro.techniques.registry import get_technique
from repro.units import minutes
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class SectionRequirement:
    """One section of the fleet and its performability target.

    Attributes:
        workload: The application hosted on this section.
        fleet_fraction: Share of the facility's servers (sections sum to 1).
        min_performance: Required mean performance during the outage.
        max_downtime_seconds: Down-time ceiling (during + after).
    """

    workload: WorkloadSpec
    fleet_fraction: float
    min_performance: float = 0.0
    max_downtime_seconds: float = math.inf

    def __post_init__(self) -> None:
        if not 0 < self.fleet_fraction <= 1:
            raise ConfigurationError("fleet_fraction must be in (0, 1]")
        if not 0 <= self.min_performance <= 1:
            raise ConfigurationError("min_performance must be in [0, 1]")
        if self.max_downtime_seconds < 0:
            raise ConfigurationError("max_downtime_seconds must be >= 0")


@dataclass(frozen=True)
class SectionAssignment:
    """A section's chosen tier."""

    requirement: SectionRequirement
    result: ProvisioningResult

    @property
    def weighted_cost(self) -> float:
        return self.requirement.fleet_fraction * self.result.normalized_cost


@dataclass(frozen=True)
class HeterogeneousPlan:
    """The planner's full answer.

    Attributes:
        assignments: Per-section tiers.
        blended_cost: Fleet-fraction-weighted normalised cost.
        uniform_baseline_cost: Cheapest single configuration meeting every
            target (None if the uniform search found nothing feasible).
    """

    assignments: Sequence[SectionAssignment]
    blended_cost: float
    uniform_baseline_cost: Optional[float]

    @property
    def heterogeneity_savings(self) -> Optional[float]:
        """Fractional savings of tiering vs the uniform build."""
        if self.uniform_baseline_cost is None or self.uniform_baseline_cost == 0:
            return None
        return 1.0 - self.blended_cost / self.uniform_baseline_cost


#: Uniform-search grid (coarse on purpose — it prices a *baseline*).
_UNIFORM_POWER_FRACTIONS = tuple(i / 10.0 for i in range(1, 11))
_UNIFORM_RUNTIMES_SECONDS = tuple(
    minutes(m) for m in (2, 5, 10, 20, 40, 80, 160)
)


class HeterogeneousPlanner:
    """Plans tiered backup for a multi-application fleet.

    Args:
        outage_seconds: Design outage duration.
        num_servers: Per-section cluster size used for evaluation
            (performability is scale-free; fractions weight the costs).
        server: Server model.
        cost_model: Pricing.
    """

    def __init__(
        self,
        outage_seconds: float,
        num_servers: int = DEFAULT_NUM_SERVERS,
        server: ServerSpec = PAPER_SERVER,
        cost_model: Optional[BackupCostModel] = None,
    ):
        if outage_seconds <= 0:
            raise ConfigurationError("outage duration must be positive")
        self.outage_seconds = outage_seconds
        self.num_servers = num_servers
        self.server = server
        self.cost_model = cost_model if cost_model is not None else BackupCostModel()

    # -- tiered plan ----------------------------------------------------------

    def plan(
        self, requirements: Iterable[SectionRequirement]
    ) -> HeterogeneousPlan:
        """Cheapest per-section tiers plus the uniform baseline."""
        reqs = list(requirements)
        if not reqs:
            raise ConfigurationError("at least one section is required")
        total_fraction = sum(r.fleet_fraction for r in reqs)
        if abs(total_fraction - 1.0) > 1e-6:
            raise ConfigurationError(
                f"fleet fractions sum to {total_fraction}, expected 1.0"
            )
        assignments: List[SectionAssignment] = []
        for requirement in reqs:
            planner = ProvisioningPlanner(
                requirement.workload,
                num_servers=self.num_servers,
                server=self.server,
                cost_model=self.cost_model,
            )
            result = planner.plan(
                outage_seconds=self.outage_seconds,
                min_performance=requirement.min_performance,
                max_downtime_seconds=requirement.max_downtime_seconds,
            )
            assignments.append(
                SectionAssignment(requirement=requirement, result=result)
            )
        blended = sum(a.weighted_cost for a in assignments)
        uniform = self._cheapest_uniform(reqs)
        return HeterogeneousPlan(
            assignments=tuple(assignments),
            blended_cost=blended,
            uniform_baseline_cost=uniform,
        )

    # -- uniform baseline -----------------------------------------------------------

    def _section_satisfied(
        self,
        configuration: BackupConfiguration,
        requirement: SectionRequirement,
    ) -> bool:
        """Whether ANY candidate technique meets the section's target on
        this configuration."""
        for name in DEFAULT_CANDIDATES:
            point = evaluate_point(
                configuration,
                get_technique(name),
                requirement.workload,
                self.outage_seconds,
                num_servers=self.num_servers,
                server=self.server,
                cost_model=self.cost_model,
            )
            if (
                point.feasible
                and point.performance >= requirement.min_performance - 1e-9
                and point.downtime_seconds
                <= requirement.max_downtime_seconds + 1e-9
            ):
                return True
        return False

    def _cheapest_uniform(
        self, requirements: Sequence[SectionRequirement]
    ) -> Optional[float]:
        best: Optional[float] = None
        for fraction in _UNIFORM_POWER_FRACTIONS:
            for runtime in _UNIFORM_RUNTIMES_SECONDS:
                configuration = BackupConfiguration(
                    name=f"uniform-{fraction:.1f}p-{runtime / 60:.0f}min",
                    dg_power_fraction=0.0,
                    ups_power_fraction=fraction,
                    ups_runtime_seconds=runtime,
                )
                cost = configuration.normalized_cost(self.cost_model)
                if best is not None and cost >= best:
                    continue  # cannot improve; skip the expensive check
                if all(
                    self._section_satisfied(configuration, requirement)
                    for requirement in requirements
                ):
                    best = cost
        return best
