"""Performability evaluation: one (configuration, technique, workload,
outage) tuple -> cost + performance + down time.

"Performability" is the paper's umbrella term for performance and
availability during (and after) an outage; this module produces the
:class:`PerformabilityPoint` every figure in Section 6 plots, by

1. materialising the configuration against the cluster's nameplate peak,
2. compiling the technique's plan against the *UPS* power rating (during
   the DG-transfer gap only the UPS can carry load, so that is the budget
   a plan must fit — Section 6.1's DG-SmallPUPS rides out the gap with a
   technique sized to the half-power UPS),
3. executing the plan in the outage simulator, and
4. pricing the configuration with the Section 3 cost model.

A technique that cannot fit the budget (no P-state deep enough, say) yields
an *infeasible* point rather than an exception, because the figures need to
show exactly where techniques fall off the map ("Throttling ... becomes
infeasible to sustain the application beyond 4 hours").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.configurations import BackupConfiguration
from repro.core.costs import BackupCostModel
from repro.errors import TechniqueError
from repro.faults import FaultDraw
from repro.servers.cluster import Cluster
from repro.servers.server import PAPER_SERVER, ServerSpec
from repro.sim.datacenter import Datacenter
from repro.sim.metrics import OutageOutcome
from repro.sim.outage_sim import simulate_outage
from repro.techniques.base import OutageTechnique, TechniqueContext
from repro.workloads.base import WorkloadSpec

#: Cluster size used throughout the evaluation.  The paper notes a small
#: setup "can be used to glean nearly all the insights" of datacenter scale;
#: performability metrics are scale-free under homogeneous sizing.
DEFAULT_NUM_SERVERS = 16


@dataclass(frozen=True)
class PerformabilityPoint:
    """One evaluated operating point.

    Attributes:
        configuration_name: Table 3 configuration (or a custom name).
        technique_name: The outage-handling technique.
        workload_name: The application.
        outage_seconds: Outage duration evaluated.
        normalized_cost: Backup cap-ex relative to MaxPerf.
        feasible: The technique could compile within the power budget.
        performance: Mean normalised throughput during the outage (0 when
            infeasible).
        downtime_seconds: Total down time, during + after (inf when
            infeasible).
        outcome: Full simulator outcome (None when infeasible).
    """

    configuration_name: str
    technique_name: str
    workload_name: str
    outage_seconds: float
    normalized_cost: float
    feasible: bool
    performance: float
    downtime_seconds: float
    outcome: Optional[OutageOutcome]

    @property
    def crashed(self) -> bool:
        return self.outcome.crashed if self.outcome is not None else True

    @property
    def downtime_minutes(self) -> float:
        return self.downtime_seconds / 60.0


def make_datacenter(
    workload: WorkloadSpec,
    configuration: BackupConfiguration,
    num_servers: int = DEFAULT_NUM_SERVERS,
    server: ServerSpec = PAPER_SERVER,
) -> Datacenter:
    """Materialise a configuration for a homogeneous cluster."""
    cluster = Cluster(
        spec=server, num_servers=num_servers, utilization=workload.utilization
    )
    ups, generator = configuration.materialize(cluster.peak_power_watts)
    return Datacenter.assemble(
        cluster=cluster, workload=workload, ups=ups, generator=generator
    )


def plan_power_budget_watts(datacenter: Datacenter) -> float:
    """The power ceiling plans must fit (see module docstring)."""
    if datacenter.ups.is_provisioned:
        return datacenter.ups.power_capacity_watts
    if datacenter.generator.is_provisioned:
        return datacenter.generator.power_capacity_watts
    return math.inf


def evaluate_point(
    configuration: BackupConfiguration,
    technique: OutageTechnique,
    workload: WorkloadSpec,
    outage_seconds: float,
    num_servers: int = DEFAULT_NUM_SERVERS,
    server: ServerSpec = PAPER_SERVER,
    cost_model: Optional[BackupCostModel] = None,
    lost_work_seconds: Optional[float] = None,
    faults: Optional["FaultDraw"] = None,
) -> PerformabilityPoint:
    """Evaluate one operating point end to end (see module docstring).

    ``faults`` optionally injects one :class:`~repro.faults.FaultDraw` of
    backup failures into the outage (what-if studies: "this point, but the
    engine dies after 20 minutes").
    """
    datacenter = make_datacenter(workload, configuration, num_servers, server)
    cost = configuration.normalized_cost(cost_model)
    context = TechniqueContext(
        cluster=datacenter.cluster,
        workload=workload,
        power_budget_watts=plan_power_budget_watts(datacenter),
    )
    try:
        plan = technique.compile_plan(context)
    except TechniqueError:
        return PerformabilityPoint(
            configuration_name=configuration.name,
            technique_name=technique.name,
            workload_name=workload.name,
            outage_seconds=outage_seconds,
            normalized_cost=cost,
            feasible=False,
            performance=0.0,
            downtime_seconds=math.inf,
            outcome=None,
        )
    outcome = simulate_outage(
        datacenter, plan, outage_seconds, lost_work_seconds, faults=faults
    )
    return PerformabilityPoint(
        configuration_name=configuration.name,
        technique_name=technique.name,
        workload_name=workload.name,
        outage_seconds=outage_seconds,
        normalized_cost=cost,
        feasible=True,
        performance=outcome.mean_performance,
        downtime_seconds=outcome.downtime_seconds,
        outcome=outcome,
    )
