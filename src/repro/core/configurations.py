"""The backup configuration space of Table 3.

A configuration expresses DG and UPS capacities *relative* to the facility
peak (the paper's normalisation), so the same nine named points apply to a
4-server rack and a 10 MW hall.  ``materialize`` turns a configuration plus
a concrete peak power into physical :class:`UPSSpec`/:class:`DieselGeneratorSpec`
objects for the simulator, and the cost model prices them.

Table 3, normalised to MaxPerf:

=====================  ====  =====  =========  =====
configuration          DG    UPS P  UPS E      cost
=====================  ====  =====  =========  =====
MaxPerf                1     1      2 min      1.00
MinCost                0     0      0 min      0.00
NoDG                   0     1      2 min      0.38
NoUPS                  1     0      0 min      0.63
DG-SmallPUPS           1     0.5    2 min      0.81
SmallDG-SmallPUPS      0.5   0.5    2 min      0.50
SmallPUPS              0     0.5    2 min      0.19
LargeEUPS              0     1      30 min     0.55
SmallP-LargeEUPS       0     0.5    62 min     0.38
=====================  ====  =====  =========  =====
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.core.costs import BackupCostModel
from repro.errors import ConfigurationError
from repro.power.generator import DieselGeneratorSpec
from repro.power.ups import UPSSpec
from repro.units import minutes


@dataclass(frozen=True)
class BackupConfiguration:
    """One point in the underprovisioning space, relative to facility peak.

    Attributes:
        name: Table 3 name.
        dg_power_fraction: DG rating / facility peak.
        ups_power_fraction: UPS rating / facility peak.
        ups_runtime_seconds: Battery runtime at the UPS's rated power.
    """

    name: str
    dg_power_fraction: float
    ups_power_fraction: float
    ups_runtime_seconds: float

    def __post_init__(self) -> None:
        if self.dg_power_fraction < 0 or self.ups_power_fraction < 0:
            raise ConfigurationError("capacity fractions must be >= 0")
        if self.ups_runtime_seconds < 0:
            raise ConfigurationError("UPS runtime must be >= 0")
        if self.ups_power_fraction == 0 and self.ups_runtime_seconds > 0:
            raise ConfigurationError("runtime without UPS power is meaningless")

    # -- materialisation ------------------------------------------------------

    def ups_spec(self, peak_power_watts: float) -> UPSSpec:
        if self.ups_power_fraction == 0:
            return UPSSpec.none()
        return UPSSpec(
            power_capacity_watts=self.ups_power_fraction * peak_power_watts,
            rated_runtime_seconds=self.ups_runtime_seconds,
        )

    def generator_spec(self, peak_power_watts: float) -> DieselGeneratorSpec:
        if self.dg_power_fraction == 0:
            return DieselGeneratorSpec.none()
        return DieselGeneratorSpec(
            power_capacity_watts=self.dg_power_fraction * peak_power_watts
        )

    def materialize(
        self, peak_power_watts: float
    ) -> Tuple[UPSSpec, DieselGeneratorSpec]:
        """Physical specs for a facility of ``peak_power_watts``."""
        if peak_power_watts <= 0:
            raise ConfigurationError("peak power must be positive")
        return self.ups_spec(peak_power_watts), self.generator_spec(peak_power_watts)

    def normalized_cost(self, model: "BackupCostModel | None" = None) -> float:
        """Cost relative to MaxPerf (peak-independent; Table 3 column)."""
        if model is None:
            model = BackupCostModel()
        reference_peak = 1000.0  # 1 KW; the ratio is scale-free
        ups, dg = self.materialize(reference_peak)
        return model.normalized_cost(ups, dg, reference_peak)

    # -- derivation helpers ------------------------------------------------------

    def with_runtime(self, ups_runtime_seconds: float) -> "BackupConfiguration":
        return replace(self, ups_runtime_seconds=ups_runtime_seconds)

    def with_name(self, name: str) -> "BackupConfiguration":
        return replace(self, name=name)


def _table3() -> Dict[str, BackupConfiguration]:
    free = minutes(2)
    rows = [
        BackupConfiguration("MaxPerf", 1.0, 1.0, free),
        BackupConfiguration("MinCost", 0.0, 0.0, 0.0),
        BackupConfiguration("NoDG", 0.0, 1.0, free),
        BackupConfiguration("NoUPS", 1.0, 0.0, 0.0),
        BackupConfiguration("DG-SmallPUPS", 1.0, 0.5, free),
        BackupConfiguration("SmallDG-SmallPUPS", 0.5, 0.5, free),
        BackupConfiguration("SmallPUPS", 0.0, 0.5, free),
        BackupConfiguration("LargeEUPS", 0.0, 1.0, minutes(30)),
        BackupConfiguration("SmallP-LargeEUPS", 0.0, 0.5, minutes(62)),
    ]
    return {row.name.lower(): row for row in rows}


_CONFIGURATIONS = _table3()

#: Table 3, in row order.
PAPER_CONFIGURATIONS: Tuple[BackupConfiguration, ...] = tuple(
    _CONFIGURATIONS.values()
)

#: The six configurations Figure 5 plots.
FIGURE5_CONFIGURATIONS: Tuple[str, ...] = (
    "MaxPerf",
    "DG-SmallPUPS",
    "LargeEUPS",
    "NoDG",
    "SmallP-LargeEUPS",
    "MinCost",
)


def configuration_names() -> List[str]:
    return [config.name for config in PAPER_CONFIGURATIONS]


def get_configuration(name: str) -> BackupConfiguration:
    """Look up a Table 3 configuration by name (case-insensitive)."""
    config = _CONFIGURATIONS.get(name.lower())
    if config is None:
        raise ConfigurationError(
            f"unknown configuration {name!r}; known: {', '.join(configuration_names())}"
        )
    return config
