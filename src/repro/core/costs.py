"""The backup-infrastructure cost model of Section 3 (Eq. 1, Eq. 2, Table 1).

Cap-ex is expressed as amortised $/year under linear depreciation (DG and
UPS power electronics over 12 years, lead-acid batteries over 4 years —
already folded into the Table 1 per-unit rates).  Op-ex (fuel, conversion
losses) is negligible because the backup is exercised only during rare
outages, and the paper ignores it; so do we.

Equations::

    DGCost  = DGPowerCost * DGPowerCapacity                          (1)
    UPSCost = UPSPowerCost * UPSPowerCapacity
            + UPSEnergyCost * (UPSEnergyCapacity
                               - UPSPowerCapacity * FreeRunTime)     (2)

with Table 1 rates: $83.3/KW/yr (DG), $50/KW/yr (UPS power), $50/KWh/yr
(UPS energy), FreeRunTime = 2 min.  The free-runtime subtraction never goes
negative: base energy comes bundled with the power rating (the Ragone-plot
argument), so a UPS specced below the free runtime still pays full power
cost and zero energy cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.generator import DieselGeneratorSpec
from repro.power.ups import UPSSpec
from repro.units import minutes, to_kilowatt_hours, to_kilowatts


@dataclass(frozen=True)
class CostParameters:
    """Per-unit amortised cap-ex rates (Table 1).

    Attributes:
        dg_power_cost_per_kw_year: DG $/KW/yr.
        ups_power_cost_per_kw_year: UPS power electronics $/KW/yr.
        ups_energy_cost_per_kwh_year: Battery energy $/KWh/yr.
        free_runtime_seconds: Battery runtime bundled free with the power
            rating.
    """

    dg_power_cost_per_kw_year: float = 83.3
    ups_power_cost_per_kw_year: float = 50.0
    ups_energy_cost_per_kwh_year: float = 50.0
    free_runtime_seconds: float = minutes(2)

    def __post_init__(self) -> None:
        for name in (
            "dg_power_cost_per_kw_year",
            "ups_power_cost_per_kw_year",
            "ups_energy_cost_per_kwh_year",
            "free_runtime_seconds",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


#: Table 1, as published.
PAPER_COST_PARAMETERS = CostParameters()


@dataclass(frozen=True)
class CostBreakdown:
    """Annual cap-ex split by component (all $/year)."""

    dg_dollars_per_year: float
    ups_power_dollars_per_year: float
    ups_energy_dollars_per_year: float

    @property
    def ups_dollars_per_year(self) -> float:
        return self.ups_power_dollars_per_year + self.ups_energy_dollars_per_year

    @property
    def total_dollars_per_year(self) -> float:
        return self.dg_dollars_per_year + self.ups_dollars_per_year


class BackupCostModel:
    """Prices (UPS, DG) pairs with Eq. (1)/(2).

    Battery-chemistry cost asymmetries (the Section 7 Li-ion discussion) are
    honoured through the UPS spec's chemistry multipliers, so the same model
    prices the lead-acid baseline and the ablation.
    """

    def __init__(self, parameters: CostParameters = PAPER_COST_PARAMETERS):
        self.parameters = parameters

    def dg_cost(self, generator: DieselGeneratorSpec) -> float:
        """Eq. (1): $/year for a DG plant."""
        return self.parameters.dg_power_cost_per_kw_year * to_kilowatts(
            generator.power_capacity_watts
        )

    def ups_cost(self, ups: UPSSpec) -> float:
        """Eq. (2): $/year for a UPS installation.

        The free base energy is whatever the *cost model's* FreeRunTime
        grants for the provisioned power (the spec's own free-runtime field
        tracks the same quantity; the model parameter wins so sensitivity
        sweeps can vary it in one place).
        """
        if not ups.is_provisioned:
            return 0.0
        chem = ups.chemistry
        power_kw = to_kilowatts(ups.power_capacity_watts)
        power_cost = (
            self.parameters.ups_power_cost_per_kw_year
            * chem.power_cost_multiplier
            * power_kw
        )
        free_energy_joules = (
            ups.power_capacity_watts * self.parameters.free_runtime_seconds
        )
        extra_energy_kwh = to_kilowatt_hours(
            max(0.0, ups.rated_energy_joules - free_energy_joules)
        )
        energy_cost = (
            self.parameters.ups_energy_cost_per_kwh_year
            * chem.energy_cost_multiplier
            * extra_energy_kwh
        )
        return power_cost + energy_cost

    def breakdown(
        self, ups: UPSSpec, generator: DieselGeneratorSpec
    ) -> CostBreakdown:
        """Component-wise annual cost."""
        ups_total = self.ups_cost(ups)
        if ups.is_provisioned:
            chem = ups.chemistry
            power_part = (
                self.parameters.ups_power_cost_per_kw_year
                * chem.power_cost_multiplier
                * to_kilowatts(ups.power_capacity_watts)
            )
        else:
            power_part = 0.0
        return CostBreakdown(
            dg_dollars_per_year=self.dg_cost(generator),
            ups_power_dollars_per_year=power_part,
            ups_energy_dollars_per_year=ups_total - power_part,
        )

    def total_cost(self, ups: UPSSpec, generator: DieselGeneratorSpec) -> float:
        """Total backup cap-ex, $/year."""
        return self.ups_cost(ups) + self.dg_cost(generator)

    def baseline_cost(self, peak_power_watts: float) -> float:
        """Cost of today's practice (MaxPerf): full-power DG + full-power
        UPS at the free base runtime — the paper's normalisation unit."""
        if peak_power_watts <= 0:
            raise ConfigurationError("peak power must be positive")
        ups = UPSSpec(
            power_capacity_watts=peak_power_watts,
            rated_runtime_seconds=self.parameters.free_runtime_seconds,
            free_runtime_seconds=self.parameters.free_runtime_seconds,
        )
        dg = DieselGeneratorSpec(power_capacity_watts=peak_power_watts)
        return self.total_cost(ups, dg)

    def normalized_cost(
        self,
        ups: UPSSpec,
        generator: DieselGeneratorSpec,
        peak_power_watts: float,
    ) -> float:
        """Cost relative to MaxPerf at the same facility peak (Table 3)."""
        return self.total_cost(ups, generator) / self.baseline_cost(peak_power_watts)
