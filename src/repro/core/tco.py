"""TCO analysis: when does skipping the diesel generators pay? (Figure 10)

Section 7 illustrates with Google's 2011 numbers: ~260 MW of datacenter
capacity and ~$38 B revenue give $0.28/KW/min of revenue at risk, plus
$0.003/KW/min of idled server depreciation ($2000/server over 4 years).
Unavailability therefore costs ~$0.283/KW/min, while *not* provisioning DGs
saves $83.3/KW/yr — so underprovisioning stays profitable until yearly
outage minutes reach ``83.3 / 0.283 ≈ 294 min`` (~5 h/yr), far above what
Figure 1 suggests a typical site experiences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.costs import CostParameters, PAPER_COST_PARAMETERS
from repro.errors import ConfigurationError
from repro.outages.events import OutageSchedule
from repro.units import to_minutes


@dataclass(frozen=True)
class TCOModel:
    """Outage cost vs backup savings, per KW of capacity.

    Attributes:
        revenue_per_kw_minute: Revenue lost per KW-minute of unavailability
            (Google-2011 estimate: $0.28).
        depreciation_per_kw_minute: Idled-server cap-ex per KW-minute
            ($2000/server over 4 years: ~$0.003).
        cost_parameters: Backup pricing (supplies the DG savings rate).
    """

    revenue_per_kw_minute: float = 0.28
    depreciation_per_kw_minute: float = 0.003
    cost_parameters: CostParameters = PAPER_COST_PARAMETERS

    def __post_init__(self) -> None:
        if self.revenue_per_kw_minute < 0 or self.depreciation_per_kw_minute < 0:
            raise ConfigurationError("loss rates must be >= 0")

    @property
    def loss_per_kw_minute(self) -> float:
        """Total loss rate during unavailability ($/KW/min)."""
        return self.revenue_per_kw_minute + self.depreciation_per_kw_minute

    @property
    def dg_savings_per_kw_year(self) -> float:
        """What not provisioning DGs saves ($/KW/yr) — Figure 10's line."""
        return self.cost_parameters.dg_power_cost_per_kw_year

    def outage_cost_per_kw_year(self, outage_minutes_per_year: float) -> float:
        """Revenue + depreciation loss for a yearly unavailability budget."""
        if outage_minutes_per_year < 0:
            raise ConfigurationError("outage minutes must be >= 0")
        return self.loss_per_kw_minute * outage_minutes_per_year

    def crossover_minutes_per_year(self) -> float:
        """Yearly outage minutes at which skipping DGs stops paying
        (~294 min ≈ 5 h for the paper's parameters)."""
        return self.dg_savings_per_kw_year / self.loss_per_kw_minute

    def profitable_without_dg(self, outage_minutes_per_year: float) -> bool:
        """Left of the crossover: underprovisioning is profitable."""
        return (
            self.outage_cost_per_kw_year(outage_minutes_per_year)
            <= self.dg_savings_per_kw_year
        )

    def figure_series(
        self, max_minutes: float = 500.0, step_minutes: float = 10.0
    ) -> List[Tuple[float, float, float]]:
        """(minutes, loss $/KW/yr, DG savings $/KW/yr) rows — Figure 10."""
        if step_minutes <= 0:
            raise ConfigurationError("step must be positive")
        xs = np.arange(0.0, max_minutes + step_minutes / 2, step_minutes)
        return [
            (float(x), self.outage_cost_per_kw_year(float(x)), self.dg_savings_per_kw_year)
            for x in xs
        ]

    def yearly_loss_for_schedule(
        self, schedule: OutageSchedule, unprotected_fraction: float = 1.0
    ) -> float:
        """Loss ($/KW/yr) if ``unprotected_fraction`` of each outage in the
        schedule goes unserved — hooks the Monte-Carlo availability runs
        into the TCO frame."""
        if not 0 <= unprotected_fraction <= 1:
            raise ConfigurationError("unprotected_fraction must be in [0, 1]")
        minutes_down = to_minutes(schedule.total_outage_seconds) * unprotected_fraction
        return self.outage_cost_per_kw_year(minutes_down)
