"""The paper's primary contribution: cost / performability analysis of
underprovisioned backup infrastructure.

* :mod:`repro.core.costs` — the Section 3 cost model (Eq. 1/2, Table 1).
* :mod:`repro.core.configurations` — the Table 3 configuration space.
* :mod:`repro.core.performability` — (config, technique, workload, outage)
  -> cost + performance + down time, the quantity every figure plots.
* :mod:`repro.core.selection` — the Section 6 selection rules (best
  technique per configuration; lowest-cost backup per technique).
* :mod:`repro.core.planner` — minimum-cost provisioning for an outage
  target.
* :mod:`repro.core.predictor` — the Section 7 online Markov outage-duration
  predictor and adaptive technique policy.
* :mod:`repro.core.tco` — the Figure 10 revenue-loss / DG-savings analysis.
"""

from repro.core.configurations import (
    PAPER_CONFIGURATIONS,
    BackupConfiguration,
    get_configuration,
)
from repro.core.costs import (
    PAPER_COST_PARAMETERS,
    BackupCostModel,
    CostBreakdown,
    CostParameters,
)
from repro.core.heterogeneous import (
    HeterogeneousPlan,
    HeterogeneousPlanner,
    SectionRequirement,
)
from repro.core.performability import (
    PerformabilityPoint,
    evaluate_point,
    make_datacenter,
)
from repro.core.planner import ProvisioningPlanner, ProvisioningResult
from repro.core.predictor import AdaptivePolicy, OutageDurationPredictor
from repro.core.selection import best_technique, lowest_cost_backup
from repro.core.tco import TCOModel
from repro.core.whatif import ExpectedOutageAnalyzer, ExpectedOutageReport

__all__ = [
    "AdaptivePolicy",
    "BackupConfiguration",
    "BackupCostModel",
    "CostBreakdown",
    "CostParameters",
    "ExpectedOutageAnalyzer",
    "ExpectedOutageReport",
    "HeterogeneousPlan",
    "HeterogeneousPlanner",
    "OutageDurationPredictor",
    "PAPER_CONFIGURATIONS",
    "PAPER_COST_PARAMETERS",
    "PerformabilityPoint",
    "ProvisioningPlanner",
    "ProvisioningResult",
    "SectionRequirement",
    "TCOModel",
    "best_technique",
    "evaluate_point",
    "get_configuration",
    "lowest_cost_backup",
    "make_datacenter",
]
