"""Online outage-duration prediction and the adaptive escalation policy.

Section 7 ("How do we deal with unknown outage duration?") sketches the
online solution this module implements: build a predictor from historic
outage statistics (Figure 1(b)) and escalate techniques as the outage
evolves — "start with throttling at full performance mode (assuming the
outage will be short) and gradually transition to lower power modes and
then finally use the sleep or hibernate techniques".

:class:`OutageDurationPredictor` wraps the empirical duration distribution
with the conditional (hazard) queries an online controller needs:
``P(duration > x | duration > elapsed)`` and the conditional expected
remaining duration.  :class:`AdaptivePolicy` compiles the escalation ladder
into an ordinary :class:`~repro.techniques.base.OutagePlan` (fixed-length
throttle rungs, then a save-state tail), so the standard simulator evaluates
it head-to-head against static techniques — the adaptive-policy ablation
bench does exactly that.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import TechniqueError
from repro.outages.distributions import (
    OUTAGE_DURATION_DISTRIBUTION,
    EmpiricalDistribution,
)
from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
    check_budget,
)
from repro.techniques.sleep import Sleep
from repro.techniques.throttling import Throttling
from repro.units import minutes


class OutageDurationPredictor:
    """Conditional duration queries over historic outage statistics."""

    def __init__(
        self, distribution: EmpiricalDistribution = OUTAGE_DURATION_DISTRIBUTION
    ):
        self.distribution = distribution

    def survival(self, duration_seconds: float) -> float:
        """P(outage lasts longer than ``duration_seconds``)."""
        return 1.0 - self.distribution.probability_at_most(duration_seconds)

    def probability_exceeds(
        self, target_seconds: float, elapsed_seconds: float
    ) -> float:
        """P(duration > target | duration > elapsed)."""
        if target_seconds <= elapsed_seconds:
            return 1.0
        denominator = self.survival(elapsed_seconds)
        if denominator <= 0:
            return 0.0
        return self.survival(target_seconds) / denominator

    def expected_remaining_seconds(
        self, elapsed_seconds: float, horizon_seconds: float = minutes(480)
    ) -> float:
        """E[duration - elapsed | duration > elapsed], integrated over the
        survival curve up to a practical horizon."""
        denominator = self.survival(elapsed_seconds)
        if denominator <= 0:
            return 0.0
        step = 15.0
        total = 0.0
        t = elapsed_seconds
        while t < horizon_seconds:
            total += self.survival(t) * step
            t += step
        return total / denominator

    def transition_matrix(self) -> "tuple[list[str], list[list[float]]]":
        """The Section 7 "online Markov chain based transition matrix".

        States are the Figure 1(b) duration buckets.  Row ``i`` gives, for
        an outage that has *survived into* bucket ``i``, the probability of
        ending within each bucket ``j >= i`` (rows sum to 1; entries below
        the diagonal are 0 — an outage cannot end in a bucket it outlived).
        An online controller indexes the row for the current elapsed time
        and reads off where the outage is likely to die.

        Returns:
            (bucket labels, row-stochastic matrix).
        """
        buckets = self.distribution.buckets
        labels = [bucket.label for bucket in buckets]
        matrix: List[List[float]] = []
        for i, entered in enumerate(buckets):
            survive_to_i = self.survival(entered.low_seconds)
            row = [0.0] * len(buckets)
            if survive_to_i <= 0:
                row[i] = 1.0  # degenerate: absorb in place
            else:
                for j in range(i, len(buckets)):
                    ends_in_j = (
                        self.survival(buckets[j].low_seconds)
                        - self.survival(buckets[j].high_seconds)
                        if not math.isinf(buckets[j].high_seconds)
                        else self.survival(buckets[j].low_seconds)
                    )
                    row[j] = ends_in_j / survive_to_i
            matrix.append(row)
        return labels, matrix

    def escalation_thresholds(
        self, confidence: float = 0.5, max_rungs: int = 3
    ) -> List[float]:
        """Elapsed times at which the conditional odds of a long outage
        justify stepping down a rung.

        A rung fires when P(outage continues another rung-length | elapsed)
        exceeds ``confidence``.  With Figure 1(b)'s heavy short-outage mass
        this yields thresholds near the bucket edges (1 min, 5 min, 30 min).
        """
        if not 0 < confidence < 1:
            raise ValueError("confidence must be in (0, 1)")
        thresholds = []
        for bucket in self.distribution.buckets[:-1]:
            edge = bucket.high_seconds
            if math.isinf(edge):
                continue
            if self.probability_exceeds(2 * edge, edge) >= confidence:
                thresholds.append(edge)
            if len(thresholds) >= max_rungs:
                break
        return thresholds


class AdaptivePolicy(OutageTechnique):
    """The Section 7 escalation ladder as a compilable technique.

    Rungs run fixed lengths derived from the predictor (or given
    explicitly); each rung throttles one P-state deeper, and the ladder
    terminates in a low-power sleep.

    Args:
        predictor: Source of escalation thresholds.
        rung_boundaries_seconds: Explicit elapsed-time boundaries (override).
        confidence: Escalation confidence when deriving boundaries.
    """

    name = "adaptive-policy"

    def __init__(
        self,
        predictor: Optional[OutageDurationPredictor] = None,
        rung_boundaries_seconds: Optional[Sequence[float]] = None,
        confidence: float = 0.5,
    ):
        self.predictor = predictor if predictor is not None else OutageDurationPredictor()
        if rung_boundaries_seconds is not None:
            boundaries = sorted(float(b) for b in rung_boundaries_seconds)
            if any(b <= 0 for b in boundaries):
                raise TechniqueError("rung boundaries must be positive")
        else:
            boundaries = self.predictor.escalation_thresholds(confidence)
        if not boundaries:
            boundaries = [minutes(5)]
        self.rung_boundaries_seconds: Tuple[float, ...] = tuple(boundaries)

    def plan(self, context: TechniqueContext) -> OutagePlan:
        ladder = context.server.pstates
        phases: List[PlanPhase] = []
        previous_edge = 0.0
        # Deepen one P-state per rung, starting from the fastest state that
        # fits the budget (the "full performance mode" opening move).
        if math.isinf(context.power_budget_watts):
            start = 0
        else:
            start = ladder.index_of(Throttling().select_pstate(context))
        for rung, edge in enumerate(self.rung_boundaries_seconds):
            index = min(start + rung, len(ladder) - 1)
            pstate = ladder[index]
            power = context.cluster.power_watts(
                utilization=context.workload.utilization, pstate=pstate
            )
            phases.append(
                PlanPhase(
                    name=f"rung{rung}@{pstate.name}",
                    power_watts=power,
                    performance=context.workload.throttled_performance(
                        pstate.frequency_ratio
                    ),
                    duration_seconds=edge - previous_edge,
                    state_safe=False,
                )
            )
            previous_edge = edge
        sleep_plan = Sleep(low_power=True).compile_plan(context)
        phases.extend(sleep_plan.phases)
        check_budget(phases, context.power_budget_watts, self.name)
        return OutagePlan(technique_name=self.name, phases=phases)
