"""repro.faults: deterministic fault injection for the power stack.

The paper's availability results hinge on backup components failing *on
demand* — engines that refuse to start, strings that fade below rated
runtime, transfer switches that glitch.  This package models those modes
as data:

* :class:`FaultPlan` — which failure modes a study injects and at what
  rates (parsed from the CLI's ``--faults`` spec string);
* :class:`FaultInjector` — a seeded sampler turning a plan into
  per-outage :class:`FaultDraw` decisions, with a fixed variate budget
  per draw so sweeps are bit-identical at any worker count;
* :class:`FaultDraw` — the concrete decisions one outage simulation
  applies (threaded through :func:`repro.sim.outage_sim.simulate_outage`
  and :class:`repro.sim.yearly.YearlyRunner`).

Fault activations are observable: a traced run records each one as a
``fault`` span event and bumps a ``faults.*`` counter (see
docs/FAULTS.md and docs/OBSERVABILITY.md).

Quickstart::

    from repro.faults import FaultInjector, FaultPlan

    plan = FaultPlan.parse("dg_start=0.05,batt_fade=0.2,ats_delay=30")
    injector = FaultInjector(plan, seed=7)
    outcome = simulate_outage(dc, outage_plan, 1800.0, faults=injector.draw())
"""

from repro.faults.injector import FaultDraw, FaultInjector
from repro.faults.plan import MAX_BATTERY_FADE, FaultPlan

__all__ = [
    "FaultDraw",
    "FaultInjector",
    "FaultPlan",
    "MAX_BATTERY_FADE",
]
