"""Fault plans: which backup-failure modes a study injects, and how often.

The paper's availability argument rests on backup components *failing on
demand*: industry surveys put diesel-generator failure-to-start for
well-maintained plants around 0.5-1.5 %, lead-acid strings fade well below
rated runtime as they age, and transfer switches occasionally refuse or
delay the utility-to-DG handover.  A :class:`FaultPlan` declares the rates
of these modes; a :class:`~repro.faults.injector.FaultInjector` samples
them into concrete per-outage :class:`~repro.faults.injector.FaultDraw`
instances with a seeded RNG, so every fault-injected study is
deterministic and bit-identical at any worker count.

All rates are *additional* to whatever the component specs already model
(e.g. :attr:`~repro.power.generator.DieselGeneratorSpec.start_reliability`
is rolled separately by :class:`~repro.sim.yearly.YearlyRunner`); a null
plan injects nothing and reproduces the fault-free results exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.errors import FaultInjectionError
from repro.units import hours

#: Largest battery capacity fraction a fade draw may remove; a pack never
#: derates to literally zero (it would divide runtime out of existence and
#: models replacement, not fade).
MAX_BATTERY_FADE = 0.95


@dataclass(frozen=True)
class FaultPlan:
    """Backup-failure modes to inject, expressed as per-outage rates.

    Attributes:
        dg_fail_to_start: Probability the DG engine fails to start when
            called (on top of the spec's ``start_reliability``).
        dg_mtbf_hours: Mean time between failures of a *running* engine
            (exponential hazard); ``inf`` (default) never fails.
        battery_fade: Mean fraction of battery capacity lost to ageing;
            0.2 means the string delivers 80 % of rated runtime.
        battery_fade_std: Per-outage spread of the fade (normal, truncated
            to ``[0, MAX_BATTERY_FADE]``); 0 makes fade deterministic.
        ats_fail: Probability the ATS transfer to the DG fails outright
            (the engine may start, but the load never reaches it).
        ats_delay_max_seconds: Worst-case extra transfer delay; each
            outage draws a uniform delay in ``[0, max]`` added to the DG
            takeover time (the UPS must bridge the longer gap).
        psu_fail: Probability the server PSU hold-up capacitance fails to
            bridge the UPS switch-in gap (drops the fleet at outage start).
    """

    dg_fail_to_start: float = 0.0
    dg_mtbf_hours: float = math.inf
    battery_fade: float = 0.0
    battery_fade_std: float = 0.0
    ats_fail: float = 0.0
    ats_delay_max_seconds: float = 0.0
    psu_fail: float = 0.0

    def __post_init__(self) -> None:
        for name in ("dg_fail_to_start", "ats_fail", "psu_fail"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultInjectionError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )
        if not self.dg_mtbf_hours > 0:
            raise FaultInjectionError(
                f"dg_mtbf_hours must be positive, got {self.dg_mtbf_hours}"
            )
        if not 0.0 <= self.battery_fade <= MAX_BATTERY_FADE:
            raise FaultInjectionError(
                f"battery_fade must be in [0, {MAX_BATTERY_FADE}], "
                f"got {self.battery_fade}"
            )
        if self.battery_fade_std < 0:
            raise FaultInjectionError(
                f"battery_fade_std must be >= 0, got {self.battery_fade_std}"
            )
        if self.ats_delay_max_seconds < 0:
            raise FaultInjectionError(
                f"ats_delay_max_seconds must be >= 0, "
                f"got {self.ats_delay_max_seconds}"
            )

    @property
    def is_null(self) -> bool:
        """Whether this plan injects nothing (fault-free semantics)."""
        return (
            self.dg_fail_to_start == 0.0
            and math.isinf(self.dg_mtbf_hours)
            and self.battery_fade == 0.0
            and self.battery_fade_std == 0.0
            and self.ats_fail == 0.0
            and self.ats_delay_max_seconds == 0.0
            and self.psu_fail == 0.0
        )

    @property
    def dg_mtbf_seconds(self) -> float:
        return hours(self.dg_mtbf_hours) if not math.isinf(self.dg_mtbf_hours) else math.inf

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``--faults`` CLI spec string.

        Format: comma-separated ``key=value`` pairs, e.g.::

            dg_start=0.05,dg_mtbf_h=4,batt_fade=0.2,batt_fade_std=0.05,
            ats_fail=0.01,ats_delay=30,psu=0.001

        Keys map to the dataclass fields (``dg_start`` →
        :attr:`dg_fail_to_start`, ``dg_mtbf_h`` → :attr:`dg_mtbf_hours`,
        ``batt_fade`` → :attr:`battery_fade`, ``ats_delay`` →
        :attr:`ats_delay_max_seconds`, ``psu`` → :attr:`psu_fail`); the
        full field names are also accepted.  Unknown keys and non-numeric
        values raise :class:`~repro.errors.FaultInjectionError`.
        """
        aliases = {
            "dg_start": "dg_fail_to_start",
            "dg_mtbf_h": "dg_mtbf_hours",
            "batt_fade": "battery_fade",
            "batt_fade_std": "battery_fade_std",
            "ats_delay": "ats_delay_max_seconds",
            "psu": "psu_fail",
        }
        known = {f.name for f in fields(cls)}
        values = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise FaultInjectionError(
                    f"fault spec items must be key=value, got {item!r}"
                )
            key, _, raw = item.partition("=")
            key = key.strip()
            field_name = aliases.get(key, key)
            if field_name not in known:
                raise FaultInjectionError(
                    f"unknown fault spec key {key!r}; known keys: "
                    f"{sorted(known | set(aliases))}"
                )
            if field_name in values:
                raise FaultInjectionError(f"duplicate fault spec key {key!r}")
            try:
                values[field_name] = float(raw.strip())
            except ValueError:
                raise FaultInjectionError(
                    f"fault spec value for {key!r} must be a number, "
                    f"got {raw.strip()!r}"
                ) from None
        return cls(**values)
