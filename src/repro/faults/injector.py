"""Seeded sampling of fault plans into concrete per-outage draws.

The simulator's core is closed-form and deterministic; randomness lives
out here.  A :class:`FaultInjector` turns a
:class:`~repro.faults.plan.FaultPlan` into a stream of
:class:`FaultDraw` values — one per outage — using a
:class:`numpy.random.Generator`.  Every :meth:`FaultInjector.draw`
consumes a *fixed* number of variates regardless of which faults fire,
so the n-th outage's draw depends only on the seed and the position ``n``,
never on what earlier draws activated.  That property, combined with the
runner's :class:`numpy.random.SeedSequence` spawning, is what makes a
fault-injected availability sweep bit-identical at any worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.plan import MAX_BATTERY_FADE, FaultPlan


@dataclass(frozen=True)
class FaultDraw:
    """Concrete fault decisions for one outage.

    The default instance (:meth:`healthy`) activates nothing; the outage
    simulator treats it exactly like ``faults=None``.

    Attributes:
        dg_starts: Whether the injected start roll lets the engine start.
        dg_run_limit_seconds: Running time after which the engine trips
            (fail-while-running); ``None`` never trips.
        battery_capacity_factor: Multiplier on the battery's rated
            runtime (capacity fade / derating); 1.0 is a healthy string.
        ats_transfer_ok: Whether the ATS completes the utility-to-DG
            transfer at all.
        ats_extra_delay_seconds: Extra transfer delay added to the DG
            takeover time (the UPS must bridge the longer gap).
        psu_holdup_ok: Whether the PSU hold-up capacitance bridges the
            UPS switch-in gap this time.
    """

    dg_starts: bool = True
    dg_run_limit_seconds: Optional[float] = None
    battery_capacity_factor: float = 1.0
    ats_transfer_ok: bool = True
    ats_extra_delay_seconds: float = 0.0
    psu_holdup_ok: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.battery_capacity_factor <= 1.0:
            raise FaultInjectionError(
                "battery_capacity_factor must be in (0, 1], "
                f"got {self.battery_capacity_factor}"
            )
        if (
            self.dg_run_limit_seconds is not None
            and self.dg_run_limit_seconds < 0
        ):
            raise FaultInjectionError(
                f"dg_run_limit_seconds must be >= 0, "
                f"got {self.dg_run_limit_seconds}"
            )
        if self.ats_extra_delay_seconds < 0:
            raise FaultInjectionError(
                f"ats_extra_delay_seconds must be >= 0, "
                f"got {self.ats_extra_delay_seconds}"
            )

    @classmethod
    def healthy(cls) -> "FaultDraw":
        """The no-fault draw (every component behaves per its spec)."""
        return cls()

    @property
    def is_null(self) -> bool:
        return self == FaultDraw()


class FaultInjector:
    """Samples :class:`FaultDraw` streams from a plan.

    Args:
        plan: The failure modes and rates to sample.
        rng: Explicit random generator (takes precedence over ``seed``).
        seed: Seed material (int or :class:`numpy.random.SeedSequence`)
            for a private generator when ``rng`` is not given; ``None``
            with no ``rng`` seeds from entropy (not reproducible — tests
            and sweeps should always seed).
    """

    def __init__(
        self,
        plan: FaultPlan,
        rng: Optional[np.random.Generator] = None,
        seed: Union[int, np.random.SeedSequence, None] = None,
    ) -> None:
        if not isinstance(plan, FaultPlan):
            raise FaultInjectionError(
                f"plan must be a FaultPlan, got {type(plan).__name__}"
            )
        self.plan = plan
        if rng is not None:
            self.rng = rng
        else:
            self.rng = np.random.default_rng(seed)
        #: Draws handed out so far (diagnostic; not part of identity).
        self.draws = 0

    def draw(self) -> FaultDraw:
        """Sample the fault decisions for one outage.

        Always consumes exactly six variates (five uniforms and one
        normal), so the stream position after ``n`` draws is independent
        of the plan's rates and of which faults activated.
        """
        plan = self.plan
        u = self.rng.random(5)
        z = float(self.rng.standard_normal())
        self.draws += 1

        dg_starts = not (u[0] < plan.dg_fail_to_start)

        run_limit: Optional[float] = None
        if not math.isinf(plan.dg_mtbf_hours):
            # Inverse-transform exponential with the plan's hazard rate.
            run_limit = -plan.dg_mtbf_seconds * math.log1p(-float(u[1]))

        factor = 1.0
        if plan.battery_fade > 0.0 or plan.battery_fade_std > 0.0:
            fade = plan.battery_fade + plan.battery_fade_std * z
            fade = min(max(fade, 0.0), MAX_BATTERY_FADE)
            factor = 1.0 - fade

        ats_ok = not (u[2] < plan.ats_fail)
        extra_delay = float(u[3]) * plan.ats_delay_max_seconds
        psu_ok = not (u[4] < plan.psu_fail)

        return FaultDraw(
            dg_starts=dg_starts,
            dg_run_limit_seconds=run_limit,
            battery_capacity_factor=factor,
            ats_transfer_ok=ats_ok,
            ats_extra_delay_seconds=extra_delay,
            psu_holdup_ok=psu_ok,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.plan!r}, draws={self.draws})"
