"""Specjbb: the three-tier in-memory-database benchmark (Table 7).

Characteristics from the paper:

* 18 GB of volatile state (an in-memory database with both read-only and
  modified data), so losing state forces recomputation and a throughput
  catch-up: MinCost down time is ~400 s even for a 30 s outage (Section 6.1).
* Live migration takes ~10 minutes; proactive migration retires enough dirty
  state to shrink the post-failure transfer to 10 GB (~5 minutes).
* Hibernate writes the full image (Table 8: save 230 s, resume 157 s with
  the testbed's disks), because the database lives in anonymous memory.
* CPU-bound enough that DVFS throttling visibly costs throughput — unlike
  Memcached (Section 6.2 attributes the contrast to memory stalls).
"""

from __future__ import annotations

from repro.units import gigabytes, megabytes_per_second
from repro.workloads.base import CrashRecovery, PerformanceMetric, WorkloadSpec


def specjbb() -> WorkloadSpec:
    """The calibrated Specjbb model.

    Calibration notes:

    * ``dirty_bytes_per_second = 95 MB/s`` makes single-pass pre-copy over a
      1 Gbps NIC converge in ~10 minutes for 18 GB, the paper's measured
      migration time.
    * The crash-recovery pipeline lands MinCost down time at ~400 s for a
      30 s outage: 30 (outage) + 120 (reboot) + 50 (JVM/tier start) + 150
      (throughput catch-up booked as down time) + ~50 expected recompute.
    """
    return WorkloadSpec(
        name="specjbb",
        memory_state_bytes=gigabytes(18),
        cpu_bound_fraction=0.85,
        dirty_bytes_per_second=megabytes_per_second(95),
        hot_dirty_bytes=gigabytes(10),
        read_mostly=False,
        metric=PerformanceMetric.LATENCY_BOUND_THROUGHPUT,
        recovery=CrashRecovery(
            app_start_seconds=50.0,
            reload_bytes=0.0,
            warmup_seconds=150.0,
            warmup_performance=0.0,
            recompute_horizon_seconds=100.0,
        ),
        utilization=0.9,
    )
