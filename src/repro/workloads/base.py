"""The workload abstraction consumed by techniques and the simulator.

Section 6.2 shows that what differentiates applications under an
underprovisioned backup is a small set of characteristics:

* **memory state size** — drives save/hibernate/migration times (Table 8),
* **CPU-boundedness** — drives the performance cost of Throttling
  (Memcached, stalled on memory, throttles almost for free; Specjbb does
  not),
* **dirty-state behaviour** — drives pre-copy convergence and how much
  Proactive Migration / Hibernation can shrink the post-failure transfer
  (Specjbb 18 GB -> 10 GB),
* **the hibernation image** — anonymous memory must be written out, but
  page-cache-resident read-only data (Web-search's index) is dropped and
  re-read on resume, while slab-allocated caches (Memcached) must be
  persisted in full; this asymmetry produces the paper's surprise that
  hibernation is *worse* than crashing for Memcached (1140 s vs 480 s) yet
  *better* than crashing for Web-search (400 s vs 600 s),
* **the crash-recovery pipeline** — reboot, application start, data reload,
  warm-up, and recompute of lost work, which together produce the very
  different MinCost down times of Figures 5-9.

:class:`WorkloadSpec` captures exactly these, plus the performance-metric
labelling of Table 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.errors import WorkloadError
from repro.servers.pstates import throttled_performance
from repro.servers.server import PAPER_SERVER, ServerSpec


class PerformanceMetric(Enum):
    """How Table 7 scores each application."""

    LATENCY_BOUND_THROUGHPUT = "latency-constrained throughput"
    THROUGHPUT = "throughput"
    COMPLETION_TIME = "completion time"


@dataclass(frozen=True)
class CrashRecovery:
    """The pipeline an application walks after losing volatile state.

    Down time after power restoration is the sum of the server reboot (owned
    by the server model), then these application phases:

    Attributes:
        app_start_seconds: Process creation / sockets / authorisations
            (Section 4's items (a)-(c), beyond the OS reboot).
        reload_bytes: Persistent data re-read from storage before serving
            (Web-search's index pre-population, Memcached's cache reload).
        warmup_seconds: Application-specific warm-up window after serving
            resumes (Section 4 item (d)).
        warmup_performance: Normalised throughput delivered *during* warm-up.
            The shortfall ``warmup_seconds * (1 - warmup_performance)`` is
            booked as performance-induced down time, as the paper does for
            Web-search's 30-50 % degraded first minutes.
        recompute_horizon_seconds: Upper bound of work lost and recomputed
            (Section 4 item (e)).  Zero for stateless serving; the full job
            length for SpecCPU, whose down time therefore spans a large
            range depending on when the outage strikes.
    """

    app_start_seconds: float = 0.0
    reload_bytes: float = 0.0
    warmup_seconds: float = 0.0
    warmup_performance: float = 0.0
    recompute_horizon_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "app_start_seconds",
            "reload_bytes",
            "warmup_seconds",
            "recompute_horizon_seconds",
        ):
            if getattr(self, name) < 0:
                raise WorkloadError(f"{name} must be >= 0")
        if not 0 <= self.warmup_performance <= 1:
            raise WorkloadError("warmup_performance must be in [0, 1]")


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete application model.

    Attributes:
        name: Workload name (Table 7 row).
        memory_state_bytes: Volatile application state (Table 7 column).
        cpu_bound_fraction: Fraction of execution limited by core frequency;
            feeds :func:`~repro.servers.pstates.throttled_performance`.
        dirty_bytes_per_second: Rate at which the application dirties memory
            during normal operation (drives pre-copy convergence).
        hot_dirty_bytes: Residual dirty working set that proactive flushing
            cannot retire (the state still to move after a failure; Specjbb:
            10 GB of its 18 GB).
        read_mostly: Whether the in-memory state is reconstructible from
            persistent storage (Web-search index, Memcached values).
        hibernate_image_bytes: Bytes the hibernation image actually writes.
            Defaults to ``memory_state_bytes``.  Page-cache-resident state
            (Web-search) is dropped from the image — set this smaller and
            the difference is re-read from disk on resume.  Slab or
            fragmented anonymous state plus entangled OS caches (Memcached)
            can make the image *larger* than the application state.
        hibernate_bandwidth_factor: Effective fraction of the disk's
            sequential bandwidth the hibernation path achieves for this
            workload's memory layout (random-layout slabs write slower).
        metric: Table 7 performance metric label.
        recovery: Crash-recovery pipeline.
        utilization: Per-server utilisation at the normal operating point.
    """

    name: str
    memory_state_bytes: float
    cpu_bound_fraction: float
    dirty_bytes_per_second: float
    hot_dirty_bytes: float
    read_mostly: bool
    metric: PerformanceMetric
    hibernate_image_bytes: "float | None" = None
    hibernate_bandwidth_factor: float = 1.0
    recovery: CrashRecovery = field(default_factory=CrashRecovery)
    utilization: float = 0.9

    def __post_init__(self) -> None:
        if self.memory_state_bytes <= 0:
            raise WorkloadError("memory_state_bytes must be positive")
        if not 0 <= self.cpu_bound_fraction <= 1:
            raise WorkloadError("cpu_bound_fraction must be in [0, 1]")
        if self.dirty_bytes_per_second < 0:
            raise WorkloadError("dirty_bytes_per_second must be >= 0")
        if not 0 <= self.hot_dirty_bytes <= self.memory_state_bytes:
            raise WorkloadError(
                "hot_dirty_bytes must be within [0, memory_state_bytes]"
            )
        if self.hibernate_image_bytes is not None and self.hibernate_image_bytes < 0:
            raise WorkloadError("hibernate_image_bytes must be >= 0")
        if not 0 < self.hibernate_bandwidth_factor <= 1:
            raise WorkloadError("hibernate_bandwidth_factor must be in (0, 1]")
        if not 0 < self.utilization <= 1:
            raise WorkloadError("utilization must be in (0, 1]")

    # -- performance under throttling ------------------------------------------

    def throttled_performance(self, frequency_ratio: float) -> float:
        """Normalised throughput at a throttled frequency ratio."""
        return throttled_performance(self.cpu_bound_fraction, frequency_ratio)

    # -- scaling ------------------------------------------------------------------

    def with_memory_state(self, memory_state_bytes: float) -> "WorkloadSpec":
        """This workload re-sized to a different memory footprint.

        Implements the Section 6.2 "Impact of Application Memory Usage"
        study: footprint-proportional quantities (hot dirty set, hibernation
        image, reload bytes) scale with the new size; intrinsic rates and
        fixed latencies do not.
        """
        if memory_state_bytes <= 0:
            raise WorkloadError("memory_state_bytes must be positive")
        ratio = memory_state_bytes / self.memory_state_bytes
        image = (
            None
            if self.hibernate_image_bytes is None
            else self.hibernate_image_bytes * ratio
        )
        recovery = replace(
            self.recovery, reload_bytes=self.recovery.reload_bytes * ratio
        )
        return replace(
            self,
            memory_state_bytes=memory_state_bytes,
            hot_dirty_bytes=self.hot_dirty_bytes * ratio,
            hibernate_image_bytes=image,
            recovery=recovery,
        )

    # -- hibernation --------------------------------------------------------------

    @property
    def effective_hibernate_image_bytes(self) -> float:
        """Bytes the hibernation image writes (see class docstring)."""
        if self.hibernate_image_bytes is not None:
            return self.hibernate_image_bytes
        return self.memory_state_bytes

    @property
    def dropped_cache_bytes(self) -> float:
        """Page-cache state dropped from the hibernation image, which must
        be re-read from persistent storage after resume."""
        return max(0.0, self.memory_state_bytes - self.effective_hibernate_image_bytes)

    def hibernate_save_seconds(
        self,
        server: "ServerSpec" = PAPER_SERVER,
        image_bytes: "float | None" = None,
    ) -> float:
        """Time to write the hibernation image to local disk."""
        if image_bytes is None:
            image_bytes = self.effective_hibernate_image_bytes
        bandwidth = (
            server.disk_write_bandwidth_bytes_per_second
            * self.hibernate_bandwidth_factor
        )
        return server.sleep.s4_fixed_enter_seconds + image_bytes / bandwidth

    def hibernate_resume_seconds(
        self,
        server: "ServerSpec" = PAPER_SERVER,
        image_bytes: "float | None" = None,
    ) -> float:
        """Time to restore the hibernation image *and* re-read any dropped
        page cache before the application serves at full quality again."""
        if image_bytes is None:
            image_bytes = self.effective_hibernate_image_bytes
        bandwidth = (
            server.disk_read_bandwidth_bytes_per_second
            * self.hibernate_bandwidth_factor
        )
        refill = (
            self.dropped_cache_bytes / server.disk_read_bandwidth_bytes_per_second
        )
        return server.sleep.s4_fixed_exit_seconds + image_bytes / bandwidth + refill

    def proactive_residual_bytes(self) -> float:
        """State still to move after a failure under proactive flushing."""
        return self.hot_dirty_bytes

    # -- crash recovery -----------------------------------------------------------

    def crash_downtime_after_restore_seconds(
        self,
        server: "ServerSpec" = PAPER_SERVER,
        lost_work_seconds: "float | None" = None,
    ) -> float:
        """Down time *after power is restored* following a state-losing crash.

        Includes OS reboot, application start, persistent-data reload, the
        warm-up shortfall (the paper books degraded warm-up throughput as
        additional down time), and recompute of lost work.

        Args:
            server: Platform constants (reboot time, disk bandwidth).
            lost_work_seconds: Work to recompute; defaults to half the
                recompute horizon (expected loss for an outage uniform in
                the job's lifetime).
        """
        rec = self.recovery
        reload_seconds = rec.reload_bytes / server.disk_read_bandwidth_bytes_per_second
        if lost_work_seconds is None:
            lost_work_seconds = rec.recompute_horizon_seconds / 2.0
        lost_work_seconds = min(lost_work_seconds, rec.recompute_horizon_seconds)
        warmup_downtime = rec.warmup_seconds * (1.0 - rec.warmup_performance)
        return (
            server.sleep.reboot_seconds
            + rec.app_start_seconds
            + reload_seconds
            + warmup_downtime
            + lost_work_seconds
        )

    def crash_downtime_bounds_seconds(
        self, server: "ServerSpec" = PAPER_SERVER
    ) -> "tuple[float, float]":
        """(best, worst) post-restore down time across outage arrival times.

        For recompute-style workloads (SpecCPU) the spread is the whole
        recompute horizon — the wide MinCost range of Figure 9.
        """
        best = self.crash_downtime_after_restore_seconds(server, lost_work_seconds=0.0)
        worst = self.crash_downtime_after_restore_seconds(
            server, lost_work_seconds=self.recovery.recompute_horizon_seconds
        )
        return best, worst
