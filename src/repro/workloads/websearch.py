"""Web-search: the index-serving workload (Table 7).

Characteristics from the paper:

* ~40 GB of read-only index data cached in DRAM (of several hundred GB on
  persistent storage), measured as latency-constrained queries/second.
* Losing memory state is *extremely* harmful despite the data being
  read-only: MinCost down time for a 30 s outage is ~600 s — ~2 min server
  restart + ~3.5 min index pre-population + 4-5 min of 30-50 %-degraded
  warm-up booked as additional down time (Section 6.2).
* Hibernation beats crashing (~400 s): the index lives in the page cache,
  which Linux drops from the hibernation image, so the image itself is just
  the small anonymous serving state; resume re-reads the cached index
  deliberately and sequentially, skipping the application warm-up.
"""

from __future__ import annotations

from repro.units import gigabytes, megabytes_per_second
from repro.workloads.base import CrashRecovery, PerformanceMetric, WorkloadSpec


def websearch() -> WorkloadSpec:
    """The calibrated Web-search model.

    Calibration notes:

    * Crash recovery ~600 s for a 30 s outage: 30 (outage) + 120 (reboot) +
      ~210 (27.5 GB hot-index pre-population at 131 MB/s) + 240 (400 s
      warm-up at 40 % throughput booked as 240 s of down time).
    * Hibernation ~380-400 s: 4 GB anonymous image (save ~55 s, restore
      ~50 s) + ~275 s re-read of the 36 GB dropped page-cache index.
    """
    return WorkloadSpec(
        name="websearch",
        memory_state_bytes=gigabytes(40),
        cpu_bound_fraction=0.55,
        dirty_bytes_per_second=megabytes_per_second(10),
        hot_dirty_bytes=gigabytes(2),
        read_mostly=True,
        metric=PerformanceMetric.LATENCY_BOUND_THROUGHPUT,
        hibernate_image_bytes=gigabytes(4),
        hibernate_bandwidth_factor=1.0,
        recovery=CrashRecovery(
            app_start_seconds=0.0,
            reload_bytes=gigabytes(27.5),
            warmup_seconds=400.0,
            warmup_performance=0.4,
            recompute_horizon_seconds=0.0,
        ),
        utilization=0.9,
    )
