"""SpecCPU (mcf*8): the HPC / scientific-computation proxy (Table 7).

Characteristics from the paper:

* Eight mcf instances (~2 GB each) emulate a large-footprint HPC job:
  16 GB of volatile state, scored by completion time.
* Jobs "may run for hours or even days"; losing volatile state forces
  recomputation of everything since the last (if any) checkpoint, so the
  MinCost down time spans a very wide range depending on when the outage
  strikes (the tall min-max bars of Figure 9).
* mcf is the canonical memory-intensive SPEC component, so throttling is
  cheaper than for Specjbb, though the paper reports the overall technique
  trade-offs "very similar to that of Specjbb".
"""

from __future__ import annotations

from repro.units import gigabytes, hours, megabytes_per_second
from repro.workloads.base import CrashRecovery, PerformanceMetric, WorkloadSpec


def speccpu_mcf(
    job_length_seconds: float = hours(2),
    checkpoint_interval_seconds: "float | None" = None,
) -> WorkloadSpec:
    """The calibrated mcf*8 model.

    Args:
        job_length_seconds: Job length; without checkpointing it bounds the
            work lost to a crash (the recompute horizon).  The paper's runs
            are multi-hour; 2 h keeps the Figure 9 ranges on the paper's
            scale.
        checkpoint_interval_seconds: Optional application-level
            checkpointing cadence — Section 6.2's parenthetical ("one can
            alleviate the performance impact by checkpointing partial
            results").  Caps the recompute horizon at one interval.
    """
    horizon = job_length_seconds
    if checkpoint_interval_seconds is not None:
        if checkpoint_interval_seconds <= 0:
            raise ValueError("checkpoint interval must be positive")
        horizon = min(job_length_seconds, checkpoint_interval_seconds)
    return WorkloadSpec(
        name="speccpu-mcf",
        memory_state_bytes=gigabytes(16),
        cpu_bound_fraction=0.65,
        dirty_bytes_per_second=megabytes_per_second(60),
        hot_dirty_bytes=gigabytes(8),
        read_mostly=False,
        metric=PerformanceMetric.COMPLETION_TIME,
        recovery=CrashRecovery(
            app_start_seconds=10.0,
            reload_bytes=0.0,
            warmup_seconds=0.0,
            warmup_performance=0.0,
            recompute_horizon_seconds=horizon,
        ),
        utilization=1.0,
    )
