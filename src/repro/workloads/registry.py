"""Name-based lookup of the paper's workloads.

Keeps string-driven entry points (benchmarks, examples, CLI sweeps) from
importing each workload module directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import WorkloadError
from repro.workloads.base import WorkloadSpec
from repro.workloads.memcached import memcached
from repro.workloads.speccpu import speccpu_mcf
from repro.workloads.specjbb import specjbb
from repro.workloads.websearch import websearch

_FACTORIES: Dict[str, Callable[[], WorkloadSpec]] = {
    "specjbb": specjbb,
    "websearch": websearch,
    "memcached": memcached,
    "speccpu": speccpu_mcf,
    "speccpu-mcf": speccpu_mcf,
}


def workload_names() -> List[str]:
    """Canonical workload names, in the paper's Table 7 order."""
    return ["specjbb", "websearch", "memcached", "speccpu"]


def get_workload(name: str) -> WorkloadSpec:
    """Instantiate a paper workload by name (case-insensitive)."""
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(workload_names())}"
        )
    return factory()


#: The four Table 7 workloads, instantiated.
PAPER_WORKLOADS = tuple(get_workload(name) for name in workload_names())
