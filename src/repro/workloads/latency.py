"""Latency-constrained throughput: the queueing model behind Table 7's metric.

Specjbb and Web-search are scored as "latency-constrained throughput"
(queries per second *within a high-percentile latency constraint*).  Under
throttling this metric falls faster than raw capacity: an M/M/1 server at
service rate ``μ`` holds a p-quantile response-time target ``L`` only while

    T_p(λ) = ln(1/(1−p)) / (μ − λ)  ≤  L
    ⇒  λ_max = μ − ln(1/(1−p)) / L

so the SLO reserves a fixed *headroom* ``ln(1/(1−p))/L`` of service rate
off the top.  Throttling scales ``μ`` by the throughput factor; the
headroom does not shrink with it, which is why a 50 % capacity cut can cost
well over 50 % of SLO-compliant throughput at tight latency targets — the
effect behind Web-search's "30-50 % reduction in throughput" during its
latency-violating warm-up (Section 6.2).

:class:`LatencySLOModel` packages this arithmetic; the workload models keep
their simpler normalised-throughput calibration (which already matches the
paper's measured numbers), and this model refines studies that care about
SLO cliffs — see ``examples/slo_cliff.py`` and the SLO tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class LatencySLOModel:
    """An M/M/1 latency-SLO envelope for one server.

    Attributes:
        service_rate_per_second: Full-speed service rate ``μ`` (queries/s).
        slo_latency_seconds: The latency target ``L``.
        slo_percentile: Quantile the target applies to (e.g. 0.99).
    """

    service_rate_per_second: float
    slo_latency_seconds: float
    slo_percentile: float = 0.99

    def __post_init__(self) -> None:
        if self.service_rate_per_second <= 0:
            raise WorkloadError("service rate must be positive")
        if self.slo_latency_seconds <= 0:
            raise WorkloadError("SLO latency must be positive")
        if not 0 < self.slo_percentile < 1:
            raise WorkloadError("SLO percentile must be in (0, 1)")

    # -- queueing arithmetic ---------------------------------------------------

    @property
    def headroom_per_second(self) -> float:
        """Service rate the SLO reserves off the top: ``ln(1/(1−p))/L``."""
        return math.log(1.0 / (1.0 - self.slo_percentile)) / self.slo_latency_seconds

    def quantile_latency_seconds(self, offered_per_second: float, capacity_factor: float = 1.0) -> float:
        """p-quantile response time at an offered load (inf if unstable)."""
        if offered_per_second < 0:
            raise WorkloadError("offered load must be >= 0")
        mu = self.service_rate_per_second * capacity_factor
        if offered_per_second >= mu:
            return math.inf
        return math.log(1.0 / (1.0 - self.slo_percentile)) / (mu - offered_per_second)

    def max_slo_throughput(self, capacity_factor: float = 1.0) -> float:
        """Largest arrival rate still meeting the SLO at a throttled
        capacity (0 when the headroom exceeds the throttled rate)."""
        if capacity_factor < 0:
            raise WorkloadError("capacity factor must be >= 0")
        mu = self.service_rate_per_second * capacity_factor
        return max(0.0, mu - self.headroom_per_second)

    def delivered_fraction(
        self, offered_per_second: float, capacity_factor: float = 1.0
    ) -> float:
        """SLO-compliant throughput as a fraction of the offered load.

        Excess arrivals are shed (open-loop clients); what is served meets
        the SLO by construction of the admission bound.
        """
        if offered_per_second <= 0:
            return 1.0
        admitted = min(offered_per_second, self.max_slo_throughput(capacity_factor))
        return admitted / offered_per_second

    def slo_performance(self, capacity_factor: float) -> float:
        """Normalised Table 7 metric: SLO throughput at the throttled
        capacity over SLO throughput at full capacity."""
        full = self.max_slo_throughput(1.0)
        if full <= 0:
            raise WorkloadError(
                "SLO is unattainable even at full capacity "
                f"(headroom {self.headroom_per_second:.1f}/s >= "
                f"rate {self.service_rate_per_second:.1f}/s)"
            )
        return self.max_slo_throughput(capacity_factor) / full

    def capacity_factor_for_performance(self, target_fraction: float) -> float:
        """Capacity factor needed to keep ``target_fraction`` of SLO
        throughput — the inverse planning query ("how deep may we
        throttle and stay above 60 %?")."""
        if not 0 <= target_fraction <= 1:
            raise WorkloadError("target fraction must be in [0, 1]")
        full = self.max_slo_throughput(1.0)
        needed = target_fraction * full + self.headroom_per_second
        return needed / self.service_rate_per_second


def slo_amplification(model: LatencySLOModel, capacity_factor: float) -> float:
    """How much harder the SLO metric falls than raw capacity.

    Returns ``(1 − slo_performance) / (1 − capacity_factor)`` — 1.0 means
    the SLO metric tracks capacity; > 1 quantifies the cliff.
    """
    if capacity_factor >= 1.0:
        return 1.0
    slo = model.slo_performance(capacity_factor)
    return (1.0 - slo) / (1.0 - capacity_factor)
