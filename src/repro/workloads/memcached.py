"""Memcached: the in-memory key-value store (Table 7).

Characteristics from the paper:

* 20 GB of slab-allocated values exercised by a *read-only* client workload,
  so almost nothing is dirtied — proactive migration retires nearly all
  state ahead of time ("applications with lower frequency of page
  modifications may benefit more from the Proactive Migration technique",
  Section 6.2, where PM+throttling saves 20 % more than plain Migration).
* Memory stalls dominate ("high memory-related CPU stalls ... due to its
  random memory access"), so throttling barely dents throughput.
* The paper's surprise: hibernation down time (1140 s) exceeds the crash
  path (480 s) for a 30 s outage.  Crashing reloads 20 GB of values
  sequentially from disk; hibernation must write out the slab heap — random
  layout, entangled with OS caches — and read it back, which is slower than
  regenerating the cache.  We model this as a large hibernation image
  written at a fraction of sequential bandwidth.
"""

from __future__ import annotations

from repro.units import gigabytes, megabytes_per_second
from repro.workloads.base import CrashRecovery, PerformanceMetric, WorkloadSpec


def memcached() -> WorkloadSpec:
    """The calibrated Memcached model.

    Calibration notes:

    * Crash recovery ~480 s for a 30 s outage: 30 (outage) + 120 (reboot) +
      10 (memcached start) + ~153 (20 GB reload at 131 MB/s) + 170
      (client-driven re-population tail booked as down time).
    * Hibernation ~1140 s: a 45 GB image (slab heap plus the page cache of
      the backing store it is entangled with) at 80 % of sequential
      bandwidth -> ~710 s save + ~450 s resume.
    """
    return WorkloadSpec(
        name="memcached",
        memory_state_bytes=gigabytes(20),
        cpu_bound_fraction=0.30,
        dirty_bytes_per_second=megabytes_per_second(5),
        hot_dirty_bytes=gigabytes(1),
        read_mostly=True,
        metric=PerformanceMetric.THROUGHPUT,
        hibernate_image_bytes=gigabytes(45),
        hibernate_bandwidth_factor=0.8,
        recovery=CrashRecovery(
            app_start_seconds=10.0,
            reload_bytes=gigabytes(20),
            warmup_seconds=170.0,
            warmup_performance=0.0,
            recompute_horizon_seconds=0.0,
        ),
        utilization=0.9,
    )
