"""Client load and query-trace generators.

The paper drives Web-search with "a real world query trace" and the other
services with steady client load.  We provide seeded synthetic equivalents:
a Poisson query-arrival trace (the standard open-loop model for interactive
services) and a diurnal load-shape model for capacity-planning sweeps.
These exercise the same code paths (offered load -> delivered throughput ->
performance normalisation) that the paper's traces exercised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.errors import WorkloadError
from repro.units import SECONDS_PER_HOUR


def constant_load(level: float = 1.0):
    """A load shape that is flat at ``level`` (the paper's experiments run
    servers near peak).  Returns a callable of time-of-day seconds."""
    if level < 0:
        raise WorkloadError("load level must be >= 0")

    def shape(_time_seconds: float) -> float:
        return level

    return shape


@dataclass(frozen=True)
class DiurnalLoadModel:
    """A sinusoidal day/night load shape.

    ``load(t) = base + amplitude * (1 + sin(2*pi*(t - phase)/day)) / 2``

    Attributes:
        base: Trough load as a fraction of peak capacity.
        amplitude: Peak-to-trough swing (base + amplitude <= 1 recommended).
        peak_hour: Hour of day (0-24) at which load peaks.
    """

    base: float = 0.4
    amplitude: float = 0.5
    peak_hour: float = 14.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.amplitude < 0:
            raise WorkloadError("base and amplitude must be >= 0")
        if not 0 <= self.peak_hour < 24:
            raise WorkloadError("peak_hour must be in [0, 24)")

    def load_at(self, time_seconds: float) -> float:
        """Offered load (fraction of peak) at ``time_seconds`` into the day."""
        day = 24 * SECONDS_PER_HOUR
        phase = 2 * math.pi * (time_seconds / day) - (
            2 * math.pi * self.peak_hour / 24 - math.pi / 2
        )
        return self.base + self.amplitude * (1 + math.sin(phase)) / 2

    def samples(self, step_seconds: float = 900.0) -> List[float]:
        """One day of load samples at ``step_seconds`` resolution."""
        if step_seconds <= 0:
            raise WorkloadError("step_seconds must be positive")
        day = 24 * SECONDS_PER_HOUR
        count = int(day / step_seconds)
        return [self.load_at(i * step_seconds) for i in range(count)]


@dataclass(frozen=True)
class PoissonQueryTrace:
    """An open-loop Poisson arrival trace for interactive services.

    Attributes:
        rate_per_second: Mean query arrival rate.
        seed: RNG seed; traces are reproducible.
    """

    rate_per_second: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise WorkloadError("rate_per_second must be positive")

    def arrivals(self, duration_seconds: float) -> "np.ndarray":
        """Sorted arrival timestamps within ``[0, duration_seconds)``."""
        if duration_seconds < 0:
            raise WorkloadError("duration must be >= 0")
        rng = np.random.default_rng(self.seed)
        expected = self.rate_per_second * duration_seconds
        count = rng.poisson(expected)
        return np.sort(rng.uniform(0.0, duration_seconds, size=count))

    def interarrival_iter(self, duration_seconds: float) -> Iterator[float]:
        """Iterator over interarrival gaps for event-driven consumers."""
        previous = 0.0
        for timestamp in self.arrivals(duration_seconds):
            yield float(timestamp - previous)
            previous = float(timestamp)

    def delivered_fraction(
        self, duration_seconds: float, capacity_per_second: float
    ) -> float:
        """Fraction of queries served when capacity is rate-limited.

        A capacity below the offered rate drops the excess (open-loop
        clients do not back off), which is how degraded throughput during
        an outage translates into the paper's normalised performance.
        """
        if capacity_per_second < 0:
            raise WorkloadError("capacity must be >= 0")
        if self.rate_per_second == 0:
            return 1.0
        return min(1.0, capacity_per_second / self.rate_per_second)
