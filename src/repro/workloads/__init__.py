"""Workload models: the four applications of Table 7.

Each workload is described by the parameters the paper's evaluation actually
exercises — memory footprint, CPU-boundedness (throttling sensitivity),
dirty-state behaviour (proactive techniques), and the crash-recovery pipeline
(restart, reload, warm-up, recompute) — calibrated to the measurements the
paper reports.
"""

from repro.workloads.latency import LatencySLOModel, slo_amplification
from repro.workloads.base import (
    CrashRecovery,
    PerformanceMetric,
    WorkloadSpec,
)
from repro.workloads.memcached import memcached
from repro.workloads.registry import PAPER_WORKLOADS, get_workload, workload_names
from repro.workloads.speccpu import speccpu_mcf
from repro.workloads.specjbb import specjbb
from repro.workloads.traces import (
    DiurnalLoadModel,
    PoissonQueryTrace,
    constant_load,
)
from repro.workloads.websearch import websearch

__all__ = [
    "CrashRecovery",
    "DiurnalLoadModel",
    "LatencySLOModel",
    "PAPER_WORKLOADS",
    "PerformanceMetric",
    "PoissonQueryTrace",
    "WorkloadSpec",
    "constant_load",
    "get_workload",
    "memcached",
    "speccpu_mcf",
    "specjbb",
    "slo_amplification",
    "websearch",
    "workload_names",
]
