"""One-shot reproduction driver: regenerate every table and figure.

``python -m repro reproduce`` (or :func:`run_all`) walks a registry of
experiment generators — one per table/figure of the paper — and renders
each as records plus an ASCII table.  The pytest benchmarks in
``benchmarks/`` assert the *shape* of these results; this module is the
lighter-weight path for a user who just wants the numbers (optionally as
CSV/JSON via :mod:`repro.analysis.export`).

Quick mode trims the outage-duration grids so the whole set finishes in a
few seconds; full mode matches the benchmarks' grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_configurations, sweep_techniques
from repro.core.configurations import (
    FIGURE5_CONFIGURATIONS,
    PAPER_CONFIGURATIONS,
)
from repro.core.costs import BackupCostModel
from repro.core.tco import TCOModel
from repro.errors import ReproError
from repro.outages.distributions import (
    OUTAGE_DURATION_DISTRIBUTION,
    OUTAGE_FREQUENCY_DISTRIBUTION,
)
from repro.power.battery import BatterySpec
from repro.power.generator import DieselGeneratorSpec
from repro.power.ups import UPSSpec
from repro.techniques.registry import PAPER_TECHNIQUES
from repro.units import hours, megawatts, minutes, to_kilowatt_hours, to_minutes
from repro.workloads.registry import get_workload

Record = Dict[str, Any]


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated table/figure.

    Attributes:
        experiment_id: Paper label ("table2", "figure5", ...).
        title: Human-readable caption.
        records: Machine-readable rows.
        rendered: ASCII rendering.
    """

    experiment_id: str
    title: str
    records: Sequence[Record]
    rendered: str


def _render(experiment_id: str, title: str, records: List[Record]) -> ExperimentResult:
    if records:
        headers = list(records[0].keys())
        rows = [tuple(record[h] for h in headers) for record in records]
        rendered = format_table(headers, rows, title=title)
    else:
        rendered = f"{title}\n(no rows)"
    return ExperimentResult(experiment_id, title, tuple(records), rendered)


# -- generators ---------------------------------------------------------------


def figure1(quick: bool = True) -> ExperimentResult:
    records = [
        {"panel": "frequency/yr", "bucket": b.label, "probability": b.probability}
        for b in OUTAGE_FREQUENCY_DISTRIBUTION.buckets
    ] + [
        {"panel": "duration", "bucket": b.label, "probability": b.probability}
        for b in OUTAGE_DURATION_DISTRIBUTION.buckets
    ]
    return _render("figure1", "Figure 1: outage statistics", records)


def figure3(quick: bool = True) -> ExperimentResult:
    spec = BatterySpec(4000.0, minutes(10))
    records = []
    for fraction in (0.10, 0.25, 0.50, 0.75, 1.00):
        load = 4000.0 * fraction
        records.append(
            {
                "load_watts": load,
                "runtime_minutes": round(to_minutes(spec.runtime_at(load)), 1),
                "delivered_kwh": round(
                    to_kilowatt_hours(spec.deliverable_energy_at(load)), 2
                ),
            }
        )
    return _render("figure3", "Figure 3: 4 KW battery runtime chart", records)


def table2(quick: bool = True) -> ExperimentResult:
    model = BackupCostModel()
    records = []
    for peak_mw, runtime_min in ((1, 2), (10, 2), (10, 42)):
        ups = UPSSpec(megawatts(peak_mw), minutes(runtime_min))
        dg = DieselGeneratorSpec(megawatts(peak_mw))
        records.append(
            {
                "peak_mw": peak_mw,
                "ups_runtime_min": runtime_min,
                "dg_m$": round(model.dg_cost(dg) / 1e6, 2),
                "ups_m$": round(model.ups_cost(ups) / 1e6, 2),
                "total_m$": round(model.total_cost(ups, dg) / 1e6, 2),
            }
        )
    return _render("table2", "Table 2: backup cap-ex", records)


def table3(quick: bool = True) -> ExperimentResult:
    records = [
        {
            "configuration": c.name,
            "dg_power": c.dg_power_fraction,
            "ups_power": c.ups_power_fraction,
            "ups_energy_min": round(to_minutes(c.ups_runtime_seconds), 1),
            "cost": round(c.normalized_cost(), 3),
        }
        for c in PAPER_CONFIGURATIONS
    ]
    return _render("table3", "Table 3: configurations", records)


def figure5(quick: bool = True) -> ExperimentResult:
    durations = (30.0, minutes(30)) if quick else (
        30.0, minutes(5), minutes(30), hours(1), hours(2)
    )
    cells = sweep_configurations(
        get_workload("specjbb"),
        FIGURE5_CONFIGURATIONS,
        durations,
        num_servers=8,
    )
    records = [
        {
            "configuration": cell.row_key,
            "outage_min": round(cell.outage_seconds / 60, 1),
            "cost": round(cell.normalized_cost, 3),
            "technique": cell.point.technique_name if cell.point else None,
            "performance": round(cell.performance, 2),
            "down_min": round(cell.downtime_minutes, 1),
        }
        for cell in cells
    ]
    return _render("figure5", "Figure 5: configuration trade-offs (Specjbb)", records)


def _technique_figure(
    experiment_id: str, workload_name: str, quick: bool
) -> ExperimentResult:
    durations = (30.0, minutes(30)) if quick else (30.0, minutes(30), hours(2))
    techniques = (
        ("throttling-p6", "sleep-l", "hibernate", "throttle+sleep-l")
        if quick
        else PAPER_TECHNIQUES
    )
    cells = sweep_techniques(
        get_workload(workload_name), techniques, durations, num_servers=8
    )
    records = [
        {
            "technique": cell.row_key,
            "outage_min": round(cell.outage_seconds / 60, 1),
            "cost": round(cell.normalized_cost, 3)
            if cell.feasible
            else "infeasible",
            "performance": round(cell.performance, 2),
            "down_min": round(cell.downtime_minutes, 1)
            if cell.feasible
            else "infeasible",
        }
        for cell in cells
    ]
    titles = {
        "figure6": "Figure 6: techniques x durations (Specjbb)",
        "figure7": "Figure 7: techniques (Memcached)",
        "figure8": "Figure 8: techniques (Web-search)",
        "figure9": "Figure 9: techniques (SpecCPU mcf*8)",
    }
    return _render(experiment_id, titles[experiment_id], records)


def figure6(quick: bool = True) -> ExperimentResult:
    return _technique_figure("figure6", "specjbb", quick)


def figure7(quick: bool = True) -> ExperimentResult:
    return _technique_figure("figure7", "memcached", quick)


def figure8(quick: bool = True) -> ExperimentResult:
    return _technique_figure("figure8", "websearch", quick)


def figure9(quick: bool = True) -> ExperimentResult:
    return _technique_figure("figure9", "speccpu", quick)


def figure10(quick: bool = True) -> ExperimentResult:
    model = TCOModel()
    step = 100 if quick else 25
    records = [
        {
            "outage_min_per_year": m,
            "loss_$per_kw_yr": round(loss, 1),
            "dg_savings_$per_kw_yr": savings,
        }
        for m, loss, savings in model.figure_series(500, step)
    ]
    records.append(
        {
            "outage_min_per_year": round(model.crossover_minutes_per_year(), 1),
            "loss_$per_kw_yr": "CROSSOVER",
            "dg_savings_$per_kw_yr": model.dg_savings_per_kw_year,
        }
    )
    return _render("figure10", "Figure 10: TCO crossover", records)


#: Registry of every reproducible experiment, in paper order.
EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {
    "figure1": figure1,
    "figure3": figure3,
    "table2": table2,
    "table3": table3,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
}


def run_experiment(experiment_id: str, quick: bool = True) -> ExperimentResult:
    """Regenerate one experiment by paper label."""
    generator = EXPERIMENTS.get(experiment_id.lower())
    if generator is None:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(EXPERIMENTS)}"
        )
    return generator(quick)


def _experiment_job(spec, seed) -> ExperimentResult:
    """Runner job: regenerate one experiment by id."""
    return run_experiment(spec["experiment_id"], quick=spec["quick"])


def run_all(quick: bool = True, executor=None) -> List[ExperimentResult]:
    """Regenerate every registered experiment, in paper order.

    Args:
        quick: Trimmed duration grids (seconds instead of minutes).
        executor: Optional :class:`repro.runner.BaseExecutor` — each
            experiment becomes an independent job (parallel and/or
            cached); ``None`` keeps the in-process loop.
    """
    if executor is None:
        return [generator(quick) for generator in EXPERIMENTS.values()]
    from repro.runner.jobs import make_jobs

    ids = list(EXPERIMENTS)
    specs = [{"experiment_id": eid, "quick": quick} for eid in ids]
    return list(executor.run(make_jobs(_experiment_job, specs, labels=ids)).values)
