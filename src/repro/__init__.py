"""repro: a reproduction of "Underprovisioning Backup Power Infrastructure
for Datacenters" (Wang et al., ASPLOS 2014).

The library models a datacenter's backup power path — Peukert-law UPS
batteries, diesel generators with start-up/transfer delays, rack-level
placement — together with the outage-handling system techniques of the
paper (throttling, sleep, hibernation, migration, proactive and hybrid
variants) and four calibrated workload models, and evaluates the
cost / performance / availability trade-offs of underprovisioning.

Quickstart::

    from repro import (
        get_configuration, get_technique, get_workload,
        evaluate_point, minutes,
    )

    point = evaluate_point(
        configuration=get_configuration("LargeEUPS"),
        technique=get_technique("throttle+sleep-l"),
        workload=get_workload("specjbb"),
        outage_seconds=minutes(30),
    )
    print(point.normalized_cost, point.performance, point.downtime_minutes)
"""

from repro.core.configurations import (
    FIGURE5_CONFIGURATIONS,
    PAPER_CONFIGURATIONS,
    BackupConfiguration,
    get_configuration,
)
from repro.core.costs import (
    PAPER_COST_PARAMETERS,
    BackupCostModel,
    CostBreakdown,
    CostParameters,
)
from repro.core.performability import (
    PerformabilityPoint,
    evaluate_point,
    make_datacenter,
)
from repro.core.heterogeneous import (
    HeterogeneousPlan,
    HeterogeneousPlanner,
    SectionRequirement,
)
from repro.core.planner import ProvisioningPlanner, ProvisioningResult
from repro.core.predictor import AdaptivePolicy, OutageDurationPredictor
from repro.core.selection import best_technique, lowest_cost_backup, rank_techniques
from repro.core.tco import TCOModel
from repro.errors import (
    CapacityError,
    ConfigurationError,
    InfeasibleError,
    ReproError,
    RunnerError,
    SimulationError,
    TechniqueError,
    WorkloadError,
)
from repro.geo.economics import GeoEconomics
from repro.geo.failover import CloudBurstTechnique, GeoFailoverTechnique
from repro.geo.replication import FailoverOutcome, GeoReplicationModel
from repro.geo.site import Site
from repro.outages.distributions import (
    OUTAGE_DURATION_DISTRIBUTION,
    OUTAGE_FREQUENCY_DISTRIBUTION,
    PAPER_OUTAGE_DURATIONS_SECONDS,
)
from repro.outages.events import OutageEvent, OutageSchedule
from repro.outages.generator import OutageGenerator
from repro.power.battery import LEAD_ACID, LI_ION, Battery, BatterySpec
from repro.power.generator import DieselGenerator, DieselGeneratorSpec
from repro.power.placement import ServerLevelBatteryBank, UPSPlacement
from repro.power.ups import UPSSpec, UPSUnit
from repro.runner import (
    Job,
    ParallelExecutor,
    ResultCache,
    RunStats,
    SerialExecutor,
    make_executor,
    make_jobs,
)
from repro.servers.cluster import Cluster
from repro.servers.server import PAPER_SERVER, ServerSpec
from repro.sim.datacenter import Datacenter
from repro.sim.metrics import OutageOutcome
from repro.sim.outage_sim import OutageSimulator, simulate_outage
from repro.techniques.base import OutagePlan, OutageTechnique, TechniqueContext
from repro.techniques.registry import PAPER_TECHNIQUES, get_technique
from repro.units import hours, minutes, seconds
from repro.workloads.registry import PAPER_WORKLOADS, get_workload

__version__ = "1.0.0"

__all__ = [
    "AdaptivePolicy",
    "CloudBurstTechnique",
    "FailoverOutcome",
    "GeoEconomics",
    "GeoFailoverTechnique",
    "GeoReplicationModel",
    "HeterogeneousPlan",
    "HeterogeneousPlanner",
    "SectionRequirement",
    "Site",
    "BackupConfiguration",
    "BackupCostModel",
    "Battery",
    "BatterySpec",
    "CapacityError",
    "Cluster",
    "ConfigurationError",
    "CostBreakdown",
    "CostParameters",
    "Datacenter",
    "DieselGenerator",
    "DieselGeneratorSpec",
    "FIGURE5_CONFIGURATIONS",
    "InfeasibleError",
    "Job",
    "LEAD_ACID",
    "LI_ION",
    "OUTAGE_DURATION_DISTRIBUTION",
    "OUTAGE_FREQUENCY_DISTRIBUTION",
    "OutageDurationPredictor",
    "OutageEvent",
    "OutageGenerator",
    "OutageOutcome",
    "OutagePlan",
    "OutageSchedule",
    "OutageSimulator",
    "OutageTechnique",
    "PAPER_CONFIGURATIONS",
    "PAPER_COST_PARAMETERS",
    "PAPER_OUTAGE_DURATIONS_SECONDS",
    "PAPER_SERVER",
    "PAPER_TECHNIQUES",
    "PAPER_WORKLOADS",
    "ParallelExecutor",
    "PerformabilityPoint",
    "ProvisioningPlanner",
    "ProvisioningResult",
    "ReproError",
    "ResultCache",
    "RunStats",
    "RunnerError",
    "SerialExecutor",
    "ServerLevelBatteryBank",
    "ServerSpec",
    "SimulationError",
    "TCOModel",
    "TechniqueContext",
    "TechniqueError",
    "UPSPlacement",
    "UPSSpec",
    "UPSUnit",
    "WorkloadError",
    "best_technique",
    "evaluate_point",
    "get_configuration",
    "get_technique",
    "get_workload",
    "hours",
    "lowest_cost_backup",
    "make_datacenter",
    "make_executor",
    "make_jobs",
    "minutes",
    "rank_techniques",
    "seconds",
    "simulate_outage",
]
