"""Execute an outage under a policy instead of a precompiled plan.

:class:`_PolicyRun` subclasses the plan engine
(:class:`~repro.sim.outage_sim._OutageRun`) and changes exactly three
things: the phase list starts empty and is *spliced* from policy
decisions, segment ends gain one extra candidate (the decision's
state-of-charge review threshold, solved in closed form against the same
Peukert drain the battery applies), and a boundary that exhausts the
spliced program consults the policy again instead of raising.  Everything
else — source selection, fault draws, invariant guards, closed-form
segment integration, crash/restore semantics, the power trace — is the
plan engine's code, untouched.  A run with no policy configured never
enters this module, so the plan path stays bit-identical by construction.

Decision points:

* ``outage-start`` — before the first segment (the seamlessness check
  sees the first *decided* phase, exactly as the plan path would).
* ``hold-expired`` — the decision's ``hold_seconds`` ran out.
* ``reserve`` — the battery reached the decision's ``review_soc``
  (never during a committed phase: an image write cannot be abandoned).

Clairvoyant policies additionally receive a rollout oracle that
simulates candidate programs — or rival online policies — against the
exact same trace (same faults, same initial charge, same DG roll) with
observability and guards off, which is how the hindsight baseline is an
upper bound *by construction* rather than by trusted arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Optional

from repro.checks.guard import InvariantGuard
from repro.errors import PolicyError
from repro.faults import FaultDraw
from repro.obs import MetricsRegistry, Tracer
from repro.policy.base import (
    ModeView,
    OutagePolicy,
    PolicyContext,
    PolicyDecision,
    RolloutCandidate,
)
from repro.policy.catalog import ModeCatalog
from repro.sim.datacenter import Datacenter
from repro.sim.metrics import OutageOutcome, SourceKind
from repro.sim.outage_sim import _EPS, _OutageRun
from repro.techniques.base import OutagePlan, PlanPhase

#: Absolute slack on state-of-charge comparisons (review thresholds).
_SOC_EPS = 1e-9

#: Hard ceiling on decisions per outage — a backstop against a policy
#: that keeps asking for vanishing holds, far above any sane cadence.
_MAX_DECISIONS = 100_000

#: Longest delegate -> delegate chain one consult may walk.
_MAX_DELEGATIONS = 8


def _placeholder_plan(policy: OutagePolicy) -> OutagePlan:
    """A valid do-nothing plan to satisfy the base constructor; replaced
    by the first decision before any segment executes."""
    return OutagePlan(
        technique_name=f"policy:{policy.name}",
        phases=(
            PlanPhase(
                name="policy-pending",
                power_watts=0.0,
                performance=0.0,
                duration_seconds=math.inf,
                state_safe=True,
            ),
        ),
    )


class _PolicyRun(_OutageRun):
    """One policy-driven simulation's mutable state."""

    def __init__(
        self,
        datacenter: Datacenter,
        policy: OutagePolicy,
        outage_seconds: float,
        lost_work_seconds: Optional[float] = None,
        initial_state_of_charge: float = 1.0,
        dg_starts: bool = True,
        guard: Optional[InvariantGuard] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultDraw] = None,
        catalog: Optional[ModeCatalog] = None,
    ):
        super().__init__(
            datacenter,
            _placeholder_plan(policy),
            outage_seconds,
            lost_work_seconds,
            initial_state_of_charge=initial_state_of_charge,
            dg_starts=dg_starts,
            guard=guard,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
        )
        self.policy = policy
        self._dg_starts_param = dg_starts
        self.catalog = (
            catalog if catalog is not None else ModeCatalog.compile(datacenter)
        )
        self._mode_views = self._build_mode_views()
        self._mode: Optional[str] = None
        self._review_soc: Optional[float] = None
        self._leaving: Optional[PlanPhase] = None
        self._final = False  # a terminal program is spliced; no more consults
        self.decisions = 0
        self.switches = 0
        self._consult("outage-start")

    # -- the controller's view ---------------------------------------------------

    def _build_mode_views(self) -> Dict[str, ModeView]:
        """Mode economics against *this* run's battery (fault derates
        included — the store was built from the derated spec)."""
        views: Dict[str, ModeView] = {}
        for mode in self.catalog:
            steady = mode.steady_phase
            entry_cost = sum(
                self._drain_rate(p.power_watts, p.active_servers)
                * float(p.duration_seconds)
                for p in mode.entry_phases
            )
            feasible = True
            if self.ups is not None:
                feasible = all(
                    self.ups.can_carry(p.power_watts, p.active_servers)
                    for p in mode.program()
                    if p.power_watts > 0
                )
            views[mode.name] = ModeView(
                name=mode.name,
                performance=steady.performance,
                power_watts=steady.power_watts,
                drain_per_second=self._drain_rate(
                    steady.power_watts, steady.active_servers
                ),
                entry_seconds=mode.entry_seconds,
                entry_soc_cost=entry_cost,
                state_safe=steady.state_safe,
                resume_downtime_seconds=steady.resume_downtime_seconds,
                ups_feasible=feasible,
            )
        return views

    def _context(self, reason: str) -> PolicyContext:
        clairvoyant = self.policy.clairvoyant
        dg_eta = math.inf
        if self._dg_usable and math.isfinite(self.t_dg):
            dg_eta = max(0.0, self.t_dg - self.t)
        return PolicyContext(
            t=self.t,
            reason=reason,
            state_of_charge=(
                self.ups.state_of_charge if self.ups is not None else None
            ),
            initial_state_of_charge=self._initial_soc,
            normal_power_watts=self.normal_power,
            modes=self._mode_views,
            mode=self._mode,
            dg_pending=self._dg_usable and self.t < self.t_dg,
            dg_eta_seconds=dg_eta,
            dg_restores=self.dg_full,
            outage_seconds=self.T if clairvoyant else None,
            rollout=self._rollout if clairvoyant else None,
            datacenter=self.dc,
            catalog=self.catalog,
        )

    # -- the clairvoyant oracle ----------------------------------------------------

    def _rollout(self, candidate: RolloutCandidate) -> OutageOutcome:
        """Simulate ``candidate`` against this exact trace, silently.

        Same facility, same faults, same initial charge, same DG start
        roll; no tracer, no metrics, no guard — exploration must not
        pollute observability or strict checking.
        """
        if isinstance(candidate, OutagePolicy):
            if candidate.clairvoyant:
                raise PolicyError(
                    "rollout candidates must be online policies or programs"
                )
            run: _OutageRun = _PolicyRun(
                self.dc,
                candidate,
                self.T,
                self.lost_work_seconds,
                initial_state_of_charge=self._initial_soc,
                dg_starts=self._dg_starts_param,
                faults=self.faults,
                catalog=self.catalog,
            )
        else:
            plan = OutagePlan("rollout", tuple(candidate))
            run = _OutageRun(
                self.dc,
                plan,
                self.T,
                self.lost_work_seconds,
                initial_state_of_charge=self._initial_soc,
                dg_starts=self._dg_starts_param,
                faults=self.faults,
            )
        return run.execute()

    # -- consulting and splicing ---------------------------------------------------

    def _consult(self, reason: str) -> None:
        for _ in range(_MAX_DELEGATIONS):
            decision = self.policy.decide(self._context(reason))
            if decision.delegate is None:
                break
            self.policy = decision.delegate
            reason = "delegated"
        else:
            raise PolicyError(
                f"policy delegation chain exceeded {_MAX_DELEGATIONS}"
            )
        self.decisions += 1
        if self.decisions > _MAX_DECISIONS:
            raise PolicyError(
                f"policy issued more than {_MAX_DECISIONS} decisions in one "
                "outage (runaway consult loop)"
            )
        self._apply(decision, reason)

    def _apply(self, decision: PolicyDecision, reason: str) -> None:
        prev_mode = self._mode
        if decision.program is not None:
            program = list(decision.program)
            label = decision.technique_name or "program"
            if decision.technique_name is not None:
                # Record the outcome under the technique's own name, so a
                # static anchor is indistinguishable from the plan path.
                self.plan = OutagePlan(
                    technique_name=decision.technique_name,
                    phases=tuple(decision.program),
                )
            self._mode = None
            self._final = True
        else:
            # An infeasible mode choice is not an error here: the engine
            # executes it and physics decides (the segment crashes, exactly
            # as an over-budget plan would on the plan path).
            mode = self.catalog.get(decision.mode)
            if prev_mode == mode.name:
                program = [mode.steady_phase]  # continue: no re-entry
            else:
                program = list(mode.program())
            if decision.hold_seconds is not None:
                program[-1] = replace(
                    program[-1], duration_seconds=float(decision.hold_seconds)
                )
            label = mode.name
            self._mode = mode.name
            self._final = False

        wake = self._wake_phase(program, switching=self._mode != prev_mode)
        if wake is not None:
            program.insert(0, wake)
        self._leaving = None

        review = decision.review_soc
        self._review_soc = None
        if (
            review is not None
            and not self._final
            and self.ups is not None
            and review < self.ups.state_of_charge - _SOC_EPS
        ):
            self._review_soc = review

        self.phases = list(self.phases[: self.idx]) + program
        self.phase_remaining = self._phase_duration_on_entry(self.idx)
        if self.tracer is not None and self._phase_span is not None:
            self._close_phase_span()
            self._open_phase_span()

        if prev_mode is not None and self._mode not in (None, prev_mode):
            self.switches += 1
            if self.metrics is not None:
                self.metrics.counter("policy.switches").inc()
        if self.metrics is not None:
            self.metrics.counter(f"policy.decisions[{label}]").inc()
            if reason == "reserve":
                self.metrics.counter("policy.reserve_averted").inc()
        if self.tracer is not None:
            self.tracer.event(
                "policy-decision",
                t=float(self.t),
                mode=label,
                reason=reason,
                policy=self.policy.name,
            )

    def _wake_phase(
        self, program: List[PlanPhase], switching: bool
    ) -> Optional[PlanPhase]:
        """Leaving a parked state is not free: charge the departed phase's
        resume path (at the incoming program's peak draw, serving nothing)
        before the new mode starts."""
        leaving = self._leaving
        if not switching or leaving is None:
            return None
        if leaving.resume_downtime_seconds <= 0:
            return None
        return PlanPhase(
            name=f"wake-from-{leaving.name}",
            power_watts=max(p.power_watts for p in program),
            performance=0.0,
            duration_seconds=leaving.resume_downtime_seconds,
            committed=True,
            state_safe=leaving.state_safe,
            resume_downtime_seconds=0.0,
            active_servers=leaving.active_servers,
        )

    # -- engine overrides -----------------------------------------------------------

    def _segment_end(self, phase: PlanPhase, source: SourceKind) -> float:
        end = super()._segment_end(phase, source)
        if (
            self._review_soc is not None
            and not phase.committed
            and source is SourceKind.UPS
            and self.ups is not None
        ):
            soc = self.ups.state_of_charge
            rate = self._drain_rate(phase.power_watts, phase.active_servers)
            if soc > self._review_soc and 0 < rate < math.inf:
                # Drain is linear in time at fixed power, so the review
                # crossing has a closed form, like every other candidate.
                end = min(end, self.t + (soc - self._review_soc) / rate)
        return end

    def _dispatch_boundary(
        self, phase: PlanPhase, source: SourceKind, seg_end: float
    ) -> bool:
        if seg_end >= self.T - _EPS:
            return True  # outage over; base caller restores
        if self._dg_usable and abs(seg_end - self.t_dg) <= _EPS:
            return super()._dispatch_boundary(phase, source, seg_end)
        if not self._final:
            if (
                self._review_soc is not None
                and not phase.committed
                and self.ups is not None
                and self.ups.state_of_charge <= self._review_soc + _SOC_EPS
            ):
                # The review threshold fired: abandon the rest of the
                # current program and ask for the next move.
                self._leaving = phase
                self.phases = list(self.phases[: self.idx])
                self.idx = len(self.phases)
                self._consult("reserve")
                return False
            if self.phase_remaining <= _EPS and self.idx + 1 >= len(self.phases):
                # The decision's hold ran out with nothing queued behind
                # it — where the plan path would overrun its terminal
                # phase, the policy path asks again.
                self._leaving = phase
                self.idx += 1
                self._consult("hold-expired")
                return False
        return super()._dispatch_boundary(phase, source, seg_end)
