"""The online controllers: static anchor, greedy reserve, Lyapunov.

Three policies that see only the observed context:

* :class:`StaticPolicy` — wraps any registered technique and splices its
  compiled plan wholesale at outage start.  The equivalence anchor: the
  policy engine executing ``StaticPolicy(t)`` is bit-identical to the
  plan path executing ``t``'s plan, which is what certifies the engine
  adds nothing of its own.
* :class:`GreedyReservePolicy` — serve at the best feasible mode, but
  keep a reserve: when the battery drops to the reserve threshold
  (sized so the save mode's entry transient still fits, with margin),
  switch to the save mode and park.  The online analogue of the paper's
  sustain-then-save hybrids, with the switch point decided from the
  *observed* charge instead of solved clairvoyantly.
* :class:`LyapunovPolicy` — drift-plus-penalty control after Urgaonkar
  et al. (arXiv 1103.3099): each epoch, pick the mode minimising
  ``V * (1 - performance) + Q * drain * horizon`` where the virtual
  queue ``Q = 1 - soc`` is the battery deficit.  Large ``V`` favours
  serving; a draining battery grows ``Q`` until parking wins.  A hard
  reserve floor backstops the tuning.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple, Union

from repro.errors import PolicyError
from repro.policy.base import (
    ModeView,
    OutagePolicy,
    PolicyContext,
    PolicyDecision,
)
from repro.policy.catalog import SAVE_MODE_ORDER, SERVE_MODE_ORDER
from repro.techniques.base import OutageTechnique, TechniqueContext


class StaticPolicy(OutagePolicy):
    """Splice one technique's compiled plan and never decide again."""

    def __init__(self, technique: Union[str, OutageTechnique]):
        if isinstance(technique, str):
            from repro.techniques.registry import get_technique

            technique = get_technique(technique)
        self.technique = technique
        self.name = f"static:{technique.name}"

    def decide(self, context: PolicyContext) -> PolicyDecision:
        from repro.core.performability import plan_power_budget_watts

        datacenter = context.datacenter
        if datacenter is None:
            raise PolicyError("StaticPolicy needs the engine's datacenter")
        plan = self.technique.compile_plan(
            TechniqueContext(
                cluster=datacenter.cluster,
                workload=datacenter.workload,
                power_budget_watts=plan_power_budget_watts(datacenter),
            )
        )
        return PolicyDecision(
            program=tuple(plan.phases), technique_name=plan.technique_name
        )


def _first_feasible(
    modes: Mapping[str, ModeView], order: Tuple[str, ...]
) -> Optional[ModeView]:
    for name in order:
        view = modes.get(name)
        if view is not None and view.ups_feasible:
            return view
    return None


class GreedyReservePolicy(OutagePolicy):
    """Serve until the battery hits a save-sized reserve, then park.

    Args:
        serve: Serving mode name (default: best of ``full``/``migrate``/
            ``throttle`` that the battery can carry).
        save: Parking mode name (default: cheapest-to-hold of the
            hibernate/sleep family that compiled).
        reserve_floor: State-of-charge fraction always held back.
        margin: Multiplier on the save mode's entry cost when sizing the
            reserve (2 = switch with twice the charge the transition
            needs, absorbing drain-model error).
    """

    name = "greedy"

    def __init__(
        self,
        serve: Optional[str] = None,
        save: Optional[str] = None,
        reserve_floor: float = 0.05,
        margin: float = 2.0,
    ):
        if not 0 <= reserve_floor < 1:
            raise PolicyError("reserve_floor must be in [0, 1)")
        if margin < 1:
            raise PolicyError("margin must be >= 1")
        self.serve = serve
        self.save = save
        self.reserve_floor = reserve_floor
        self.margin = margin

    def _serve_mode(self, modes: Mapping[str, ModeView]) -> Optional[ModeView]:
        if self.serve is not None:
            return modes.get(self.serve)
        return _first_feasible(modes, SERVE_MODE_ORDER)

    def _save_mode(self, modes: Mapping[str, ModeView]) -> Optional[ModeView]:
        if self.save is not None:
            return modes.get(self.save)
        return _first_feasible(modes, SAVE_MODE_ORDER)

    def _reserve(self, save: Optional[ModeView]) -> float:
        if save is None:
            return 0.0
        return min(1.0, self.reserve_floor + self.margin * save.entry_soc_cost)

    def decide(self, context: PolicyContext) -> PolicyDecision:
        modes = context.modes
        serve = self._serve_mode(modes)
        save = self._save_mode(modes)
        soc = context.state_of_charge
        reserve = self._reserve(save)
        at_reserve = soc is not None and soc <= reserve
        if save is not None and (context.reason == "reserve" or at_reserve):
            return PolicyDecision(mode=save.name)
        if serve is not None:
            review = reserve if (save is not None and soc is not None) else None
            return PolicyDecision(mode=serve.name, review_soc=review)
        if save is not None:
            return PolicyDecision(mode=save.name)
        # Nothing feasible: hold the lowest-power mode and let physics rule.
        fallback = min(
            modes.values(), key=lambda view: (view.power_watts, view.name)
        )
        return PolicyDecision(mode=fallback.name)


class LyapunovPolicy(OutagePolicy):
    """Drift-plus-penalty mode selection, re-decided every epoch.

    Args:
        v: The performance weight (the literature's ``V``): how much
            serving is worth relative to battery drift.  Large ``V``
            rides the battery harder before parking.
        epoch_seconds: Re-decision cadence.
        reserve_floor: Hard state-of-charge floor: at or below it the
            controller parks regardless of the score.
        horizon_seconds: Time scale converting a drain rate into a
            charge-pressure term (how far ahead the drift looks).
    """

    name = "lyapunov"

    def __init__(
        self,
        v: float = 1.0,
        epoch_seconds: float = 300.0,
        reserve_floor: float = 0.05,
        horizon_seconds: float = 3600.0,
    ):
        if v <= 0:
            raise PolicyError("v must be positive")
        if epoch_seconds <= 0:
            raise PolicyError("epoch_seconds must be positive")
        if not 0 <= reserve_floor < 1:
            raise PolicyError("reserve_floor must be in [0, 1)")
        if horizon_seconds <= 0:
            raise PolicyError("horizon_seconds must be positive")
        self.v = v
        self.epoch_seconds = epoch_seconds
        self.reserve_floor = reserve_floor
        self.horizon_seconds = horizon_seconds

    def _guard_soc(self, save: Optional[ModeView]) -> float:
        entry = save.entry_soc_cost if save is not None else 0.0
        return min(1.0, self.reserve_floor + entry)

    def decide(self, context: PolicyContext) -> PolicyDecision:
        modes = context.modes
        save = _first_feasible(modes, SAVE_MODE_ORDER)
        soc = context.state_of_charge
        if soc is None:
            # No battery to manage: plain greedy on performance.
            best = _first_feasible(modes, SERVE_MODE_ORDER)
            if best is None:
                best = min(
                    modes.values(), key=lambda view: (view.power_watts, view.name)
                )
            return PolicyDecision(mode=best.name)
        guard = self._guard_soc(save)
        if save is not None and (context.reason == "reserve" or soc <= guard):
            return PolicyDecision(mode=save.name)

        queue = 1.0 - soc  # the virtual battery-deficit queue
        best_name: Optional[str] = None
        best_score = float("inf")
        # Deterministic candidate order: serving modes first, then parking.
        for name in (*SERVE_MODE_ORDER, *SAVE_MODE_ORDER):
            view = modes.get(name)
            if view is None or not view.ups_feasible:
                continue
            score = (
                self.v * (1.0 - view.performance)
                + queue * view.drain_per_second * self.horizon_seconds
            )
            if score < best_score - 1e-15:
                best_score = score
                best_name = name
        if best_name is None:
            best_name = min(
                modes.values(), key=lambda view: (view.power_watts, view.name)
            ).name
        review = guard if save is not None else None
        return PolicyDecision(
            mode=best_name,
            hold_seconds=self.epoch_seconds,
            review_soc=review,
        )
