"""Online outage-dispatch policies and the optimal-in-hindsight baseline.

The paper commits each evaluated configuration to one precompiled
technique plan; this package supplies the *adaptive* alternative: a
controller consulted stepwise during the outage — at outage start, hold
expiry, or a battery review threshold — that picks the next operating
mode from the observed state.  See ``docs/POLICY.md`` for the model and
:mod:`repro.policy.base` for the stepping interface.

Public surface:

* :class:`OutagePolicy` / :class:`PolicyContext` / :class:`PolicyDecision`
  / :class:`ModeView` — the stepping interface.
* :class:`ModeCatalog` / :class:`PolicyMode` — the compiled mode menu.
* :class:`StaticPolicy`, :class:`GreedyReservePolicy`,
  :class:`LyapunovPolicy`, :class:`HindsightOptimalPolicy` — the
  controllers.
* :func:`parse_policy` / :func:`policy_label` — the spec grammar.
* :func:`performability_score` — the grading scalar.
* :func:`policy_cell` / :func:`policy_frontier_jobs` /
  :func:`reduce_policy_frontier` — the frontier analysis, runner-shaped.
"""

from repro.policy.base import (
    ModeView,
    OutagePolicy,
    PolicyContext,
    PolicyDecision,
    performability_score,
)
from repro.policy.catalog import (
    MODE_TECHNIQUES,
    SAVE_MODE_ORDER,
    SERVE_MODE_ORDER,
    ModeCatalog,
    PolicyMode,
)
from repro.policy.controllers import (
    GreedyReservePolicy,
    LyapunovPolicy,
    StaticPolicy,
)
from repro.policy.frontier import (
    DEFAULT_POLICY_SPECS,
    adaptive_dominations,
    hindsight_is_upper_bound,
    policy_cell,
    policy_frontier_jobs,
    reduce_policy_frontier,
)
from repro.policy.hindsight import HindsightOptimalPolicy, default_rivals
from repro.policy.parse import POLICY_KINDS, parse_policy, policy_label

__all__ = [
    "ModeView",
    "OutagePolicy",
    "PolicyContext",
    "PolicyDecision",
    "performability_score",
    "MODE_TECHNIQUES",
    "SAVE_MODE_ORDER",
    "SERVE_MODE_ORDER",
    "ModeCatalog",
    "PolicyMode",
    "StaticPolicy",
    "GreedyReservePolicy",
    "LyapunovPolicy",
    "HindsightOptimalPolicy",
    "default_rivals",
    "POLICY_KINDS",
    "parse_policy",
    "policy_label",
    "DEFAULT_POLICY_SPECS",
    "adaptive_dominations",
    "hindsight_is_upper_bound",
    "policy_cell",
    "policy_frontier_jobs",
    "reduce_policy_frontier",
]
