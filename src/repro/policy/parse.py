"""Parse policy spec strings into controller instances.

Every surface that names a policy — the CLI, the serve protocol, job
specs rebuilt inside worker processes — uses one spec grammar::

    static:<technique>                     the equivalence anchor
    greedy[:k=v,...]                       keys: serve, save, floor, margin
    lyapunov[:k=v,...]                     keys: v, epoch, floor, horizon
    hindsight                              the clairvoyant upper bound

Specs are the *identity* of a policy in fingerprints and caches, so
:func:`parse_policy` is strict (unknown kinds and keys raise
:class:`~repro.errors.PolicyError`) and :func:`policy_label` returns the
canonical string a spec normalises to.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.errors import PolicyError, TechniqueError
from repro.policy.base import OutagePolicy
from repro.policy.controllers import (
    GreedyReservePolicy,
    LyapunovPolicy,
    StaticPolicy,
)
from repro.policy.hindsight import HindsightOptimalPolicy

#: Policy kinds the grammar accepts, in presentation order.
POLICY_KINDS: Tuple[str, ...] = ("static", "greedy", "lyapunov", "hindsight")


def _parse_kv(arg: str, kind: str) -> Dict[str, str]:
    pairs: Dict[str, str] = {}
    for item in arg.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise PolicyError(
                f"malformed {kind} option {item!r} (expected key=value)"
            )
        key, _, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if key in pairs:
            raise PolicyError(f"duplicate {kind} option {key!r}")
        pairs[key] = value
    return pairs


def _float_option(kind: str, key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise PolicyError(
            f"{kind} option {key}={value!r} is not a number"
        ) from None


def _make_greedy(arg: Optional[str]) -> GreedyReservePolicy:
    options = _parse_kv(arg or "", "greedy")
    kwargs: Dict[str, object] = {}
    for key, value in options.items():
        if key in ("serve", "save"):
            kwargs[key] = value
        elif key == "floor":
            kwargs["reserve_floor"] = _float_option("greedy", key, value)
        elif key == "margin":
            kwargs["margin"] = _float_option("greedy", key, value)
        else:
            raise PolicyError(
                f"unknown greedy option {key!r} (have serve, save, floor, margin)"
            )
    return GreedyReservePolicy(**kwargs)  # type: ignore[arg-type]


def _make_lyapunov(arg: Optional[str]) -> LyapunovPolicy:
    options = _parse_kv(arg or "", "lyapunov")
    kwargs: Dict[str, float] = {}
    names = {
        "v": "v",
        "epoch": "epoch_seconds",
        "floor": "reserve_floor",
        "horizon": "horizon_seconds",
    }
    for key, value in options.items():
        if key not in names:
            raise PolicyError(
                f"unknown lyapunov option {key!r} (have v, epoch, floor, horizon)"
            )
        kwargs[names[key]] = _float_option("lyapunov", key, value)
    return LyapunovPolicy(**kwargs)


def _make_static(arg: Optional[str]) -> StaticPolicy:
    if not arg:
        raise PolicyError("static policy needs a technique: static:<technique>")
    try:
        return StaticPolicy(arg)
    except TechniqueError as exc:
        raise PolicyError(f"static policy: {exc}") from exc


def _make_hindsight(arg: Optional[str]) -> HindsightOptimalPolicy:
    if arg:
        raise PolicyError("hindsight takes no options")
    return HindsightOptimalPolicy()


_MAKERS: Mapping[str, Callable[[Optional[str]], OutagePolicy]] = {
    "static": _make_static,
    "greedy": _make_greedy,
    "lyapunov": _make_lyapunov,
    "hindsight": _make_hindsight,
}


def parse_policy(spec: str) -> OutagePolicy:
    """Build the controller a spec string describes.

    Raises:
        PolicyError: Unknown kind, unknown or malformed option, or (for
            ``static``) an unregistered technique name.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise PolicyError("policy spec must be a non-empty string")
    spec = spec.strip()
    kind, sep, arg = spec.partition(":")
    kind = kind.strip().lower()
    maker = _MAKERS.get(kind)
    if maker is None:
        raise PolicyError(
            f"unknown policy kind {kind!r}; have {', '.join(POLICY_KINDS)}"
        )
    return maker(arg.strip() if sep else None)


def policy_label(spec: str) -> str:
    """The canonical display label for a spec (parses it to validate)."""
    return parse_policy(spec).name
