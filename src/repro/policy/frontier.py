"""The policy frontier: cost vs. expected performability, adaptive vs. static.

The paper's Table 3 story prices *static* commitments: pick a backup
configuration and a technique up front, pay the configuration's cost,
accept the technique's performability.  This analysis re-plots that
trade-off with online policies in the mix.  Each cell integrates one
(configuration, policy) pairing over the Figure 1(b) outage-duration
distribution — the same deterministic quadrature the what-if analysis
uses — into one expected :func:`~repro.policy.base.performability_score`.
The reduce step marks the Pareto frontier over (cost, score), checks the
hindsight baseline really is an upper bound on every configuration it
ran on, and lists every strict domination of a static cell by an
adaptive one (the headline the smoke benchmark asserts).

Cells follow the runner's job contract: specs carry only registry names
and scalars, results are plain JSON-able dicts, and ``seed`` is ignored
because the quadrature is deterministic — so results cache and batch
exactly like ``rank``/``sweep``/``whatif`` cells do.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.analysis.frontier import dominates, pareto_frontier
from repro.errors import PolicyError, TechniqueError
from repro.runner.jobs import Job, make_jobs

#: Score slack for the hindsight-bound check: rollouts replay the same
#: closed-form arithmetic, so the only admissible gap is float noise.
SCORE_TOLERANCE = 1e-9

#: The default policy roster: one static anchor per serving stance plus
#: every adaptive controller, hindsight last.
DEFAULT_POLICY_SPECS: Tuple[str, ...] = (
    "static:full-service",
    "static:sleep-l",
    "static:hibernate-l",
    "greedy",
    "lyapunov",
    "hindsight",
)


def policy_cell(spec: Mapping[str, Any], seed: Any) -> Dict[str, Any]:
    """Runner job: one (configuration, policy) expectation.

    The spec carries ``workload``, ``configuration``, ``policy`` (a spec
    string for :func:`~repro.policy.parse.parse_policy`),
    ``nodes_per_bucket`` and ``servers``.  ``seed`` is ignored — the
    quadrature is deterministic.
    """
    from repro.core.configurations import get_configuration
    from repro.core.performability import make_datacenter
    from repro.core.whatif import ExpectedOutageAnalyzer
    from repro.policy.base import performability_score
    from repro.policy.catalog import ModeCatalog
    from repro.policy.parse import parse_policy
    from repro.sim.outage_sim import simulate_outage
    from repro.workloads.registry import get_workload

    workload = get_workload(spec["workload"])
    configuration = get_configuration(spec["configuration"])
    policy = parse_policy(spec["policy"])
    record: Dict[str, Any] = {
        "workload": workload.name,
        "configuration": configuration.name,
        "policy": spec["policy"],
        "label": policy.name,
        "adaptive": not policy.name.startswith("static:"),
        "clairvoyant": policy.clairvoyant,
        "normalized_cost": configuration.normalized_cost(),
        "feasible": True,
        "expected_score": 0.0,
        "expected_performance": 0.0,
        "expected_downtime_seconds": 0.0,
        "crash_probability": 0.0,
    }
    datacenter = make_datacenter(workload, configuration, spec["servers"])
    analyzer = ExpectedOutageAnalyzer(
        workload,
        nodes_per_bucket=spec["nodes_per_bucket"],
        num_servers=spec["servers"],
    )
    nodes = analyzer.quadrature_nodes()
    total_weight = sum(weight for _, weight in nodes)
    score = performance = downtime = crash = 0.0
    try:
        catalog = ModeCatalog.compile(datacenter)
        for duration, weight in nodes:
            outcome = simulate_outage(
                datacenter, None, duration, policy=policy, catalog=catalog
            )
            score += weight * performability_score(outcome)
            performance += weight * outcome.mean_performance
            downtime += weight * outcome.downtime_seconds
            crash += weight * (1.0 if outcome.crashed else 0.0)
    except (TechniqueError, PolicyError):
        # A static anchor whose technique cannot fit this configuration's
        # budget, or a configuration with no compilable mode at all:
        # an infeasible cell, exactly like the plan path's treatment.
        record["feasible"] = False
        record["expected_downtime_seconds"] = float("inf")
        record["crash_probability"] = 1.0
        return record
    record["expected_score"] = score / total_weight
    record["expected_performance"] = performance / total_weight
    record["expected_downtime_seconds"] = downtime / total_weight
    record["crash_probability"] = crash / total_weight
    return record


def policy_frontier_jobs(
    workload_name: str,
    configuration_names: Sequence[str],
    policy_specs: Sequence[str] = DEFAULT_POLICY_SPECS,
    nodes_per_bucket: int = 2,
    num_servers: int = 16,
) -> List[Job]:
    """One cell job per (configuration, policy) pairing, grid order."""
    specs = []
    labels = []
    for configuration in configuration_names:
        for policy in policy_specs:
            specs.append(
                {
                    "workload": workload_name,
                    "configuration": configuration,
                    "policy": policy,
                    "nodes_per_bucket": nodes_per_bucket,
                    "servers": num_servers,
                }
            )
            labels.append(f"policy:{workload_name}/{configuration}/{policy}")
    return make_jobs(policy_cell, specs, labels=labels)


def _objectives(record: Mapping[str, Any]) -> Tuple[float, float]:
    """Minimise cost, maximise expected score."""
    return (record["normalized_cost"], -record["expected_score"])


def hindsight_is_upper_bound(
    records: Sequence[Mapping[str, Any]], tolerance: float = SCORE_TOLERANCE
) -> bool:
    """Whether, on every configuration a clairvoyant cell ran, its score
    is >= every other feasible cell's score (up to float noise)."""
    best_clairvoyant: Dict[str, float] = {}
    for record in records:
        if record["clairvoyant"] and record["feasible"]:
            key = record["configuration"]
            best_clairvoyant[key] = max(
                best_clairvoyant.get(key, -1.0), record["expected_score"]
            )
    for record in records:
        bound = best_clairvoyant.get(record["configuration"])
        if bound is None or not record["feasible"]:
            continue
        if record["expected_score"] > bound + tolerance:
            return False
    return True


def adaptive_dominations(
    records: Sequence[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Every strict Pareto domination of a static cell by an adaptive,
    *online* cell (hindsight is a bound, not a deployable policy)."""
    dominations = []
    for adaptive in records:
        if not adaptive["feasible"] or not adaptive["adaptive"]:
            continue
        if adaptive["clairvoyant"]:
            continue
        for static in records:
            if static["adaptive"] or not static["feasible"]:
                continue
            if dominates(_objectives(adaptive), _objectives(static)):
                dominations.append(
                    {
                        "adaptive": {
                            "configuration": adaptive["configuration"],
                            "policy": adaptive["policy"],
                            "normalized_cost": adaptive["normalized_cost"],
                            "expected_score": adaptive["expected_score"],
                        },
                        "static": {
                            "configuration": static["configuration"],
                            "policy": static["policy"],
                            "normalized_cost": static["normalized_cost"],
                            "expected_score": static["expected_score"],
                        },
                    }
                )
    return dominations


def reduce_policy_frontier(
    records: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Fold cell records into the frontier payload.

    Returns a dict with the cell ``points`` (each gaining an
    ``on_frontier`` flag), the ``frontier`` subset in input order, the
    ``hindsight_is_upper_bound`` verdict, and every strict
    ``adaptive_dominations`` pairing.  Deterministic in input order —
    the serve path and the CLI fold identical lists identically.
    """
    feasible = [r for r in records if r["feasible"]]
    frontier = pareto_frontier(feasible, _objectives)
    frontier_ids = {id(r) for r in frontier}
    points = []
    for record in records:
        point = dict(record)
        point["on_frontier"] = id(record) in frontier_ids
        points.append(point)
    return {
        "points": points,
        "frontier": [
            {
                "configuration": r["configuration"],
                "policy": r["policy"],
                "normalized_cost": r["normalized_cost"],
                "expected_score": r["expected_score"],
            }
            for r in frontier
        ],
        "hindsight_is_upper_bound": hindsight_is_upper_bound(records),
        "adaptive_dominations": adaptive_dominations(records),
    }
