"""The policy stepping interface: observe state, pick the next move.

The paper's evaluation commits every configuration to one precompiled
:class:`~repro.techniques.base.OutagePlan` before the outage ever starts.
This module defines the alternative the related online-control literature
argues for (Urgaonkar et al., arXiv 1103.3099): a *policy* that is consulted
at decision points **during** the outage — outage start, expiry of a
self-imposed hold, the battery reaching a review threshold — and answers
with the next move from the observed state only.

The pieces:

* :class:`ModeView` — what one operating mode (a compiled single-technique
  steady state, see :mod:`repro.policy.catalog`) looks like from the
  controller's chair: steady draw, drain rate on *this* battery, entry cost,
  whether state survives exhaustion.
* :class:`PolicyContext` — everything the engine reveals at a decision
  point.  Online policies must drive off the observed fields; the outage
  duration and the rollout oracle are populated only for policies that
  declare themselves ``clairvoyant`` (the hindsight baseline).
* :class:`PolicyDecision` — the answer: run a mode (optionally with a hold
  time or an SoC review threshold), splice a full phase program (the static
  anchor), or delegate to another policy (hindsight discovering an online
  rival is unbeatable on this trace).
* :class:`OutagePolicy` — the abstract controller.
* :func:`performability_score` — the scalar every policy is graded on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import PolicyError
from repro.sim.metrics import OutageOutcome
from repro.techniques.base import PlanPhase


@dataclass(frozen=True)
class ModeView:
    """One operating mode as the controller sees it at a decision point.

    Attributes:
        name: Catalog mode name (``full``, ``throttle``, ``sleep-l``, ...).
        performance: Normalised throughput delivered in the steady phase.
        power_watts: Steady-phase aggregate draw.
        drain_per_second: State-of-charge fraction the *engine's actual
            battery* loses per second in the steady phase (Peukert-aware;
            0 when no UPS or zero draw, ``inf`` for a pack that cannot
            sustain the draw at all).
        entry_seconds: Total fixed time of the mode's entry phases.
        entry_soc_cost: State-of-charge fraction the entry phases consume.
        state_safe: Volatile state survives battery exhaustion in the
            steady phase (true once state rests on disk).
        resume_downtime_seconds: Down time to return to full service when
            power returns while sitting in the steady phase.
        ups_feasible: The battery's power electronics can carry the
            steady draw at all.
    """

    name: str
    performance: float
    power_watts: float
    drain_per_second: float
    entry_seconds: float
    entry_soc_cost: float
    state_safe: bool
    resume_downtime_seconds: float
    ups_feasible: bool


#: A candidate the hindsight oracle can score: either a complete phase
#: program (terminal last phase) or a policy to imitate on the same trace.
RolloutCandidate = Union[Sequence[PlanPhase], "OutagePolicy"]

#: The clairvoyant rollout oracle: simulate a candidate against the exact
#: trace being decided (same faults, same initial charge, same DG roll)
#: and return its outcome.  Only populated for ``clairvoyant`` policies.
RolloutFn = Callable[[RolloutCandidate], OutageOutcome]


@dataclass(frozen=True)
class PolicyContext:
    """Everything the engine reveals at one decision point.

    Attributes:
        t: Seconds since outage start.
        reason: Why the policy is being consulted — ``"outage-start"``,
            ``"hold-expired"``, ``"reserve"`` (the review threshold fired),
            or ``"delegated"``.
        state_of_charge: Battery charge fraction right now (None = no UPS).
        initial_state_of_charge: Charge when the outage began.
        normal_power_watts: The fleet's normal operating draw.
        modes: The mode catalog, keyed by name, with drain rates computed
            against the engine's actual battery.
        mode: Name of the mode currently running (None before the first
            decision).
        dg_pending: A usable DG is still inside its start-up/transfer gap.
        dg_eta_seconds: Seconds until that DG can take load (``inf`` when
            no usable DG).
        dg_restores: The DG, once transferred, carries the full normal
            draw — the outage effectively ends at ``dg_eta_seconds``.
        outage_seconds: Total outage duration.  **Clairvoyant only**;
            None for online policies.
        rollout: The rollout oracle.  **Clairvoyant only**; None for
            online policies.
        datacenter: The facility under simulation.  Exposed so the static
            anchor can compile technique plans exactly as the plan path
            does; online controllers should drive off the observed fields.
        catalog: The engine's :class:`~repro.policy.catalog.ModeCatalog`,
            for policies that need a mode's actual phase program (the
            hindsight oracle builds switch candidates from it).
    """

    t: float
    reason: str
    state_of_charge: Optional[float]
    initial_state_of_charge: float
    normal_power_watts: float
    modes: Mapping[str, ModeView]
    mode: Optional[str]
    dg_pending: bool
    dg_eta_seconds: float
    dg_restores: bool
    outage_seconds: Optional[float] = None
    rollout: Optional[RolloutFn] = None
    datacenter: Any = field(default=None, repr=False)
    catalog: Any = field(default=None, repr=False)

    @property
    def bridging_horizon_seconds(self) -> float:
        """Seconds the battery must bridge before someone else carries the
        day (clairvoyant only: needs the outage duration)."""
        if self.outage_seconds is None:
            raise PolicyError(
                "bridging_horizon_seconds is clairvoyant-only information"
            )
        if self.dg_restores:
            return min(self.outage_seconds, self.dg_eta_seconds)
        return self.outage_seconds


@dataclass(frozen=True)
class PolicyDecision:
    """One answer from a policy.  Exactly one of ``mode`` / ``program`` /
    ``delegate`` must be set.

    Attributes:
        mode: Catalog mode to enter (the engine splices its entry phases,
            if any, then its steady phase).
        hold_seconds: Consult again after this much time in the steady
            phase (None = run the steady phase out).
        review_soc: Consult again (reason ``"reserve"``) when the battery
            drops to this state of charge.  Ignored during committed
            phases — an image write cannot be abandoned.
        program: A complete phase program to splice wholesale, terminal
            last phase (the static anchor and the hindsight winner use
            this; the policy is never consulted again).
        technique_name: Display name recorded on the outcome when
            ``program`` is set.
        delegate: Hand the rest of the outage to another policy (it is
            consulted immediately with reason ``"delegated"``).
    """

    mode: Optional[str] = None
    hold_seconds: Optional[float] = None
    review_soc: Optional[float] = None
    program: Optional[Tuple[PlanPhase, ...]] = None
    technique_name: Optional[str] = None
    delegate: Optional["OutagePolicy"] = None

    def __post_init__(self) -> None:
        set_fields = sum(
            1 for f in (self.mode, self.program, self.delegate) if f is not None
        )
        if set_fields != 1:
            raise PolicyError(
                "a decision must set exactly one of mode/program/delegate"
            )
        if self.hold_seconds is not None and self.hold_seconds <= 0:
            raise PolicyError("hold_seconds must be positive or None")
        if self.review_soc is not None and not 0 <= self.review_soc <= 1:
            raise PolicyError("review_soc must be in [0, 1]")
        if self.program is not None:
            if not self.program:
                raise PolicyError("program must have at least one phase")
            if not self.program[-1].is_terminal:
                raise PolicyError("program must end in a terminal phase")


class OutagePolicy:
    """Base class for online outage-dispatch controllers.

    A policy is consulted by the engine at decision points and must be
    deterministic given the context — the evaluation's bit-identical
    guarantees extend to the policy path.  Policies hold no per-outage
    mutable state (re-decide from the context), so one instance can be
    reused across the events of a yearly schedule.
    """

    #: Short stable identifier, set by subclasses.
    name: str = "abstract"

    #: Clairvoyant policies see the outage duration and the rollout
    #: oracle; online policies must leave this False.
    clairvoyant: bool = False

    def decide(self, context: PolicyContext) -> PolicyDecision:
        """The next move from the observed state."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def performability_score(outcome: OutageOutcome) -> float:
    """The scalar policies are graded on, in ``[0, 1]``.

    Mean normalised throughput *during* the outage, discounted by the
    post-restore down time the run left behind::

        score = mean_performance * T / (T + downtime_after_restore)

    A policy that serves at full speed and resumes instantly scores 1;
    one that crashes scores near 0 for short outages (the recovery tail
    dominates) and recovers toward the crash-performance floor for long
    ones.  This is the objective the hindsight oracle maximises and the
    axis the frontier analysis plots against cost.
    """
    total = outcome.outage_seconds + outcome.downtime_after_restore_seconds
    if total <= 0 or not math.isfinite(total):
        return 0.0
    return outcome.mean_performance * outcome.outage_seconds / total
