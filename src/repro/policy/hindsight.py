"""The optimal-in-hindsight baseline: decide with the trace in hand.

:class:`HindsightOptimalPolicy` is the upper bound every online policy is
measured against.  It declares itself clairvoyant, so the engine hands it
the true outage duration and a rollout oracle that simulates any
candidate — a complete phase program or a rival online policy — against
the *exact* trace being decided (same fault draw, same initial charge,
same DG start roll).  The policy enumerates a candidate set, scores each
by actually simulating it, and commits to the winner:

* every single mode, ridden for the whole outage;
* every (serve mode, save mode) pair, with the switch time solved in
  closed form by :func:`repro.sim.outage_sim.solve_hold_time` — the same
  algebra the paper's sustain-then-save hybrids use, but fed the *true*
  bridging horizon instead of a provisioning-time estimate;
* every rival online policy it was constructed with (by default the
  greedy-reserve and Lyapunov controllers), via delegation.

Because the winner is chosen by simulation rather than by a model, the
bound ``hindsight >= online`` holds by construction: each rival online
policy is itself a candidate, so the hindsight score is a max over a set
containing every rival's score.  The property tests assert exactly this.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import PolicyError
from repro.policy.base import (
    OutagePolicy,
    PolicyContext,
    PolicyDecision,
    performability_score,
)
from repro.policy.catalog import SAVE_MODE_ORDER, SERVE_MODE_ORDER
from repro.policy.controllers import GreedyReservePolicy, LyapunovPolicy
from repro.techniques.base import PlanPhase

#: Shave the charge budget handed to the closed-form switch solver, so a
#: float-exact solution still parks with charge to spare (mirrors the
#: plan engine's reserve slack on adaptive holds).
_RESERVE_SLACK = 1e-6


def default_rivals() -> Tuple[OutagePolicy, ...]:
    """The online policies hindsight dominates by construction."""
    return (GreedyReservePolicy(), LyapunovPolicy())


class HindsightOptimalPolicy(OutagePolicy):
    """Pick the best candidate by simulating each against the known trace.

    Args:
        rivals: Online policies included as candidates (and therefore
            provably dominated).  Defaults to :func:`default_rivals`.
            Clairvoyant rivals are rejected — the oracle would recurse.
    """

    name = "hindsight"
    clairvoyant = True

    def __init__(self, rivals: Optional[Sequence[OutagePolicy]] = None):
        self.rivals = tuple(rivals) if rivals is not None else default_rivals()
        for rival in self.rivals:
            if rival.clairvoyant:
                raise PolicyError(
                    "hindsight rivals must be online (non-clairvoyant) policies"
                )

    # -- candidate construction --------------------------------------------------

    def _mode_programs(
        self, context: PolicyContext
    ) -> List[Tuple[str, Tuple[PlanPhase, ...]]]:
        """Every mode ridden whole-outage, in deterministic menu order."""
        programs = []
        for name in (*SERVE_MODE_ORDER, *SAVE_MODE_ORDER):
            if name in context.modes:
                mode = context.catalog.get(name)
                programs.append((f"ride:{name}", mode.program()))
        return programs

    def _switch_programs(
        self, context: PolicyContext
    ) -> List[Tuple[str, Tuple[PlanPhase, ...]]]:
        """Serve-then-save pairs with the closed-form optimal switch time.

        For each (serve, save) pair, solve how long the serve steady state
        can run before the battery must start the save transition, against
        the true bridging horizon (outage end or DG takeover, whichever
        the trace says comes first).
        """
        from repro.sim.outage_sim import solve_hold_time

        soc = context.state_of_charge
        if soc is None:
            return []  # no battery: switching buys nothing a ride lacks
        horizon = context.bridging_horizon_seconds
        programs = []
        for serve_name in SERVE_MODE_ORDER:
            serve_view = context.modes.get(serve_name)
            if serve_view is None or not serve_view.ups_feasible:
                continue
            serve = context.catalog.get(serve_name)
            # Entry transients (e.g. migration's consolidation) come off
            # the budget before the steady hold begins.
            soc_after_entry = soc * (1.0 - _RESERVE_SLACK) - serve_view.entry_soc_cost
            window = horizon - serve_view.entry_seconds
            if soc_after_entry <= 0 or window <= 0:
                continue
            for save_name in SAVE_MODE_ORDER:
                save_view = context.modes.get(save_name)
                if save_view is None or not save_view.ups_feasible:
                    continue
                save = context.catalog.get(save_name)
                hold = solve_hold_time(
                    soc_after_entry,
                    serve_view.drain_per_second,
                    save_view.drain_per_second,
                    save_view.entry_soc_cost,
                    save_view.entry_seconds,
                    window,
                )
                if hold <= 0 or hold >= window:
                    continue  # degenerate: covered by a plain ride
                program = (
                    *serve.entry_phases,
                    replace(serve.steady_phase, duration_seconds=hold),
                    *save.program(),
                )
                programs.append((f"switch:{serve_name}+{save_name}", program))
        return programs

    # -- the decision -------------------------------------------------------------

    def decide(self, context: PolicyContext) -> PolicyDecision:
        if context.rollout is None or context.outage_seconds is None:
            raise PolicyError(
                "HindsightOptimalPolicy requires a clairvoyant engine context"
            )
        if context.catalog is None:
            raise PolicyError("HindsightOptimalPolicy requires the mode catalog")

        program_candidates = [
            *self._mode_programs(context),
            *self._switch_programs(context),
        ]
        best_label: Optional[str] = None
        best_program: Optional[Tuple[PlanPhase, ...]] = None
        best_rival: Optional[OutagePolicy] = None
        best_score = -1.0
        for label, program in program_candidates:
            score = performability_score(context.rollout(program))
            if score > best_score:
                best_score = score
                best_label, best_program, best_rival = label, program, None
        for index, rival in enumerate(self.rivals):
            score = performability_score(context.rollout(rival))
            if score > best_score:
                best_score = score
                best_label = f"rival:{rival.name}[{index}]"
                best_program, best_rival = None, rival
        if best_rival is not None:
            return PolicyDecision(delegate=best_rival)
        if best_program is None:
            raise PolicyError("hindsight found no candidate to execute")
        return PolicyDecision(
            program=best_program,
            technique_name=f"hindsight[{best_label}]",
        )
