"""The mode catalog: single-technique steady states policies choose among.

A *mode* is what one of the paper's techniques does once its entry
transient is over: a fixed (power, performance) steady state plus the
entry phases that reach it.  The catalog compiles each candidate
technique against the same :class:`~repro.techniques.base.TechniqueContext`
the plan path uses (the UPS rating as the power budget — see
:func:`repro.core.performability.plan_power_budget_watts`), so a mode's
phases are byte-for-byte the phases a static plan would have executed.
Techniques that cannot fit the budget simply do not appear — infeasibility
shrinks the menu rather than crashing the controller.

Hybrids are deliberately *not* modes: a hybrid is itself a (hard-coded)
switching policy, and the whole point of :mod:`repro.policy` is to make
that switching decision online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import PolicyError, TechniqueError
from repro.sim.datacenter import Datacenter
from repro.techniques.base import PlanPhase, TechniqueContext

#: mode name -> technique registry name compiled for it.
MODE_TECHNIQUES: Mapping[str, str] = {
    "full": "full-service",
    "throttle": "throttling",
    "sleep": "sleep",
    "sleep-l": "sleep-l",
    "hibernate": "hibernate",
    "hibernate-l": "hibernate-l",
    "migrate": "migration",
}

#: Modes that keep serving (positive steady performance), best first.
SERVE_MODE_ORDER: Tuple[str, ...] = ("full", "migrate", "throttle")

#: Modes that park state and wait, cheapest-to-hold first.
SAVE_MODE_ORDER: Tuple[str, ...] = ("hibernate-l", "hibernate", "sleep-l", "sleep")


@dataclass(frozen=True)
class PolicyMode:
    """One compiled mode.

    Attributes:
        name: Catalog name (``full``, ``throttle``, ``sleep-l``, ...).
        technique_name: The compiling technique's display name.
        entry_phases: Fixed-duration transient phases reaching the steady
            state (empty for modes with no transient, e.g. throttling).
        steady_phase: The terminal steady state.
    """

    name: str
    technique_name: str
    entry_phases: Tuple[PlanPhase, ...]
    steady_phase: PlanPhase

    @property
    def performance(self) -> float:
        return self.steady_phase.performance

    @property
    def entry_seconds(self) -> float:
        return sum(float(p.duration_seconds) for p in self.entry_phases)

    def program(self) -> Tuple[PlanPhase, ...]:
        """The mode's full phase program (entry transient + steady)."""
        return (*self.entry_phases, self.steady_phase)


class ModeCatalog:
    """The compiled menu of modes for one datacenter."""

    def __init__(self, modes: Mapping[str, PolicyMode]):
        if not modes:
            raise PolicyError("mode catalog is empty (no technique compiled)")
        self._modes: Dict[str, PolicyMode] = dict(modes)

    @classmethod
    def compile(
        cls,
        datacenter: Datacenter,
        power_budget_watts: Optional[float] = None,
    ) -> "ModeCatalog":
        """Compile every registered mode technique that fits the budget.

        ``power_budget_watts`` defaults to the same ceiling the plan path
        compiles against (the UPS rating, else the DG rating, else
        unconstrained).
        """
        from repro.core.performability import plan_power_budget_watts
        from repro.techniques.registry import get_technique

        if power_budget_watts is None:
            power_budget_watts = plan_power_budget_watts(datacenter)
        context = TechniqueContext(
            cluster=datacenter.cluster,
            workload=datacenter.workload,
            power_budget_watts=power_budget_watts,
        )
        modes: Dict[str, PolicyMode] = {}
        for mode_name, technique_name in MODE_TECHNIQUES.items():
            technique = get_technique(technique_name)
            try:
                plan = technique.compile_plan(context)
            except TechniqueError:
                continue  # infeasible here; the menu just shrinks
            if any(phase.is_adaptive for phase in plan.phases):
                continue  # hybrids are policies, not modes
            modes[mode_name] = PolicyMode(
                name=mode_name,
                technique_name=plan.technique_name,
                entry_phases=tuple(plan.phases[:-1]),
                steady_phase=plan.phases[-1],
            )
        return cls(modes)

    def __contains__(self, name: str) -> bool:
        return name in self._modes

    def __iter__(self):
        return iter(self._modes.values())

    def __len__(self) -> int:
        return len(self._modes)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._modes)

    def get(self, name: str) -> PolicyMode:
        mode = self._modes.get(name)
        if mode is None:
            raise PolicyError(
                f"unknown mode {name!r}; catalog has {sorted(self._modes)}"
            )
        return mode
