"""The serve protocol: versioned, validated JSON requests and responses.

One request asks one performability question::

    {"v": 1, "analysis": "availability",
     "params": {"workload": "memcached", "configuration": "NoDG",
                "technique": "sleep-l", "years": 100, "seed": 0},
     "deadline_s": 30.0}

``parse_request`` normalises it — unknown analyses, unknown or
ill-typed parameters and version mismatches raise
:class:`~repro.errors.ProtocolError` (HTTP 400) — and fills every
default explicitly, so two requests that *mean* the same evaluation
also *encode* the same: the request fingerprint (a SHA-256 over the
canonical encoding, the same construction :class:`repro.runner.Job`
uses) is what the batcher coalesces duplicate in-flight requests on.

``canonical_json`` is the one serialisation everything response-shaped
goes through — key-sorted, compact separators — so a served payload can
be compared byte-for-byte against the same query run through the CLI.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ProtocolError

#: Version of the request/response schema; bumped on breaking changes.
PROTOCOL_VERSION = 1

#: Hard ceilings keeping a single request from monopolising the service.
MAX_YEARS = 10_000
MAX_SWEEP_CELLS = 512
MAX_ECHO_SLEEP_S = 5.0


def canonical_json(obj: Any) -> str:
    """The one canonical serialisation: key-sorted, compact, non-finite
    floats rendered as strings (JSON has no inf/nan)."""
    return json.dumps(
        _finite(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _finite(obj: Any) -> Any:
    """Replace non-finite floats with string markers, recursively."""
    if isinstance(obj, float):
        if math.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        if math.isnan(obj):
            return "nan"
        return obj
    if isinstance(obj, dict):
        return {k: _finite(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_finite(v) for v in obj]
    return obj


# -- parameter validators ------------------------------------------------------


def _require_str(params: Mapping[str, Any], key: str) -> str:
    value = params.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"param {key!r} must be a non-empty string")
    return value


def _workload(params: Mapping[str, Any]) -> str:
    from repro.workloads.registry import workload_names

    name = _require_str(params, "workload")
    if name not in workload_names():
        raise ProtocolError(
            f"unknown workload {name!r}; one of {workload_names()}"
        )
    return name


def _configuration(params: Mapping[str, Any]) -> str:
    from repro.core.configurations import get_configuration
    from repro.errors import ConfigurationError

    name = _require_str(params, "configuration")
    try:
        get_configuration(name)
    except (ConfigurationError, KeyError) as exc:
        raise ProtocolError(f"unknown configuration {name!r}: {exc}") from exc
    return name


def _technique(params: Mapping[str, Any]) -> str:
    from repro.errors import TechniqueError
    from repro.techniques.registry import get_technique

    name = _require_str(params, "technique")
    try:
        get_technique(name)
    except (TechniqueError, KeyError) as exc:
        raise ProtocolError(f"unknown technique {name!r}: {exc}") from exc
    return name


def _int_in(
    params: Mapping[str, Any], key: str, low: int, high: int
) -> int:
    value = params[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"param {key!r} must be an integer")
    if not low <= value <= high:
        raise ProtocolError(f"param {key!r} must be in [{low}, {high}]")
    return value


def _positive_number(params: Mapping[str, Any], key: str) -> float:
    value = params[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"param {key!r} must be a number")
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ProtocolError(f"param {key!r} must be a positive finite number")
    return value


def _faults(params: Mapping[str, Any]) -> Optional[str]:
    from repro.errors import FaultInjectionError
    from repro.faults import FaultPlan

    spec = params.get("faults")
    if spec is None:
        return None
    if not isinstance(spec, str):
        raise ProtocolError("param 'faults' must be a spec string or null")
    try:
        FaultPlan.parse(spec)
    except FaultInjectionError as exc:
        raise ProtocolError(f"invalid faults spec: {exc}") from exc
    return spec


def _name_list(
    params: Mapping[str, Any], key: str, valid: Tuple[str, ...]
) -> List[str]:
    names = params[key]
    if (
        not isinstance(names, (list, tuple))
        or not names
        or not all(isinstance(n, str) for n in names)
    ):
        raise ProtocolError(f"param {key!r} must be a non-empty list of names")
    for name in names:
        if name not in valid:
            raise ProtocolError(f"unknown name {name!r} in {key!r}")
    return list(names)


def _normalize_availability(params: Mapping[str, Any]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {
        "years": 100,
        "servers": 16,
        "seed": 0,
        "faults": None,
        **params,
    }
    return {
        "workload": _workload(merged),
        "configuration": _configuration(merged),
        "technique": _technique(merged),
        "years": _int_in(merged, "years", 1, MAX_YEARS),
        "servers": _int_in(merged, "servers", 1, 1_000_000),
        "seed": _int_in(merged, "seed", -(2**63), 2**63 - 1),
        "faults": _faults(merged),
    }


def _normalize_rank(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.techniques.registry import PAPER_TECHNIQUES

    merged: Dict[str, Any] = {
        "outage_minutes": 30.0,
        "servers": 16,
        "techniques": list(PAPER_TECHNIQUES),
        **params,
    }
    return {
        "workload": _workload(merged),
        "outage_minutes": _positive_number(merged, "outage_minutes"),
        "servers": _int_in(merged, "servers", 1, 1_000_000),
        "techniques": _name_list(
            merged, "techniques", tuple(_technique_names())
        ),
    }


def _technique_names() -> Tuple[str, ...]:
    from repro.techniques.registry import technique_names

    return tuple(technique_names())


def _normalize_sweep(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.core.configurations import PAPER_CONFIGURATIONS
    from repro.techniques.registry import PAPER_TECHNIQUES

    merged: Dict[str, Any] = {
        "kind": "techniques",
        "rows": None,
        "outage_minutes": [5.0, 30.0, 60.0],
        "servers": 16,
        **params,
    }
    kind = merged["kind"]
    if kind not in ("techniques", "configurations"):
        raise ProtocolError(
            "param 'kind' must be 'techniques' or 'configurations'"
        )
    if kind == "techniques":
        valid = _technique_names()
        default_rows = list(PAPER_TECHNIQUES)
    else:
        valid = tuple(c.name for c in PAPER_CONFIGURATIONS)
        default_rows = list(valid)
    if merged["rows"] is None:
        merged["rows"] = default_rows
    rows = _name_list(merged, "rows", valid)
    durations = merged["outage_minutes"]
    if not isinstance(durations, (list, tuple)) or not durations:
        raise ProtocolError("param 'outage_minutes' must be a non-empty list")
    minutes = [
        _positive_number({"outage_minutes": d}, "outage_minutes")
        for d in durations
    ]
    if len(rows) * len(minutes) > MAX_SWEEP_CELLS:
        raise ProtocolError(
            f"sweep grid too large ({len(rows)}x{len(minutes)}); "
            f"at most {MAX_SWEEP_CELLS} cells per request"
        )
    return {
        "workload": _workload(merged),
        "kind": kind,
        "rows": rows,
        "outage_minutes": minutes,
        "servers": _int_in(merged, "servers", 1, 1_000_000),
    }


def _normalize_whatif(params: Mapping[str, Any]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {"nodes_per_bucket": 3, "servers": 16, **params}
    return {
        "workload": _workload(merged),
        "configuration": _configuration(merged),
        "technique": _technique(merged),
        "nodes_per_bucket": _int_in(merged, "nodes_per_bucket", 1, 20),
        "servers": _int_in(merged, "servers", 1, 1_000_000),
    }


def _policy_specs(params: Mapping[str, Any]) -> List[str]:
    from repro.errors import PolicyError
    from repro.policy.parse import parse_policy

    specs = params["policies"]
    if (
        not isinstance(specs, (list, tuple))
        or not specs
        or not all(isinstance(s, str) and s for s in specs)
    ):
        raise ProtocolError(
            "param 'policies' must be a non-empty list of policy specs"
        )
    for spec in specs:
        try:
            parse_policy(spec)
        except PolicyError as exc:
            raise ProtocolError(f"invalid policy spec {spec!r}: {exc}") from exc
    return list(specs)


def _normalize_policy_frontier(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.core.configurations import PAPER_CONFIGURATIONS
    from repro.policy.frontier import DEFAULT_POLICY_SPECS

    merged: Dict[str, Any] = {
        "configurations": None,
        "policies": list(DEFAULT_POLICY_SPECS),
        "nodes_per_bucket": 2,
        "servers": 16,
        **params,
    }
    valid = tuple(c.name for c in PAPER_CONFIGURATIONS)
    if merged["configurations"] is None:
        merged["configurations"] = list(valid)
    configurations = _name_list(merged, "configurations", valid)
    policies = _policy_specs(merged)
    if len(configurations) * len(policies) > MAX_SWEEP_CELLS:
        raise ProtocolError(
            f"policy_frontier grid too large "
            f"({len(configurations)}x{len(policies)}); "
            f"at most {MAX_SWEEP_CELLS} cells per request"
        )
    return {
        "workload": _workload(merged),
        "configurations": configurations,
        "policies": policies,
        "nodes_per_bucket": _int_in(merged, "nodes_per_bucket", 1, 20),
        "servers": _int_in(merged, "servers", 1, 1_000_000),
    }


def _normalize_fleet_frontier(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.core.configurations import PAPER_CONFIGURATIONS
    from repro.fleet.frontier import DEFAULT_FLEET_YEARS
    from repro.fleet.spec import DEFAULT_FLEET, fleet_names

    merged: Dict[str, Any] = {
        "fleet": DEFAULT_FLEET,
        "configurations": None,
        "technique": "full-service",
        "years": DEFAULT_FLEET_YEARS,
        "seed": 0,
        **params,
    }
    fleet = _require_str(merged, "fleet")
    if fleet not in fleet_names():
        raise ProtocolError(
            f"unknown fleet {fleet!r}; known: {', '.join(fleet_names())}"
        )
    valid = tuple(c.name for c in PAPER_CONFIGURATIONS)
    if merged["configurations"] is None:
        merged["configurations"] = list(valid)
    configurations = _name_list(merged, "configurations", valid)
    # Each configuration runs routed and unrouted — two cells apiece.
    if len(configurations) * 2 > MAX_SWEEP_CELLS:
        raise ProtocolError(
            f"fleet_frontier grid too large ({len(configurations)}x2); "
            f"at most {MAX_SWEEP_CELLS} cells per request"
        )
    return {
        "fleet": fleet,
        "configurations": configurations,
        "technique": _technique(merged),
        "years": _int_in(merged, "years", 1, MAX_YEARS),
        "seed": _int_in(merged, "seed", -(2**63), 2**63 - 1),
    }


def _normalize_echo(params: Mapping[str, Any]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {"payload": None, "sleep_s": 0.0, **params}
    sleep_s = merged["sleep_s"]
    if isinstance(sleep_s, bool) or not isinstance(sleep_s, (int, float)):
        raise ProtocolError("param 'sleep_s' must be a number")
    sleep_s = float(sleep_s)
    if not 0.0 <= sleep_s <= MAX_ECHO_SLEEP_S:
        raise ProtocolError(
            f"param 'sleep_s' must be in [0, {MAX_ECHO_SLEEP_S}]"
        )
    try:
        payload = json.loads(canonical_json(merged["payload"]))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"param 'payload' must be JSON-able: {exc}") from exc
    return {"payload": payload, "sleep_s": sleep_s}


#: analysis name -> (normalizer, allowed parameter keys)
_SCHEMAS: Dict[str, Tuple[Any, Tuple[str, ...]]] = {
    "availability": (
        _normalize_availability,
        ("workload", "configuration", "technique", "years", "servers",
         "seed", "faults"),
    ),
    "rank": (
        _normalize_rank,
        ("workload", "outage_minutes", "servers", "techniques"),
    ),
    "sweep": (
        _normalize_sweep,
        ("workload", "kind", "rows", "outage_minutes", "servers"),
    ),
    "whatif": (
        _normalize_whatif,
        ("workload", "configuration", "technique", "nodes_per_bucket",
         "servers"),
    ),
    "policy_frontier": (
        _normalize_policy_frontier,
        ("workload", "configurations", "policies", "nodes_per_bucket",
         "servers"),
    ),
    "fleet_frontier": (
        _normalize_fleet_frontier,
        ("fleet", "configurations", "technique", "years", "seed"),
    ),
    # Diagnostics: returns its payload after an optional bounded sleep.
    # Load tests and shedding tests want a request whose cost they
    # control exactly; 'echo' is that request.
    "echo": (_normalize_echo, ("payload", "sleep_s")),
}

ANALYSES: Tuple[str, ...] = tuple(sorted(_SCHEMAS))


@dataclass(frozen=True)
class Request:
    """One validated, normalised evaluation request.

    Attributes:
        analysis: One of :data:`ANALYSES`.
        params: Normalised parameters — every default filled, every
            value validated.
        deadline_s: Optional wall-clock budget (seconds, relative to
            admission).  Propagated into the runner's per-job timeout
            and enforced while queued.
    """

    analysis: str
    params: Mapping[str, Any]
    deadline_s: Optional[float] = None

    @property
    def fingerprint(self) -> str:
        """Stable identity of (version, analysis, normalised params).

        The coalescing key: two requests asking the same question carry
        the same fingerprint even when one spelt the defaults out.  The
        deadline is *not* part of the identity — a tight-deadline copy
        of an in-flight question should share its evaluation.
        """
        blob = canonical_json(
            {
                "v": PROTOCOL_VERSION,
                "analysis": self.analysis,
                "params": dict(self.params),
            }
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def parse_request(body: Any) -> Request:
    """Validate and normalise a request body (bytes, str, or mapping).

    Raises:
        ProtocolError: On malformed JSON, version mismatch, unknown
            analysis, unknown parameter keys, or invalid values.
    """
    if isinstance(body, (bytes, bytearray)):
        try:
            body = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request body is not UTF-8: {exc}") from exc
    if isinstance(body, str):
        try:
            body = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not JSON: {exc}") from exc
    if not isinstance(body, Mapping):
        raise ProtocolError("request body must be a JSON object")

    unknown_top = set(body) - {"v", "analysis", "params", "deadline_s"}
    if unknown_top:
        raise ProtocolError(f"unknown request fields: {sorted(unknown_top)}")
    version = body.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} unsupported; this server speaks "
            f"v{PROTOCOL_VERSION}"
        )
    analysis = body.get("analysis")
    if analysis not in _SCHEMAS:
        raise ProtocolError(
            f"unknown analysis {analysis!r}; one of {list(ANALYSES)}"
        )
    params = body.get("params", {})
    if not isinstance(params, Mapping):
        raise ProtocolError("'params' must be a JSON object")
    normalizer, allowed = _SCHEMAS[analysis]
    unknown = set(params) - set(allowed)
    if unknown:
        raise ProtocolError(
            f"unknown params for {analysis}: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    deadline_s = body.get("deadline_s")
    if deadline_s is not None:
        if isinstance(deadline_s, bool) or not isinstance(
            deadline_s, (int, float)
        ):
            raise ProtocolError("'deadline_s' must be a number or null")
        deadline_s = float(deadline_s)
        if not math.isfinite(deadline_s) or deadline_s <= 0:
            raise ProtocolError("'deadline_s' must be positive and finite")
    return Request(
        analysis=analysis,
        params=normalizer(params),
        deadline_s=deadline_s,
    )


def ok_envelope(
    request: Request, result: Any, meta: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """The success response body around a result payload.

    Only ``result`` is part of the bit-identical contract with the CLI;
    ``meta`` carries serving-side facts (batch size, queue wait) that
    legitimately differ between transports.
    """
    return {
        "v": PROTOCOL_VERSION,
        "ok": True,
        "analysis": request.analysis,
        "fingerprint": request.fingerprint,
        "result": result,
        "meta": dict(meta) if meta else {},
    }


def error_envelope(
    kind: str,
    message: str,
    detail: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The failure response body.

    ``detail`` carries structured diagnostics when the refusal has a
    story worth machine-reading — poison quarantine reports the
    fingerprint and death count there.  Absent by default so existing
    error bodies stay byte-identical.
    """
    error: Dict[str, Any] = {"type": kind, "message": message}
    if detail:
        error["detail"] = dict(detail)
    return {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "error": error,
    }
