"""repro.serve — a batched, backpressured evaluation service.

The subsystem turns the library's analyses into a long-lived HTTP
service without giving up the reproducibility story: every served
response is bit-identical to the same query run through the CLI, by
construction (shared job builders, seed trees, and result cache) and by
certification (the serve-smoke diff).  See ``docs/SERVE.md``.

Layers, bottom up:

* :mod:`repro.serve.protocol` — versioned, validated JSON requests;
  canonical serialisation; request fingerprints.
* :mod:`repro.serve.analyses` — request -> ``(jobs, finish)``; the
  unbatched reference evaluator the CLI shares.
* :mod:`repro.serve.batcher` — bounded admission queue, duplicate
  coalescing, micro-batched dispatch, deadline propagation.
* :mod:`repro.serve.supervisor` — the supervised worker-process pool:
  fingerprint-sharded routing, crash restarts with backoff, replay.
* :mod:`repro.serve.resilience` — graded brownout tiers and the
  poison-request circuit breaker (see ``docs/RESILIENCE.md``).
* :mod:`repro.serve.app` — the stdlib HTTP front end and lifecycle.
* :mod:`repro.serve.loadgen` — the closed-loop load generator.
* :mod:`repro.serve.drill` — the seeded chaos-certification harness
  behind ``repro drill`` / ``make drill-smoke``.
* :mod:`repro.serve.top` — the ``repro top`` terminal dashboard.
"""

from repro.serve.analyses import build, evaluate_request
from repro.serve.app import EvalServer, ServeConfig, run_server
from repro.serve.batcher import Batcher
from repro.serve.drill import DrillConfig, DrillReport, run_drill
from repro.serve.loadgen import (
    REQUEST_SHAPES,
    LoadgenConfig,
    LoadgenReport,
    parse_mix,
    post_request,
    post_request_full,
    run_loadgen,
)
from repro.serve.top import gather, render_dashboard, run_top
from repro.serve.protocol import (
    ANALYSES,
    PROTOCOL_VERSION,
    Request,
    canonical_json,
    error_envelope,
    ok_envelope,
    parse_request,
)

from repro.serve.resilience import (
    EXPENSIVE_ANALYSES,
    BrownoutController,
    BrownoutPolicy,
    BrownoutSignals,
    PoisonRegistry,
    Tier,
)
from repro.serve.supervisor import Supervisor, WorkItem

__all__ = [
    "ANALYSES",
    "Batcher",
    "BrownoutController",
    "BrownoutPolicy",
    "BrownoutSignals",
    "DrillConfig",
    "DrillReport",
    "EXPENSIVE_ANALYSES",
    "EvalServer",
    "LoadgenConfig",
    "LoadgenReport",
    "PROTOCOL_VERSION",
    "PoisonRegistry",
    "REQUEST_SHAPES",
    "Request",
    "ServeConfig",
    "Supervisor",
    "Tier",
    "WorkItem",
    "build",
    "canonical_json",
    "error_envelope",
    "evaluate_request",
    "ok_envelope",
    "parse_mix",
    "parse_request",
    "post_request",
    "post_request_full",
    "gather",
    "render_dashboard",
    "run_drill",
    "run_loadgen",
    "run_server",
    "run_top",
]
