"""``repro top``: a terminal dashboard over a live evaluation server.

One screenful, refreshed in place, built entirely from the public
endpoints — ``/healthz``, ``/stats`` and ``/slo`` — so it works against
any reachable server with no side channel.  The layout mirrors the
questions an operator actually asks, in order: is it up, is it
shedding, what are the tails, which SLOs are burning budget, and what
is the traffic made of.

:func:`render_dashboard` is a pure snapshot→string function (tested
without a server); :func:`run_top` adds the fetch/refresh loop and the
ANSI home-and-clear so the display updates in place.  ``--once`` prints
a single frame and exits, which is what scripts and tests use.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

#: ANSI: cursor home + clear to end of screen (repaint without scroll).
_CLEAR = "\x1b[H\x1b[J"


def fetch_json(url: str, timeout_s: float = 5.0) -> Optional[Dict[str, Any]]:
    """GET one JSON endpoint; None on any network/HTTP/decode failure."""
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


def gather(base_url: str, timeout_s: float = 5.0) -> Dict[str, Any]:
    """One dashboard snapshot: health + stats + slo (absent on failure)."""
    base = base_url.rstrip("/")
    return {
        "base_url": base,
        "health": fetch_json(f"{base}/healthz", timeout_s),
        "stats": fetch_json(f"{base}/stats", timeout_s),
        "slo": fetch_json(f"{base}/slo", timeout_s),
    }


def _fmt(value: Any, pattern: str = "{:.1f}", missing: str = "-") -> str:
    if value is None:
        return missing
    try:
        return pattern.format(value)
    except (TypeError, ValueError):
        return str(value)


def render_dashboard(snapshot: Dict[str, Any]) -> str:
    """The dashboard frame for one :func:`gather` snapshot."""
    lines = []
    base = snapshot.get("base_url", "?")
    health = snapshot.get("health")
    stats = snapshot.get("stats") or {}
    slo = snapshot.get("slo")

    if health is None:
        lines.append(f"repro top — {base} — UNREACHABLE")
        return "\n".join(lines) + "\n"
    lines.append(
        f"repro top — {base} — v{health.get('version', '?')} "
        f"up {_fmt(health.get('uptime_s'), '{:.0f}')}s"
    )
    shed = health.get("shed_rate")
    lines.append(
        f"  queue {health.get('queue_depth', '-')}"
        f"  shed {_fmt(shed if shed is None else shed * 100, '{:.1f}')}%"
        f"  rolling p99 {_fmt(health.get('rolling_p99_ms'))} ms"
    )

    # Resilience row: readiness, brownout tier, worker-pool strength —
    # only servers running the supervised tier report these fields.
    brownout = health.get("brownout")
    workers = health.get("workers")
    if brownout or workers or "ready" in health:
        bits = []
        if "ready" in health:
            ready = health.get("ready")
            bits.append("ready" if ready else
                        f"NOT READY ({health.get('ready_reason', '?')})")
        if brownout:
            bits.append(
                f"brownout {brownout.get('name', '?')}"
                f" ({brownout.get('transitions', 0)} transitions)"
            )
        if workers:
            bits.append(
                f"workers {workers.get('alive', '?')}/"
                f"{workers.get('configured', '?')} alive"
                f", {workers.get('deaths', 0)} deaths"
            )
        lines.append("  " + "  ".join(bits))

    if stats:
        lines.append(
            f"  requests {stats.get('requests', 0)}"
            f"  ok-batches {stats.get('batches', 0)}"
            f"  coalesced {stats.get('coalesced', 0)}"
            f"  sheds {stats.get('sheds', 0)}"
            f"  failures {stats.get('failures', 0)}"
            f"  jobs {stats.get('jobs_run', 0)}"
        )
        cache = stats.get("cache")
        if cache:
            lines.append(
                f"  cache hits {cache.get('hits', 0)}"
                f" misses {cache.get('misses', 0)}"
                f" entries {cache.get('entries', 0)}"
            )

    if slo and slo.get("slos"):
        lines.append("")
        lines.append("  SLO                 window     burn   compliant")
        for name in sorted(slo["slos"]):
            entry = slo["slos"][name]
            flag = " ALERTING" if entry.get("alerting") else ""
            for window_name in sorted(entry.get("windows", {})):
                window = entry["windows"][window_name]
                lines.append(
                    f"  {name:<18} {window_name:>9}"
                    f"  {_fmt(window.get('burn_rate'), '{:>7.2f}')}"
                    f"   {'yes' if window.get('compliant') else 'NO'}{flag}"
                )
                flag = ""  # only tag the first window row

    rolling = stats.get("rolling") or {}
    latency_rows = {
        name: summary
        for name, summary in rolling.items()
        if name.startswith("latency_ms[") and summary.get("count")
    }
    if latency_rows:
        lines.append("")
        lines.append(
            "  latency (rolling)        n     p50     p95     p99     max"
        )
        for name in sorted(latency_rows):
            summary = latency_rows[name]
            label = name[len("latency_ms["):-1]
            lines.append(
                f"  {label:<22} {summary['count']:>4}"
                f"  {_fmt(summary.get('p50'), '{:>6.1f}')}"
                f"  {_fmt(summary.get('p95'), '{:>6.1f}')}"
                f"  {_fmt(summary.get('p99'), '{:>6.1f}')}"
                f"  {_fmt(summary.get('max'), '{:>6.1f}')}"
            )

    analyses = stats.get("analyses") or {}
    if analyses:
        lines.append("")
        lines.append(
            "  analysis        requests  coalesced  batches    jobs  failures"
        )
        for name in sorted(analyses):
            row = analyses[name]
            lines.append(
                f"  {name:<14} {row.get('requests', 0):>9}"
                f"  {row.get('coalesced', 0):>9}"
                f"  {row.get('batches', 0):>7}"
                f"  {row.get('jobs', 0):>6}"
                f"  {row.get('failures', 0):>8}"
            )
    return "\n".join(lines) + "\n"


def run_top(
    base_url: str,
    interval_s: float = 2.0,
    once: bool = False,
    iterations: Optional[int] = None,
) -> int:
    """The ``repro top`` loop; returns the process exit code.

    ``once`` prints a single frame without ANSI control sequences.
    ``iterations`` bounds the loop for tests; operators ^C out.
    """
    count = 0
    try:
        while True:
            frame = render_dashboard(gather(base_url))
            if once:
                print(frame, end="")
                return 0
            print(f"{_CLEAR}{frame}", end="", flush=True)
            count += 1
            if iterations is not None and count >= iterations:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        print()
        return 0
