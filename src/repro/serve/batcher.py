"""Micro-batching admission queue with coalescing and backpressure.

The service's query pattern — many small cost/availability evaluations
against one shared model — is the same shape inference serving deals
with, and the same two amortisations apply:

* **Coalescing.**  Concurrent requests with the same fingerprint (same
  analysis, same normalised params) are one evaluation: later arrivals
  attach to the in-flight entry's future and the runner sees exactly one
  job set.  ``serve.coalesced`` counts the requests that rode along.
* **Micro-batching.**  The dispatcher drains whatever accumulated during
  a short window (``max_wait_s`` after the first arrival, up to
  ``max_batch`` requests), concatenates their job lists, and makes **one**
  executor submission — amortising pool dispatch the way inference
  servers amortise kernel launches.  Each request's jobs keep their own
  seeds and fingerprints, so batched results are bit-identical to
  dedicated runs (and hit the same cache entries).

Backpressure is explicit: the queue is bounded, and an arrival that
finds it full is shed with :class:`~repro.errors.QueueFullError` (the
HTTP layer turns that into 429 + ``Retry-After``) instead of growing
every queued request's latency.  Deadlines propagate: a request still
queued when its deadline passes fails with
:class:`~repro.errors.DeadlineError`, and the tightest remaining
deadline in a batch bounds the runner's per-job timeout.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DeadlineError, QueueFullError, ServeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import RequestTrace, Telemetry
from repro.runner.executor import BaseExecutor, SerialExecutor
from repro.runner.jobs import Job
from repro.serve import analyses
from repro.serve.protocol import Request
from repro.serve.supervisor import Supervisor, WorkItem

#: Builds the executor for one batch; the argument is the batch's
#: effective per-job timeout (None = unbounded).  A fresh executor per
#: batch is the runner's own idiom — pools are created per dispatch —
#: and lets each batch carry its own timeout while sharing one cache.
ExecutorFactory = Callable[[Optional[float]], BaseExecutor]


@dataclass
class _Entry:
    """One admitted request riding the queue."""

    request: Request
    future: "concurrent.futures.Future" = field(
        default_factory=concurrent.futures.Future
    )
    enqueued_at: float = 0.0
    enqueued_unix: float = 0.0
    deadline_at: Optional[float] = None  # monotonic, None = no deadline
    riders: int = 1  # coalesced requests sharing this entry
    request_id: Optional[str] = None
    trace: Optional[RequestTrace] = None
    #: Traces of coalesced riders; they finish when the leader resolves.
    rider_traces: List[RequestTrace] = field(default_factory=list)


class Batcher:
    """The admission queue + dispatcher behind the evaluation service.

    Args:
        executor_factory: Per-batch executor builder (default: a plain
            :class:`~repro.runner.SerialExecutor`).  Give it one that
            closes over a shared :class:`~repro.runner.ResultCache` to
            get cross-request caching.
        queue_bound: Admitted-but-undispatched requests allowed before
            arrivals are shed.  Coalesced duplicates do not consume
            slots — they attach to the entry already holding one.
        max_batch: Most requests dispatched in one executor submission.
        max_wait_s: How long the dispatcher lingers after the first
            arrival to let a batch accumulate.  Zero dispatches eagerly.
        metrics: Optional :class:`~repro.obs.MetricsRegistry` receiving
            the ``serve.*`` queue instrumentation.
        telemetry: Optional :class:`~repro.obs.Telemetry` bundle; when
            present (and the HTTP layer passes request ids to
            :meth:`submit`), every resolved request leaves a retrievable
            queued→execute→reduce span tree in the trace store —
            coalesced riders get their own trace carrying the leader's
            id.  ``None`` (the default) keeps the pre-telemetry path.
        pool: Optional :class:`~repro.serve.supervisor.Supervisor`.
            When present the dispatcher routes instead of executing:
            each cut batch is regrouped by fingerprint shard and handed
            to the pool, and entry futures resolve from the pool's
            completion callbacks (:meth:`pool_done`).  ``None`` keeps
            the in-process execute path.
        linger_policy: Optional override for the micro-batch linger
            window, consulted at every collect — the brownout
            controller's hook for shrinking the window under pressure.
            ``None`` always lingers ``max_wait_s``.
    """

    def __init__(
        self,
        executor_factory: Optional[ExecutorFactory] = None,
        queue_bound: int = 64,
        max_batch: int = 16,
        max_wait_s: float = 0.005,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[Telemetry] = None,
        pool: Optional[Supervisor] = None,
        linger_policy: Optional[Callable[[], float]] = None,
    ) -> None:
        if queue_bound < 1:
            raise ServeError("queue_bound must be >= 1")
        if max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ServeError("max_wait_s must be >= 0")
        self._executor_factory = executor_factory or (
            lambda timeout: SerialExecutor()
        )
        self.queue_bound = queue_bound
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._metrics = metrics
        self._telemetry = telemetry
        self._pool = pool
        self._linger_policy = linger_policy
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: List[_Entry] = []
        #: fingerprint -> entry, for everything admitted and not yet
        #: resolved (queued *and* in-flight) — the coalescing map.
        self._pending: Dict[str, _Entry] = {}
        self._closed = False
        self._drain = True
        self._worker: Optional[threading.Thread] = None
        # Totals mirrored into metrics; kept here too so /stats works
        # without an obs registry.
        self.requests = 0
        self.coalesced = 0
        self.sheds = 0
        self.expired = 0
        self.batches = 0
        self.jobs_run = 0
        self.failures = 0
        #: Per-analysis breakdown of the totals above (``/stats`` shows
        #: which analyses the traffic is made of, not just how much).
        self.by_analysis: Dict[str, Dict[str, int]] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Batcher":
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._loop, name="serve-batcher", daemon=True
                )
                self._worker.start()
        return self

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admitting; drain or cancel what is queued.

        Args:
            drain: Finish queued work before stopping (deadline-expired
                entries still fail with :class:`DeadlineError`).  With
                ``False``, queued entries fail immediately.
            timeout: Bound on waiting for the dispatcher to exit.
        """
        with self._cond:
            self._closed = True
            self._drain = drain
            if not drain:
                for entry in self._queue:
                    self._resolve_error(
                        entry, ServeError("server shut down before dispatch")
                    )
                self._queue.clear()
                self._gauge_depth()
            self._cond.notify_all()
            worker = self._worker
        if worker is not None:
            worker.join(timeout=timeout)

    # -- admission ------------------------------------------------------------

    def submit(
        self, request: Request, request_id: Optional[str] = None
    ) -> "concurrent.futures.Future":
        """Admit ``request``; returns the future its response resolves on.

        ``request_id`` is the id the HTTP layer minted at admission;
        when telemetry is on it keys the request's span tree in the
        trace store.  A coalesced arrival keeps its *own* id — its trace
        records the leader's id it rode on.

        Raises:
            QueueFullError: The bounded queue is full (shed; HTTP 429).
            ServeError: The batcher is shutting down.
        """
        now = time.monotonic()
        with self._cond:
            if self._closed:
                raise ServeError("server is shutting down")
            self._count("serve.requests")
            self._count(f"serve.requests[{request.analysis}]")
            self.requests += 1
            self._analysis_stat(request.analysis)["requests"] += 1
            existing = self._pending.get(request.fingerprint)
            if existing is not None:
                existing.riders += 1
                self.coalesced += 1
                self._count("serve.coalesced")
                self._analysis_stat(request.analysis)["coalesced"] += 1
                if self._telemetry is not None and request_id is not None:
                    existing.rider_traces.append(
                        RequestTrace(
                            request_id,
                            request.analysis,
                            coalesced=True,
                            leader_id=existing.request_id,
                            fingerprint=request.fingerprint,
                        )
                    )
                return existing.future
            if len(self._queue) >= self.queue_bound:
                self.sheds += 1
                self._count("serve.shed")
                raise QueueFullError(
                    f"admission queue full ({self.queue_bound} waiting); "
                    "retry shortly"
                )
            entry = _Entry(
                request=request,
                enqueued_at=now,
                enqueued_unix=time.time(),
                request_id=request_id,
            )
            if self._telemetry is not None and request_id is not None:
                entry.trace = RequestTrace(
                    request_id,
                    request.analysis,
                    fingerprint=request.fingerprint,
                )
            if request.deadline_s is not None:
                entry.deadline_at = now + request.deadline_s
            self._queue.append(entry)
            self._pending[request.fingerprint] = entry
            self._gauge_depth()
            self._cond.notify_all()
            return entry.future

    # -- dispatch loop ---------------------------------------------------------

    def _loop(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            if batch:
                self._dispatch(batch)

    def _collect(self) -> Optional[List[_Entry]]:
        """Block for work, linger ``max_wait_s`` for riders, cut a batch.

        Returns None when closed and fully drained (thread exit)."""
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait(timeout=0.1)
            linger = (
                self._linger_policy()
                if self._linger_policy is not None
                else self.max_wait_s
            )
            window_ends = time.monotonic() + max(0.0, linger)
            while (
                len(self._queue) < self.max_batch
                and not self._closed
            ):
                remaining = window_ends - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
            self._gauge_depth()
            return batch

    def _dispatch(self, batch: List[_Entry]) -> None:
        now = time.monotonic()
        with self._lock:
            self.batches += 1
            self._count("serve.batches")
            self._observe("serve.batch_size", len(batch))
            for entry in batch:
                self._observe(
                    "serve.queue_wait_seconds", now - entry.enqueued_at
                )

        live: List[_Entry] = []
        for entry in batch:
            if entry.deadline_at is not None and entry.deadline_at <= now:
                with self._lock:
                    self.expired += 1
                    self._count("serve.deadline_expired")
                    self._resolve_error(
                        entry,
                        DeadlineError(
                            f"deadline ({entry.request.deadline_s:.3f}s) "
                            "expired while queued"
                        ),
                    )
                continue
            live.append(entry)
        if not live:
            return

        if self._pool is not None:
            self._dispatch_pool(live, now)
            return

        # Build each request's jobs; a build failure fails that request
        # alone, not the batch.
        jobs: List[Job] = []
        ranges: List[Any] = []  # (entry, finish, start, end)
        for entry in live:
            try:
                entry_jobs, finish = analyses.build(entry.request)
            except Exception as exc:  # noqa: BLE001 - per-request isolation
                with self._lock:
                    self.failures += 1
                    self._count("serve.failures")
                    self._analysis_stat(entry.request.analysis)["failures"] += 1
                    self._resolve_error(entry, exc)
                continue
            start = len(jobs)
            jobs.extend(self._reindexed(entry_jobs, start))
            ranges.append((entry, finish, start, len(jobs)))
        if not jobs:
            return

        deadlines = [
            e.deadline_at - now
            for e, _, _, _ in ranges
            if e.deadline_at is not None
        ]
        timeout = min(deadlines) if deadlines else None
        started = time.monotonic()
        started_unix = time.time()
        try:
            executor = self._executor_factory(timeout)
            report = executor.run(jobs, strict=False)
        except Exception as exc:  # noqa: BLE001 - executor-level failure
            with self._lock:
                for entry, _, _, _ in ranges:
                    self._resolve_error(entry, exc)
            return
        elapsed = time.monotonic() - started
        with self._lock:
            self.jobs_run += len(jobs)
            self._count("serve.jobs", len(jobs))
            self._observe("serve.batch_seconds", elapsed)
            batched_analyses = set()
            for entry, _, start, end in ranges:
                analysis = entry.request.analysis
                self._analysis_stat(analysis)["jobs"] += end - start
                batched_analyses.add(analysis)
            for analysis in batched_analyses:
                self._analysis_stat(analysis)["batches"] += 1

        failed_by_index = {f.index: f for f in report.failures}
        for entry, finish, start, end in ranges:
            failures = [
                failed_by_index[i]
                for i in range(start, end)
                if i in failed_by_index
            ]
            if failures:
                first = failures[0]
                with self._lock:
                    self.failures += 1
                    self._count("serve.failures")
                    self._analysis_stat(entry.request.analysis)["failures"] += 1
                    self._resolve_error(
                        entry,
                        ServeError(
                            f"{len(failures)} of {end - start} jobs failed; "
                            f"first: {first.label}: {first.error}"
                        ),
                    )
                continue
            reduce_started = time.perf_counter()
            reduce_started_unix = time.time()
            try:
                payload = finish(report.values[start:end])
            except Exception as exc:  # noqa: BLE001 - per-request isolation
                with self._lock:
                    self.failures += 1
                    self._count("serve.failures")
                    self._analysis_stat(entry.request.analysis)["failures"] += 1
                    self._resolve_error(entry, exc)
                continue
            meta = {
                "batch_size": len(ranges),
                "jobs": end - start,
                "coalesced_riders": entry.riders - 1,
                "queue_wait_s": round(now - entry.enqueued_at, 6),
                "batch_seconds": round(elapsed, 6),
                "cache_hits": report.stats.cache_hits,
            }
            if entry.trace is not None:
                entry.trace.add_span(
                    "queued",
                    ts=entry.enqueued_unix,
                    dur=now - entry.enqueued_at,
                )
                execute_id = entry.trace.add_span(
                    "execute",
                    ts=started_unix,
                    dur=elapsed,
                    jobs=end - start,
                    batch_size=len(ranges),
                    cache_hits=report.stats.cache_hits,
                )
                entry.trace.add_span(
                    "reduce",
                    ts=reduce_started_unix,
                    dur=time.perf_counter() - reduce_started,
                    parent_id=execute_id,
                )
                entry.trace.set_root(riders=entry.riders - 1)
            with self._lock:
                self._pending.pop(entry.request.fingerprint, None)
            self._finish_traces(entry, "ok")
            entry.future.set_result({"result": payload, "meta": meta})

    # -- pool routing ----------------------------------------------------------

    def _dispatch_pool(self, live: List[_Entry], now: float) -> None:
        """Hand one cut batch to the worker pool, regrouped by shard.

        The pool owns execution from here; entry futures resolve from
        :meth:`pool_done` on the supervisor's receiver threads.  Shard
        groups keep the micro-batching amortisation — each group is one
        work item, one executor submission on its worker.
        """
        now_unix = time.time()
        groups: Dict[int, List[_Entry]] = {}
        for entry in live:
            shard = self._pool.shard_of(entry.request.fingerprint)
            groups.setdefault(shard, []).append(entry)
        with self._lock:
            self._count("serve.pool.groups", len(groups))
            for entries in groups.values():
                analyses_in_group = set()
                for entry in entries:
                    analyses_in_group.add(entry.request.analysis)
                for analysis in analyses_in_group:
                    self._analysis_stat(analysis)["batches"] += 1
        items = [
            WorkItem(request=entry.request, context=(entry, now, now_unix))
            for entry in live
        ]
        try:
            self._pool.submit(items)
        except ServeError as exc:
            with self._lock:
                for entry in live:
                    self._resolve_error(entry, exc)

    def pool_done(self, item: WorkItem, outcome: Any) -> None:
        """Supervisor completion callback: resolve one entry's future.

        ``outcome`` is the worker's outcome dict, or an exception
        (worker-death replays exhausted into poison quarantine, or
        shutdown).  Runs on a receiver thread, so everything shared
        takes the batcher lock.
        """
        entry, dispatched_at, dispatched_unix = item.context
        if isinstance(outcome, BaseException):
            with self._lock:
                self._resolve_error(entry, outcome)
            return
        if not outcome.get("ok"):
            with self._lock:
                self.failures += 1
                self._count("serve.failures")
                self._analysis_stat(entry.request.analysis)["failures"] += 1
                self._resolve_error(
                    entry, ServeError(str(outcome.get("error", "unknown")))
                )
            return
        jobs = int(outcome.get("jobs", 0))
        with self._lock:
            self.jobs_run += jobs
            self._count("serve.jobs", jobs)
            self._observe(
                "serve.batch_seconds", outcome.get("batch_seconds", 0.0)
            )
            self._analysis_stat(entry.request.analysis)["jobs"] += jobs
        meta = {
            "batch_size": outcome.get("shard_batch", 1),
            "jobs": jobs,
            "coalesced_riders": entry.riders - 1,
            "queue_wait_s": round(dispatched_at - entry.enqueued_at, 6),
            "batch_seconds": outcome.get("batch_seconds", 0.0),
            "cache_hits": outcome.get("cache_hits", 0),
            "worker": outcome.get("worker"),
            "attempts": outcome.get("attempts", 1),
        }
        if entry.trace is not None:
            entry.trace.add_span(
                "queued",
                ts=entry.enqueued_unix,
                dur=dispatched_at - entry.enqueued_at,
            )
            entry.trace.add_span(
                "execute",
                ts=dispatched_unix,
                dur=time.monotonic() - dispatched_at,
                jobs=jobs,
                batch_size=outcome.get("shard_batch", 1),
                cache_hits=outcome.get("cache_hits", 0),
                worker=outcome.get("worker"),
                attempts=outcome.get("attempts", 1),
            )
            entry.trace.set_root(riders=entry.riders - 1)
        with self._lock:
            self._pending.pop(entry.request.fingerprint, None)
        self._finish_traces(entry, "ok")
        entry.future.set_result(
            {"result": outcome["payload"], "meta": meta}
        )

    @staticmethod
    def _reindexed(jobs: List[Job], offset: int) -> List[Job]:
        """Shift job indices so concatenated lists stay unique.

        Index is presentation-only — it is *not* part of the
        fingerprint — so reindexing changes nothing about seeds, cache
        keys, or results."""
        import dataclasses

        return [
            dataclasses.replace(job, index=offset + i)
            for i, job in enumerate(jobs)
        ]

    def _resolve_error(self, entry: _Entry, exc: BaseException) -> None:
        """Fail an entry's future; caller holds the lock."""
        self._pending.pop(entry.request.fingerprint, None)
        if entry.trace is not None:
            entry.trace.set_root(error=f"{type(exc).__name__}: {exc}")
        self._finish_traces(entry, "error")
        if not entry.future.done():
            entry.future.set_exception(exc)

    def _finish_traces(self, entry: _Entry, outcome: str) -> None:
        """Close and store the leader's trace plus any rider traces."""
        if self._telemetry is None:
            return
        if entry.trace is not None:
            self._telemetry.store.put(entry.trace.finish(outcome))
            entry.trace = None
        for rider in entry.rider_traces:
            self._telemetry.store.put(rider.finish(outcome))
        entry.rider_traces = []

    # -- telemetry -------------------------------------------------------------

    def _analysis_stat(self, analysis: str) -> Dict[str, int]:
        """Per-analysis counter row; caller holds the lock."""
        row = self.by_analysis.get(analysis)
        if row is None:
            row = {
                "requests": 0,
                "coalesced": 0,
                "batches": 0,
                "jobs": 0,
                "failures": 0,
            }
            self.by_analysis[analysis] = row
        return row

    def _count(self, name: str, n: float = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(n)

    def _observe(self, name: str, value: float) -> None:
        if self._metrics is not None:
            self._metrics.histogram(name).observe(value)

    def _gauge_depth(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("serve.queue_depth").set(len(self._queue))

    def stats(self) -> Dict[str, Any]:
        """A point-in-time counters snapshot for ``/stats``."""
        with self._lock:
            return {
                "requests": self.requests,
                "coalesced": self.coalesced,
                "sheds": self.sheds,
                "deadline_expired": self.expired,
                "batches": self.batches,
                "jobs_run": self.jobs_run,
                "failures": self.failures,
                "queue_depth": len(self._queue),
                "in_flight": len(self._pending) - len(self._queue),
                "queue_bound": self.queue_bound,
                "max_batch": self.max_batch,
                "analyses": {
                    name: dict(row)
                    for name, row in sorted(self.by_analysis.items())
                },
            }
