"""``repro drill``: the seeded chaos-certification harness.

The supervised serve tier claims four properties that ordinary tests
cannot certify one at a time, because they only mean anything *under
fault injection*:

1. **Zero incorrect responses.**  Every 2xx the server returns while
   workers are being SIGKILLed, latency is being injected, and cache
   entries are being corrupted on disk is byte-for-byte identical to the
   clean single-process reference (:func:`repro.serve.analyses
   .evaluate_request`).  Crashes may add latency; they may never change
   an answer.
2. **Bounded recovery.**  After the chaos stops, the pool is back to
   full strength within a declared bound, and a stray writer temp file
   planted in the cache is swept by the next GC pass.
3. **Poison quarantine, not crash loop.**  A request that reliably takes
   its worker down is quarantined with a diagnostic 503 after the
   threshold is hit; the pool keeps serving everyone else.
4. **Brownout tiers in declared order.**  Under a sustained flood the
   controller escalates NORMAL → TRIM → RESTRICT → SHED one tier at a
   time, and steps back down the same way once the flood ends.

A fifth pass benchmarks the pool itself: the same request corpus is
replayed against ``workers ∈ {0, 2, 4, ...}`` and the report gates that
the best multi-worker throughput strictly beats the in-process baseline
— the whole point of the pool.  The axis feeds ``BENCH_serve.json`` (see
:meth:`DrillReport.bench_artifact`) so ``repro bench record/check`` can
gate the multi-worker trajectory like any other benchmark.

Everything is seeded (``DrillConfig.seed``) and the harness runs the
server in-process, so it can reach the supervisor's chaos hooks
(:meth:`~repro.serve.supervisor.Supervisor.kill_worker`,
``inject_latency``, ``inflight_fingerprints``) while talking to the real
HTTP surface like any client would.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.configurations import configuration_names
from repro.serve.analyses import evaluate_request
from repro.serve.app import EvalServer, ServeConfig
from repro.serve.loadgen import post_request
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Request,
    canonical_json,
    parse_request,
)
from repro.serve.resilience import BrownoutPolicy, Tier
from repro.techniques.registry import technique_names
from repro.workloads.registry import workload_names


@dataclass(frozen=True)
class DrillConfig:
    """One chaos-certification run.

    Attributes:
        workers: Pool size for the chaos/poison passes.
        seed: Drives the request corpus, the kill schedule, and which
            cache entries get corrupted — two runs with one seed inject
            the same chaos.
        kills: Worker SIGKILLs delivered during the chaos pass.
        corrupt: Cache entries overwritten with garbage mid-run.
        chaos_duration_s: How long the chaos-pass load keeps offering.
        concurrency: Closed-loop client threads per pass.
        poison_threshold: Worker deaths before quarantine in the poison
            pass (kept low so the pass is fast; the chaos pass uses a
            higher one so random kills never quarantine innocents).
        recovery_timeout_s: Bound on pool recovery after the last kill.
        bench_workers: The workers axis; 0 is the in-process baseline.
        bench_requests: Distinct-fingerprint requests per axis point.
        bench_concurrency: Closed-loop threads for the axis bench.
    """

    workers: int = 2
    seed: int = 0
    kills: int = 3
    corrupt: int = 2
    chaos_duration_s: float = 2.5
    concurrency: int = 6
    poison_threshold: int = 2
    recovery_timeout_s: float = 20.0
    bench_workers: Tuple[int, ...] = (0, 2, 4)
    bench_requests: int = 32
    bench_concurrency: int = 8


@dataclass
class DrillReport:
    """Everything one drill observed, pass by pass."""

    ok: bool
    seed: int
    duration_s: float
    failures: List[str]
    reference: Dict[str, Any] = field(default_factory=dict)
    chaos: Dict[str, Any] = field(default_factory=dict)
    poison: Dict[str, Any] = field(default_factory=dict)
    brownout: Dict[str, Any] = field(default_factory=dict)
    bench: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "drill": "serve-chaos",
            "ok": self.ok,
            "seed": self.seed,
            "duration_s": round(self.duration_s, 3),
            "failures": list(self.failures),
            "reference": self.reference,
            "chaos": self.chaos,
            "poison": self.poison,
            "brownout": self.brownout,
            "bench": self.bench,
        }

    def bench_artifact(self) -> Optional[Dict[str, Any]]:
        """The ``BENCH_serve.json`` payload for this run's workers axis.

        Shaped like the loadgen artifact (``bench: serve`` plus
        ``throughput_rps`` / ``latency_ms.p99``) so the existing ledger
        roster gates it unchanged; the headline numbers come from the
        largest worker count (a stable choice run to run), and
        ``workers_speedup`` adds the multi-vs-single trajectory.
        """
        axis = self.bench.get("workers_axis") or []
        if not axis:
            return None
        headline = axis[-1]
        return {
            "bench": "serve",
            "source": "drill",
            "seed": self.seed,
            "throughput_rps": headline["rps"],
            "latency_ms": {"p99": headline["p99_ms"]},
            "workers_speedup": self.bench.get("speedup"),
            "workers_axis": axis,
            "chaos_ok": not [f for f in self.failures if f.startswith("chaos")],
            "requests_per_point": self.bench.get("requests_per_point"),
        }

    def summary(self) -> str:
        lines = [f"drill seed={self.seed}: {'PASS' if self.ok else 'FAIL'}"]
        chaos = self.chaos
        if chaos:
            lines.append(
                f"  chaos: {chaos.get('ok_responses', 0)} ok / "
                f"{chaos.get('requests', 0)} requests, "
                f"{chaos.get('mismatches', 0)} mismatched, "
                f"{chaos.get('kills', 0)} kills, "
                f"recovered in {chaos.get('recovery_s', '?')}s"
            )
        poison = self.poison
        if poison:
            lines.append(
                f"  poison: quarantined after {poison.get('deaths', '?')} "
                f"deaths (in-flight {poison.get('inflight_status', '?')}, "
                f"repeat {poison.get('repeat_status', '?')}, "
                f"bystander {poison.get('bystander_status', '?')})"
            )
        brownout = self.brownout
        if brownout:
            lines.append(
                f"  brownout: peak tier {brownout.get('peak_tier_name', '?')}"
                f", {brownout.get('transitions', 0)} transitions, "
                f"returned to NORMAL: {brownout.get('returned_to_normal')}"
            )
        bench = self.bench
        for point in bench.get("workers_axis", []):
            lines.append(
                f"  bench workers={point['workers']}: "
                f"{point['rps']:.1f} rps, p99 {point['p99_ms']:.1f} ms, "
                f"shed {point['sheds']}"
            )
        if bench.get("speedup") is not None:
            lines.append(f"  bench speedup (best multi / single): "
                         f"{bench['speedup']:.2f}x")
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


# -- request corpus -----------------------------------------------------------


def _request(analysis: str, params: Dict[str, Any]) -> Request:
    """Build a validated Request the way a wire client would."""
    return parse_request(
        canonical_json(
            {"v": PROTOCOL_VERSION, "analysis": analysis, "params": params}
        ).encode("utf-8")
    )


_CELL_MEMO: Dict[Tuple[str, str, str], bool] = {}


def _compiles(workload: str, configuration: str, technique: str) -> bool:
    """Whether the cell evaluates at all (some techniques cannot compile
    on some configurations — e.g. a sleep state over the power budget).
    The drill certifies fault handling, not request validation, so
    corpora stick to cells that a clean run answers with 200."""
    key = (workload, configuration, technique)
    if key not in _CELL_MEMO:
        try:
            evaluate_request(
                _request(
                    "whatif",
                    {
                        "workload": workload,
                        "configuration": configuration,
                        "technique": technique,
                    },
                )
            )
            _CELL_MEMO[key] = True
        except Exception:  # noqa: BLE001 - any failure disqualifies
            _CELL_MEMO[key] = False
    return _CELL_MEMO[key]


def _valid_cell(rng: random.Random) -> Tuple[str, str, str]:
    workloads = workload_names()
    configurations = configuration_names()
    techniques = technique_names()
    while True:
        cell = (
            rng.choice(workloads),
            rng.choice(configurations),
            rng.choice(techniques),
        )
        if _compiles(*cell):
            return cell


def _chaos_corpus(rng: random.Random, size: int) -> List[Request]:
    """A seeded mix of real analyses with distinct and repeated cells."""
    corpus: List[Request] = []
    while len(corpus) < size:
        kind = rng.random()
        if kind < 0.4:
            workload, configuration, technique = _valid_cell(rng)
            corpus.append(
                _request(
                    "whatif",
                    {
                        "workload": workload,
                        "configuration": configuration,
                        "technique": technique,
                    },
                )
            )
        elif kind < 0.75:
            workload, configuration, technique = _valid_cell(rng)
            corpus.append(
                _request(
                    "availability",
                    {
                        "workload": workload,
                        "configuration": configuration,
                        "technique": technique,
                        "years": rng.randint(1, 4),
                    },
                )
            )
        else:
            corpus.append(
                _request(
                    "echo",
                    {"payload": {"drill": rng.randint(0, 7)}},
                )
            )
    return corpus


def _bench_corpus(rng: random.Random, size: int) -> List[Request]:
    """Distinct-fingerprint sleep-shaped requests for the workers axis.

    The axis gates the pool's *concurrency*: N workers must chew N shard
    groups at once where the in-process path runs them back to back.  A
    declared per-request sleep makes that win deterministic on any
    host — a 1-core CI runner shows exactly the same scaling as a
    32-core workstation, which CPU-bound cells would not (their speedup
    is capped by host cores, an environment fact, not a code property).
    Distinct payloads keep every fingerprint unique so neither
    coalescing nor caching flatters any point.
    """
    return [
        _request(
            "echo",
            {"payload": {"bench": rng.random()}, "sleep_s": 0.05},
        )
        for _ in range(size)
    ]


def _reference_payloads(requests: Sequence[Request]) -> Dict[str, str]:
    """fingerprint -> canonical JSON of the clean single-process result."""
    reference: Dict[str, str] = {}
    for request in requests:
        if request.fingerprint in reference:
            continue
        reference[request.fingerprint] = canonical_json(
            evaluate_request(request)
        )
    return reference


def _post(base_url: str, request: Request, timeout_s: float = 60.0):
    body = {
        "v": PROTOCOL_VERSION,
        "analysis": request.analysis,
        "params": request.params,
    }
    return post_request(base_url, body, timeout_s=timeout_s)


def _run_closed_loop(
    base_url: str,
    sequence: Sequence[Request],
    concurrency: int,
    reference: Optional[Dict[str, str]] = None,
    stop_at: Optional[float] = None,
) -> Dict[str, Any]:
    """Post ``sequence`` (cycling if duration-bounded) and tally outcomes.

    With ``reference``, every 200 payload is compared byte-for-byte and
    mismatches are recorded — the drill's central assertion.
    """
    lock = threading.Lock()
    cursor = {"i": 0}
    totals = {"requests": 0, "ok": 0, "sheds": 0, "errors": 0}
    status_counts: Dict[str, int] = {}
    latencies: List[float] = []
    mismatches: List[Dict[str, Any]] = []

    def next_request() -> Optional[Request]:
        with lock:
            i = cursor["i"]
            if stop_at is None and i >= len(sequence):
                return None
            cursor["i"] = i + 1
            return sequence[i % len(sequence)]

    def loop() -> None:
        while True:
            if stop_at is not None and time.monotonic() >= stop_at:
                return
            request = next_request()
            if request is None:
                return
            started = time.monotonic()
            status, payload = _post(base_url, request)
            elapsed_ms = (time.monotonic() - started) * 1000.0
            wrong = None
            if status == 200 and reference is not None:
                served = canonical_json(payload.get("result"))
                expected = reference.get(request.fingerprint)
                if served != expected:
                    wrong = {
                        "fingerprint": request.fingerprint,
                        "analysis": request.analysis,
                        "served_bytes": len(served),
                        "expected_bytes": (
                            len(expected) if expected is not None else None
                        ),
                    }
            with lock:
                totals["requests"] += 1
                status_counts[str(status)] = (
                    status_counts.get(str(status), 0) + 1
                )
                if status == 200:
                    totals["ok"] += 1
                    latencies.append(elapsed_ms)
                elif status == 429:
                    totals["sheds"] += 1
                else:
                    totals["errors"] += 1
                if wrong is not None and len(mismatches) < 16:
                    mismatches.append(wrong)

    threads = [
        threading.Thread(target=loop, name=f"drill-client-{i}", daemon=True)
        for i in range(concurrency)
    ]
    started_at = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started_at
    latencies.sort()

    def pct(fraction: float) -> float:
        if not latencies:
            return 0.0
        index = min(
            len(latencies) - 1, int(round(fraction * (len(latencies) - 1)))
        )
        return round(latencies[index], 3)

    return {
        "wall_s": round(wall, 3),
        "requests": totals["requests"],
        "ok": totals["ok"],
        "sheds": totals["sheds"],
        "errors": totals["errors"],
        "status_counts": dict(sorted(status_counts.items())),
        "rps": round(totals["ok"] / wall, 3) if wall > 0 else 0.0,
        "p50_ms": pct(0.50),
        "p99_ms": pct(0.99),
        "mismatches": mismatches,
    }


# -- the passes ---------------------------------------------------------------


def _chaos_pass(
    config: DrillConfig,
    corpus: List[Request],
    reference: Dict[str, str],
    rng: random.Random,
    failures: List[str],
    emit,
) -> Dict[str, Any]:
    cache_dir = tempfile.mkdtemp(prefix="repro-drill-cache-")
    server = EvalServer(
        ServeConfig(
            port=0,
            workers=config.workers,
            cache_dir=cache_dir,
            queue_bound=256,
            batch_wait_s=0.002,
            # Random kills must never quarantine innocents: the chaos
            # pass uses a threshold the kill count cannot reach for any
            # one fingerprint (successes exonerate between kills).
            poison_threshold=config.kills + 2,
            worker_backoff_s=0.05,
            worker_backoff_max_s=0.5,
        )
    ).start()
    torn_tmp = Path(cache_dir) / server.cache.version / "00" / "torn.pkl.tmp"
    kills_delivered = 0
    corrupted_files = 0
    try:
        # Warm the cache so there is something to corrupt.
        warm = _run_closed_loop(
            server.base_url, corpus, config.concurrency, reference
        )
        if warm["mismatches"]:
            failures.append(
                f"chaos: {len(warm['mismatches'])} mismatched responses "
                "before any fault was injected"
            )

        stop_at = time.monotonic() + config.chaos_duration_s

        def inject() -> None:
            nonlocal kills_delivered, corrupted_files
            interval = config.chaos_duration_s / (config.kills + 1)
            for k in range(config.kills):
                time.sleep(interval)
                # A short latency injection widens the in-flight window
                # so the SIGKILL lands on a worker mid-batch.
                server.supervisor.inject_latency(0.05)
                if server.supervisor.kill_worker(k % config.workers):
                    kills_delivered += 1
                if k == 0:
                    # Mid-run disk chaos: garbage entries + a torn
                    # writer temp file, exactly what a crashed writer
                    # leaves behind.
                    entries = sorted(Path(cache_dir).rglob("*.pkl"))
                    for path in rng.sample(
                        entries, min(config.corrupt, len(entries))
                    ):
                        path.write_bytes(b"drill: not a pickle")
                        corrupted_files += 1
                    torn_tmp.parent.mkdir(parents=True, exist_ok=True)
                    torn_tmp.write_bytes(b"drill: torn writer temp")

        chaos_thread = threading.Thread(target=inject, daemon=True)
        chaos_thread.start()
        load = _run_closed_loop(
            server.base_url,
            corpus,
            config.concurrency,
            reference,
            stop_at=stop_at,
        )
        chaos_thread.join(timeout=config.chaos_duration_s + 5.0)
        server.supervisor.inject_latency(0.0)

        if load["mismatches"]:
            failures.append(
                f"chaos: {len(load['mismatches'])} 2xx responses differed "
                f"from the clean reference (first: {load['mismatches'][0]})"
            )
        if kills_delivered == 0:
            failures.append("chaos: no SIGKILL was delivered")
        # Bounded recovery: full pool strength within the declared bound.
        recover_start = time.monotonic()
        while (
            server.supervisor.alive_count() < config.workers
            and time.monotonic() - recover_start < config.recovery_timeout_s
        ):
            time.sleep(0.02)
        recovery_s = round(time.monotonic() - recover_start, 3)
        if server.supervisor.alive_count() < config.workers:
            failures.append(
                f"chaos: pool did not recover to {config.workers} workers "
                f"within {config.recovery_timeout_s}s"
            )
        # Kills can legitimately push the brownout tier up (half the
        # pool dead = TRIM or worse); let the controller step back down
        # before asserting that every post-recovery request is a 200.
        settle_deadline = time.monotonic() + 10.0
        while (
            server.brownout.tier > Tier.TRIM
            and time.monotonic() < settle_deadline
        ):
            time.sleep(0.05)
        # Post-chaos correctness: replay the whole corpus once more; the
        # corrupted entries must be quarantined and recomputed, never
        # served.
        after = _run_closed_loop(
            server.base_url, corpus, config.concurrency, reference
        )
        if after["mismatches"]:
            failures.append(
                f"chaos: {len(after['mismatches'])} mismatched responses "
                "after recovery"
            )
        if after["ok"] != after["requests"]:
            failures.append(
                f"chaos: {after['requests'] - after['ok']} of "
                f"{after['requests']} post-recovery requests were not 200 "
                f"(statuses {after['status_counts']})"
            )
        # Crash-mid-write hygiene: the planted torn temp file survives
        # until a GC pass, then leaves with the orphan sweep.
        time.sleep(0.05)
        prune = server.cache.prune(orphan_grace_s=0.01)
        if torn_tmp.exists():
            failures.append(
                "chaos: orphaned writer temp file survived a GC pass"
            )
        corrupt_quarantined = len(
            list(Path(cache_dir).rglob("*.pkl.corrupt"))
        )
        deaths = server.supervisor.deaths_total
        if deaths < kills_delivered:
            failures.append(
                f"chaos: {kills_delivered} kills but only {deaths} "
                "deaths observed by the supervisor"
            )
        result = {
            "kills": kills_delivered,
            "deaths": deaths,
            "corrupted_files": corrupted_files,
            "corrupt_quarantined": corrupt_quarantined,
            "recovery_s": recovery_s,
            "requests": warm["requests"] + load["requests"] + after["requests"],
            "ok_responses": warm["ok"] + load["ok"] + after["ok"],
            "mismatches": (
                len(warm["mismatches"])
                + len(load["mismatches"])
                + len(after["mismatches"])
            ),
            "status_counts": load["status_counts"],
            "pruned_files": prune.removed_files,
            "phases": {"warm": warm, "load": load, "after": after},
        }
        emit(
            f"[drill] chaos: {result['ok_responses']}/{result['requests']} ok, "
            f"{result['mismatches']} mismatched, {kills_delivered} kills, "
            f"recovered in {recovery_s}s"
        )
        return result
    finally:
        server.close(drain=True, timeout=10.0)
        shutil.rmtree(cache_dir, ignore_errors=True)


def _poison_pass(
    config: DrillConfig, failures: List[str], emit
) -> Dict[str, Any]:
    server = EvalServer(
        ServeConfig(
            port=0,
            workers=config.workers,
            queue_bound=64,
            batch_wait_s=0.002,
            poison_threshold=config.poison_threshold,
            worker_backoff_s=0.05,
            worker_backoff_max_s=0.5,
        )
    ).start()
    try:
        # A uniquely fingerprinted slow request: the declared sleep keeps
        # it in flight long enough to SIGKILL its worker mid-evaluation,
        # deterministically — the drill's stand-in for a request that
        # reliably crashes whatever evaluates it.
        poison = _request(
            "echo",
            {"payload": {"poison": config.seed}, "sleep_s": 0.6},
        )
        shard = server.supervisor.shard_of(poison.fingerprint)
        result: Dict[str, Any] = {}

        def client() -> None:
            status, payload = _post(server.base_url, poison, timeout_s=30.0)
            result["inflight_status"] = status
            result["inflight_kind"] = (
                (payload.get("error") or {}).get("type")
                if isinstance(payload, dict)
                else None
            )

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        kills = 0
        deadline = time.monotonic() + 30.0
        while kills < config.poison_threshold:
            if time.monotonic() > deadline:
                failures.append(
                    "poison: request never observed in flight on its shard"
                )
                break
            if poison.fingerprint in server.supervisor.inflight_fingerprints(
                shard
            ):
                # Give the worker a moment to actually start the batch.
                time.sleep(0.1)
                before = server.supervisor.deaths_total
                if server.supervisor.kill_worker(shard):
                    kills += 1
                    # Wait for the death to be observed before polling
                    # again, so a dying-but-unreaped worker is never
                    # killed twice for one death.
                    while (
                        server.supervisor.deaths_total == before
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.005)
                    continue
            time.sleep(0.005)
        thread.join(timeout=30.0)

        if result.get("inflight_status") != 503:
            failures.append(
                "poison: in-flight quarantine returned "
                f"{result.get('inflight_status')} (expected 503)"
            )
        if result.get("inflight_kind") != "poison":
            failures.append(
                f"poison: error kind {result.get('inflight_kind')!r} "
                "(expected 'poison')"
            )
        # Admission-time refusal on the next identical request.
        repeat_status, repeat_payload = _post(
            server.base_url, poison, timeout_s=10.0
        )
        repeat_kind = (
            (repeat_payload.get("error") or {}).get("type")
            if isinstance(repeat_payload, dict)
            else None
        )
        if repeat_status != 503 or repeat_kind != "poison":
            failures.append(
                f"poison: repeat request got {repeat_status}/{repeat_kind} "
                "(expected 503/poison)"
            )
        # No crash loop: the pool recovered and everyone else is served.
        recover_start = time.monotonic()
        while (
            server.supervisor.alive_count() < config.workers
            and time.monotonic() - recover_start < config.recovery_timeout_s
        ):
            time.sleep(0.02)
        if server.supervisor.alive_count() < config.workers:
            failures.append("poison: pool did not recover after quarantine")
        bystander = _request("echo", {"payload": {"bystander": config.seed}})
        bystander_status, _ = _post(server.base_url, bystander, timeout_s=10.0)
        if bystander_status != 200:
            failures.append(
                f"poison: bystander request got {bystander_status} "
                "(expected 200)"
            )
        deaths = server.supervisor.deaths_total
        if deaths != kills:
            failures.append(
                f"poison: {deaths} deaths for {kills} kills — "
                "the quarantined request kept crash-looping the pool"
            )
        result.update(
            {
                "fingerprint": poison.fingerprint,
                "shard": shard,
                "kills": kills,
                "deaths": deaths,
                "repeat_status": repeat_status,
                "repeat_kind": repeat_kind,
                "bystander_status": bystander_status,
                "registry": server.poison.stats(),
            }
        )
        emit(
            f"[drill] poison: quarantined after {deaths} deaths "
            f"(in-flight {result.get('inflight_status')}, repeat "
            f"{repeat_status}, bystander {bystander_status})"
        )
        return result
    finally:
        server.close(drain=True, timeout=10.0)


def _brownout_pass(
    config: DrillConfig, failures: List[str], emit
) -> Dict[str, Any]:
    # Telemetry is off so the only pressure signal is queue depth: the
    # rolling p99 window would otherwise stay hot long after the flood
    # and hold the controller up a tier.
    server = EvalServer(
        ServeConfig(
            port=0,
            workers=config.workers,
            queue_bound=6,
            max_batch=1,
            batch_wait_s=0.001,
            telemetry=False,
            brownout_policy=BrownoutPolicy(
                queue_enter=(0.2, 0.4, 0.6),
                p99_enter_ms=(1e12, 1e12, 1e12),
                workers_enter=(0.0, 0.0, 0.0),
                exit_fraction=0.5,
                min_dwell_s=0.1,
            ),
            brownout_interval_s=0.02,
        )
    ).start()
    try:
        flood_until = time.monotonic() + 2.0
        counter = {"i": 0}
        lock = threading.Lock()

        def flood() -> None:
            while time.monotonic() < flood_until:
                with lock:
                    counter["i"] += 1
                    i = counter["i"]
                request = _request(
                    "echo", {"payload": {"flood": i}, "sleep_s": 0.15}
                )
                _post(server.base_url, request, timeout_s=30.0)

        threads = [
            threading.Thread(target=flood, daemon=True)
            for _ in range(max(8, config.concurrency))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Flood over: the queue drains and the controller must walk all
        # the way back down.
        settle_deadline = time.monotonic() + 10.0
        while (
            server.brownout.tier != Tier.NORMAL
            and time.monotonic() < settle_deadline
        ):
            time.sleep(0.02)
        returned = server.brownout.tier == Tier.NORMAL

        transitions = list(server.brownout.transitions)
        steps = [(r["from"], r["to"]) for r in transitions]
        peak = max((r["to"] for r in transitions), default=0)
        skipped = [s for s in steps if abs(s[1] - s[0]) != 1]
        first_seen: Dict[int, int] = {}
        for i, (_frm, to) in enumerate(steps):
            first_seen.setdefault(to, i)
        ordered_up = all(
            first_seen.get(t, -1) >= 0
            and first_seen.get(t + 1, len(steps)) > first_seen.get(t, -1)
            for t in (1, 2)
        )
        if peak < int(Tier.SHED):
            failures.append(
                f"brownout: flood peaked at tier {Tier(peak).name}, "
                "never reached SHED"
            )
        if skipped:
            failures.append(
                f"brownout: controller skipped tiers: {skipped}"
            )
        if not ordered_up:
            failures.append(
                "brownout: tiers were not first entered in declared order "
                f"(transitions: {steps})"
            )
        if not returned:
            failures.append(
                f"brownout: stuck at tier {server.brownout.tier.name} "
                "after the flood ended"
            )
        result = {
            "flooded": counter["i"],
            "peak_tier": peak,
            "peak_tier_name": Tier(peak).name,
            "transitions": len(transitions),
            "steps": steps,
            "returned_to_normal": returned,
            "snapshot": server.brownout.snapshot(),
        }
        emit(
            f"[drill] brownout: peak {Tier(peak).name}, "
            f"{len(transitions)} transitions, "
            f"returned to NORMAL: {returned}"
        )
        return result
    finally:
        server.close(drain=True, timeout=10.0)


def _bench_pass(
    config: DrillConfig,
    corpus: List[Request],
    failures: List[str],
    emit,
) -> Dict[str, Any]:
    axis: List[Dict[str, Any]] = []
    for workers in config.bench_workers:
        server = EvalServer(
            ServeConfig(
                port=0,
                workers=workers,
                cache_dir=None,  # no cache: measure computation, not disk
                queue_bound=max(64, 4 * config.bench_concurrency),
                batch_wait_s=0.002,
                telemetry=False,
                brownout=False,
            )
        ).start()
        try:
            point = _run_closed_loop(
                server.base_url, corpus, config.bench_concurrency
            )
        finally:
            server.close(drain=True, timeout=10.0)
        entry = {
            "workers": workers,
            "requests": point["requests"],
            "ok": point["ok"],
            "sheds": point["sheds"],
            "errors": point["errors"],
            "rps": point["rps"],
            "p50_ms": point["p50_ms"],
            "p99_ms": point["p99_ms"],
            "shed_rate": (
                round(point["sheds"] / point["requests"], 4)
                if point["requests"]
                else 0.0
            ),
        }
        axis.append(entry)
        emit(
            f"[drill] bench workers={workers}: {entry['rps']:.1f} rps, "
            f"p99 {entry['p99_ms']:.1f} ms"
        )
        if point["ok"] != point["requests"]:
            failures.append(
                f"bench: workers={workers} completed {point['ok']} of "
                f"{point['requests']} requests "
                f"(statuses {point['status_counts']})"
            )
    single = next((p for p in axis if p["workers"] == 0), None)
    multi = [p for p in axis if p["workers"] > 0]
    speedup = None
    if single is not None and multi and single["rps"] > 0:
        best = max(multi, key=lambda p: p["rps"])
        speedup = round(best["rps"] / single["rps"], 3)
        if best["rps"] <= single["rps"]:
            failures.append(
                f"bench: best multi-worker throughput {best['rps']:.1f} rps "
                f"(workers={best['workers']}) did not beat the "
                f"single-process baseline {single['rps']:.1f} rps"
            )
    return {
        "workers_axis": axis,
        "speedup": speedup,
        "requests_per_point": len(corpus),
        "concurrency": config.bench_concurrency,
    }


# -- entry point --------------------------------------------------------------


def run_drill(config: DrillConfig, emit=None) -> DrillReport:
    """Run every pass; the report's ``ok`` is the certification verdict."""
    emit = emit or (lambda message: None)
    started = time.monotonic()
    failures: List[str] = []
    rng = random.Random(config.seed)

    corpus = _chaos_corpus(rng, 24)
    bench_corpus = _bench_corpus(
        random.Random(config.seed + 1), config.bench_requests
    )
    emit(
        f"[drill] reference: evaluating "
        f"{len({r.fingerprint for r in corpus})} unique requests clean"
    )
    reference = _reference_payloads(corpus)
    reference_info = {
        "unique_requests": len(reference),
        "corpus_size": len(corpus),
    }

    chaos = _chaos_pass(config, corpus, reference, rng, failures, emit)
    poison = _poison_pass(config, failures, emit)
    brownout = _brownout_pass(config, failures, emit)
    bench = _bench_pass(config, bench_corpus, failures, emit)

    report = DrillReport(
        ok=not failures,
        seed=config.seed,
        duration_s=time.monotonic() - started,
        failures=failures,
        reference=reference_info,
        chaos=chaos,
        poison=poison,
        brownout=brownout,
        bench=bench,
    )
    emit(f"[drill] {'PASS' if report.ok else 'FAIL'} "
         f"in {report.duration_s:.1f}s")
    return report
