"""The HTTP front end: stdlib ``http.server`` around the batcher.

Endpoints:

* ``POST /v1/eval`` — one protocol request; 200 with the response
  envelope, 400 on protocol errors, 429 + ``Retry-After`` when the
  admission queue sheds, 504 on expired deadlines, 500 on evaluation
  failures.
* ``GET /healthz`` — liveness: version, uptime, queue depth.
* ``GET /metrics`` — the :mod:`repro.obs` metrics snapshot (the
  ``serve.*`` queue instrumentation plus anything else recorded into
  the server's session).
* ``GET /stats`` — batcher counters + cache hit statistics.

The server is a :class:`ThreadingHTTPServer`: each connection gets a
handler thread that blocks on its request's future while the single
dispatcher thread feeds the runner.  ``run_server`` wires SIGINT/SIGTERM
to a clean shutdown — stop accepting, then drain or deadline-cancel the
queue — so an operator's ^C never strands in-flight requests.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    DeadlineError,
    ProtocolError,
    QueueFullError,
    ReproError,
    ServeError,
)
from repro.obs import ObsSession
from repro.runner.cache import ResultCache
from repro.runner.executor import make_executor
from repro.serve.batcher import Batcher
from repro.serve.protocol import (
    canonical_json,
    error_envelope,
    ok_envelope,
    parse_request,
)

#: Longest a handler waits on an undeadlined request before giving up.
DEFAULT_REQUEST_TIMEOUT_S = 300.0
#: Cap on the request body; evaluation requests are small.
MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class ServeConfig:
    """Operational envelope of one server instance.

    Attributes:
        host / port: Bind address (``port=0`` picks a free port).
        jobs: Runner worker processes per batch (1 = in-process serial).
        cache_dir: Optional :class:`ResultCache` directory shared by
            every batch — and by any CLI run pointed at the same
            directory, which is what makes served responses provably
            identical to CLI ones.
        queue_bound / max_batch / batch_wait_s: Batcher knobs.
        timeout_s: Default per-job runner timeout when a batch carries
            no deadline (None = unbounded; only enforced with jobs > 1).
        request_timeout_s: Handler-side wait bound for undeadlined
            requests.
        cache_max_bytes / cache_max_age_s: When set, the cache is
            pruned to these bounds after every batch — the GC keeping a
            long-lived server's disk footprint flat.
    """

    host: str = "127.0.0.1"
    port: int = 8321
    jobs: int = 1
    cache_dir: Optional[str] = None
    queue_bound: int = 64
    max_batch: int = 16
    batch_wait_s: float = 0.005
    timeout_s: Optional[float] = None
    request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S
    cache_max_bytes: Optional[int] = None
    cache_max_age_s: Optional[float] = None


class _Handler(BaseHTTPRequestHandler):
    # Keep per-request chatter off stderr; metrics carry the telemetry.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def _server(self) -> "EvalServer":
        return self.server.eval_server  # type: ignore[attr-defined]

    def _reply(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = canonical_json(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        server = self._server
        if self.path == "/healthz":
            self._reply(200, server.health())
        elif self.path == "/metrics":
            self._reply(200, server.session.metrics.snapshot())
        elif self.path == "/stats":
            self._reply(200, server.stats())
        else:
            self._reply(404, error_envelope("not_found", self.path))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/eval":
            self._reply(404, error_envelope("not_found", self.path))
            return
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self._reply(
                413, error_envelope("too_large", f"{length} B body")
            )
            return
        body = self.rfile.read(length)
        status, envelope, headers = self._server.handle_eval(body)
        self._reply(status, envelope, headers)


class EvalServer:
    """One evaluation service: batcher + cache + HTTP listener.

    Usable programmatically (tests spin one on port 0 and talk to
    ``base_url``) or via ``repro serve`` (which adds signal handling).
    """

    def __init__(self, config: ServeConfig = ServeConfig()) -> None:
        self.config = config
        self.session = ObsSession()
        self.cache = (
            ResultCache(config.cache_dir) if config.cache_dir else None
        )
        self.batcher = Batcher(
            executor_factory=self._make_executor,
            queue_bound=config.queue_bound,
            max_batch=config.max_batch,
            max_wait_s=config.batch_wait_s,
            metrics=self.session.metrics,
        )
        self.started_at = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None

    def _make_executor(self, timeout: Optional[float]):
        effective = timeout if timeout is not None else self.config.timeout_s
        executor = make_executor(
            jobs=self.config.jobs,
            cache=self.cache,
            timeout_seconds=effective if self.config.jobs > 1 else None,
        )
        self._maybe_prune()
        return executor

    def _maybe_prune(self) -> None:
        """Between-batch cache GC, when the config bounds the cache."""
        config = self.config
        if self.cache is None:
            return
        if config.cache_max_bytes is None and config.cache_max_age_s is None:
            return
        report = self.cache.prune(
            max_bytes=config.cache_max_bytes, max_age_s=config.cache_max_age_s
        )
        if report.removed_files:
            self.session.metrics.counter("serve.cache_pruned_files").inc(
                report.removed_files
            )
            self.session.metrics.counter("serve.cache_pruned_bytes").inc(
                report.removed_bytes
            )

    # -- request handling ------------------------------------------------------

    def handle_eval(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        """One POST body to ``(status, envelope, extra headers)``."""
        try:
            request = parse_request(body)
        except ProtocolError as exc:
            return 400, error_envelope("protocol", str(exc)), None
        try:
            future = self.batcher.submit(request)
        except QueueFullError as exc:
            return (
                429,
                error_envelope("shed", str(exc)),
                {"Retry-After": self._retry_after()},
            )
        except ServeError as exc:
            return 503, error_envelope("unavailable", str(exc)), None
        wait = (
            request.deadline_s + 1.0
            if request.deadline_s is not None
            else self.config.request_timeout_s
        )
        try:
            outcome = future.result(timeout=wait)
        except DeadlineError as exc:
            return 504, error_envelope("deadline", str(exc)), None
        except FutureTimeoutError:
            return (
                504,
                error_envelope(
                    "timeout", f"no result within {wait:.1f}s"
                ),
                None,
            )
        except ProtocolError as exc:
            return 400, error_envelope("protocol", str(exc)), None
        except ReproError as exc:
            return 500, error_envelope(type(exc).__name__, str(exc)), None
        except Exception as exc:  # noqa: BLE001 - handlers must not die
            return 500, error_envelope("internal", str(exc)), None
        envelope = ok_envelope(request, outcome["result"], outcome["meta"])
        return 200, envelope, None

    def _retry_after(self) -> str:
        """A shed client's hint: roughly one batch window from now."""
        return str(max(1, int(round(self.config.batch_wait_s * 2))))

    # -- introspection ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        import repro

        return {
            "ok": True,
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.batcher.stats()["queue_depth"],
        }

    def stats(self) -> Dict[str, Any]:
        import repro

        stats: Dict[str, Any] = {
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "config": {
                "jobs": self.config.jobs,
                "queue_bound": self.config.queue_bound,
                "max_batch": self.config.max_batch,
                "batch_wait_s": self.config.batch_wait_s,
            },
            **self.batcher.stats(),
        }
        if self.cache is not None:
            disk = self.cache.stats()
            stats["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "corrupt": self.cache.corrupt,
                "entries": disk.entries,
                "bytes": disk.bytes,
                "version": self.cache.version,
            }
        return stats

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise ServeError("server not started")
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "EvalServer":
        """Bind, start the batcher and the listener thread; returns self."""
        if self._httpd is not None:
            return self
        self.batcher.start()
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.daemon_threads = True
        self._httpd.eval_server = self  # type: ignore[attr-defined]
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting, then drain (or cancel) the queue.

        In-flight requests finish and their handler threads flush the
        responses; queued requests either run to completion (``drain``)
        or fail fast.  Idempotent.
        """
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        self.batcher.close(drain=drain, timeout=timeout)
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=timeout)
            self._serve_thread = None


def run_server(config: ServeConfig) -> int:
    """Run a server until SIGINT/SIGTERM; the ``repro serve`` body.

    Returns the process exit code.  Shutdown is graceful: the listener
    stops accepting, then the queue drains (deadline-expired entries are
    cancelled by the dispatcher as usual).
    """
    server = EvalServer(config).start()
    stop = threading.Event()

    def _signal_handler(signum: int, _frame: Any) -> None:
        print(
            f"[serve] caught {signal.Signals(signum).name}, draining...",
            flush=True,
        )
        stop.set()

    previous = {
        sig: signal.signal(sig, _signal_handler)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        print(
            f"[serve] listening on {server.base_url} "
            f"(jobs={config.jobs}, queue_bound={config.queue_bound}, "
            f"max_batch={config.max_batch})",
            flush=True,
        )
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.close(drain=True)
        print("[serve] drained and stopped", flush=True)
    return 0
