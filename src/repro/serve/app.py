"""The HTTP front end: stdlib ``http.server`` around the batcher.

Endpoints:

* ``POST /v1/eval`` — one protocol request; 200 with the response
  envelope, 400 on protocol errors, 429 + ``Retry-After`` when the
  admission queue sheds (or brownout refuses an expensive analysis),
  503 for quarantined poison requests and full brownout shed, 504 on
  expired deadlines, 500 on evaluation failures.  Every admitted
  request gets an ``X-Repro-Request-Id`` response header; the id keys
  its span tree under ``/trace/<id>``.
* ``GET /healthz`` — the combined health view: version, uptime, queue
  depth, rolling shed rate and p99, plus liveness/readiness flags,
  brownout tier and worker-pool state when resilience is on.
* ``GET /livez`` — pure liveness (always 200 while the process serves;
  stays up through every brownout tier).
* ``GET /readyz`` — readiness (503 when fully shed or every worker is
  down; what a load balancer should poll).
* ``GET /metrics`` — the :mod:`repro.obs` metrics snapshot as JSON by
  default; a client whose ``Accept`` header asks for ``text/plain``
  gets Prometheus text-format exposition of the same registry instead
  (plus rolling-window summaries and SLO gauges).
* ``GET /slo`` — the declarative SLO report: per-objective,
  per-window bad fractions and error-budget burn rates.
* ``GET /trace/<request-id>`` — one request's span records and nested
  tree, for as long as the trace survives the bounded store.
* ``GET /stats`` — batcher counters + cache hit statistics (+ rolling
  windows and the SLO report when telemetry is on).

The server is a :class:`ThreadingHTTPServer`: each connection gets a
handler thread that blocks on its request's future while the single
dispatcher thread feeds the runner.  ``run_server`` wires SIGINT/SIGTERM
to a clean shutdown — stop accepting, then drain or deadline-cancel the
queue — so an operator's ^C never strands in-flight requests.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    DeadlineError,
    PoisonedRequestError,
    ProtocolError,
    QueueFullError,
    ReproError,
    ServeError,
)
from repro.obs import ObsSession
from repro.obs.prom import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.slo import SLOSpec, SLOTracker
from repro.obs.telemetry import (
    REQUEST_ID_HEADER,
    RequestTrace,
    Telemetry,
    new_request_id,
)
from repro.runner.cache import ResultCache
from repro.runner.executor import make_executor
from repro.serve.batcher import Batcher
from repro.serve.protocol import (
    canonical_json,
    error_envelope,
    ok_envelope,
    parse_request,
)
from repro.serve.resilience import (
    BrownoutController,
    BrownoutPolicy,
    BrownoutSignals,
    PoisonRegistry,
    Tier,
)
from repro.serve.supervisor import Supervisor

#: Longest a handler waits on an undeadlined request before giving up.
DEFAULT_REQUEST_TIMEOUT_S = 300.0
#: Cap on the request body; evaluation requests are small.
MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class ServeConfig:
    """Operational envelope of one server instance.

    Attributes:
        host / port: Bind address (``port=0`` picks a free port).
        jobs: Runner worker processes per batch (1 = in-process serial).
        cache_dir: Optional :class:`ResultCache` directory shared by
            every batch — and by any CLI run pointed at the same
            directory, which is what makes served responses provably
            identical to CLI ones.
        queue_bound / max_batch / batch_wait_s: Batcher knobs.
        timeout_s: Default per-job runner timeout when a batch carries
            no deadline (None = unbounded; only enforced with jobs > 1).
        request_timeout_s: Handler-side wait bound for undeadlined
            requests.
        cache_max_bytes / cache_max_age_s: When set, the cache is
            pruned to these bounds after every batch — the GC keeping a
            long-lived server's disk footprint flat.
        telemetry: Request-scoped tracing, rolling-window percentiles
            and SLO tracking.  ``False`` passes ``None`` through every
            hook — the pre-telemetry code path, byte for byte.
        telemetry_window_s: Rolling-window width for the sliding
            percentiles in ``/healthz`` and Prometheus summaries.
        trace_capacity: Finished request traces kept for ``/trace/<id>``
            lookup before the oldest are evicted.
        slos: Override the default SLO roster (see
            :data:`repro.obs.slo.DEFAULT_SLOS`); ``None`` keeps it.
        workers: Size of the supervised worker-process pool.  ``0``
            (the default) keeps the in-process execute path; ``>= 1``
            routes every batch through fingerprint-sharded workers with
            crash supervision and poison quarantine (see
            :mod:`repro.serve.supervisor`).
        poison_threshold: Worker deaths on one fingerprint before it is
            quarantined (pool mode only).
        worker_backoff_s / worker_backoff_max_s: Exponential restart
            backoff for crashed workers.
        brownout: Run the graded-degradation controller (see
            :mod:`repro.serve.resilience`).  ``False`` never refuses
            for pressure and always lingers the full batch window.
        brownout_policy: Threshold overrides; ``None`` keeps defaults.
        brownout_interval_s: Controller sampling period (also bounds
            how fast tiers can escalate — one tier per sample).
    """

    host: str = "127.0.0.1"
    port: int = 8321
    jobs: int = 1
    cache_dir: Optional[str] = None
    queue_bound: int = 64
    max_batch: int = 16
    batch_wait_s: float = 0.005
    timeout_s: Optional[float] = None
    request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S
    cache_max_bytes: Optional[int] = None
    cache_max_age_s: Optional[float] = None
    telemetry: bool = True
    telemetry_window_s: float = 60.0
    trace_capacity: int = 256
    slos: Optional[Tuple[SLOSpec, ...]] = None
    workers: int = 0
    poison_threshold: int = 3
    worker_backoff_s: float = 0.1
    worker_backoff_max_s: float = 5.0
    brownout: bool = True
    brownout_policy: Optional[BrownoutPolicy] = None
    brownout_interval_s: float = 0.25


class _Handler(BaseHTTPRequestHandler):
    # Keep per-request chatter off stderr; metrics carry the telemetry.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def _server(self) -> "EvalServer":
        return self.server.eval_server  # type: ignore[attr-defined]

    def _reply(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = canonical_json(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        server = self._server
        if self.path == "/healthz":
            self._reply(200, server.health())
        elif self.path == "/livez":
            # Liveness stays 200 through any brownout tier: the process
            # is serving; only readiness reflects degradation.
            self._reply(200, {"ok": True, "live": True})
        elif self.path == "/readyz":
            is_ready, reason = server.ready()
            self._reply(
                200 if is_ready else 503,
                {"ok": is_ready, "ready": is_ready, "reason": reason},
            )
        elif self.path == "/metrics":
            accept = self.headers.get("Accept", "") or ""
            if "text/plain" in accept or "openmetrics" in accept:
                self._reply_text(
                    200, server.prometheus(), PROMETHEUS_CONTENT_TYPE
                )
            else:
                self._reply(200, server.session.metrics.snapshot())
        elif self.path == "/slo":
            if server.telemetry is None:
                self._reply(
                    404, error_envelope("telemetry_off", "telemetry disabled")
                )
            else:
                self._reply(200, server.telemetry.slo.report())
        elif self.path.startswith("/trace/"):
            request_id = self.path[len("/trace/"):]
            if server.telemetry is None:
                self._reply(
                    404, error_envelope("telemetry_off", "telemetry disabled")
                )
                return
            trace = server.telemetry.store.get(request_id)
            if trace is None:
                self._reply(
                    404,
                    error_envelope(
                        "trace_not_found",
                        f"{request_id!r} unknown or evicted",
                    ),
                )
            else:
                self._reply(200, trace)
        elif self.path == "/stats":
            self._reply(200, server.stats())
        else:
            self._reply(404, error_envelope("not_found", self.path))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/eval":
            self._reply(404, error_envelope("not_found", self.path))
            return
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self._reply(
                413, error_envelope("too_large", f"{length} B body")
            )
            return
        body = self.rfile.read(length)
        status, envelope, headers = self._server.handle_eval(body)
        self._reply(status, envelope, headers)


class EvalServer:
    """One evaluation service: batcher + cache + HTTP listener.

    Usable programmatically (tests spin one on port 0 and talk to
    ``base_url``) or via ``repro serve`` (which adds signal handling).
    """

    def __init__(self, config: ServeConfig = ServeConfig()) -> None:
        self.config = config
        self.session = ObsSession()
        self.cache = (
            ResultCache(config.cache_dir) if config.cache_dir else None
        )
        self.telemetry: Optional[Telemetry] = (
            Telemetry(
                trace_capacity=config.trace_capacity,
                window_s=config.telemetry_window_s,
                slo=SLOTracker(config.slos) if config.slos else None,
            )
            if config.telemetry
            else None
        )
        self.poison: Optional[PoisonRegistry] = (
            PoisonRegistry(
                threshold=config.poison_threshold,
                metrics=self.session.metrics,
            )
            if config.workers > 0
            else None
        )
        self.supervisor: Optional[Supervisor] = (
            Supervisor(
                workers=config.workers,
                # Late-bound: the batcher does not exist yet.
                on_done=lambda item, outcome: self.batcher.pool_done(
                    item, outcome
                ),
                cache_dir=config.cache_dir,
                metrics=self.session.metrics,
                poison=self.poison,
                backoff_base_s=config.worker_backoff_s,
                backoff_max_s=config.worker_backoff_max_s,
            )
            if config.workers > 0
            else None
        )
        self.brownout: Optional[BrownoutController] = (
            BrownoutController(
                policy=config.brownout_policy,
                signal_fn=self._brownout_signals,
                metrics=self.session.metrics,
            )
            if config.brownout
            else None
        )
        self.batcher = Batcher(
            executor_factory=self._make_executor,
            queue_bound=config.queue_bound,
            max_batch=config.max_batch,
            max_wait_s=config.batch_wait_s,
            metrics=self.session.metrics,
            telemetry=self.telemetry,
            pool=self.supervisor,
            linger_policy=(
                (lambda: self.brownout.linger_s(config.batch_wait_s))
                if self.brownout is not None
                else None
            ),
        )
        self.started_at = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._ticker: Optional[threading.Thread] = None
        self._ticker_stop = threading.Event()

    def _brownout_signals(self) -> BrownoutSignals:
        """One controller sample: queue pressure, tail latency, workers.

        In pool mode the dispatcher drains the admission queue into the
        shards without waiting, so queued-but-unanswered work lives in
        the supervisor's pending count — it is part of the same
        pressure and is folded into the queue signal.
        """
        with self.batcher._lock:  # noqa: SLF001 - same subsystem
            depth = len(self.batcher._queue)  # noqa: SLF001
        if self.supervisor is not None:
            depth += self.supervisor.pending_items()
        p99 = (
            self.telemetry.rolling_p99_ms()
            if self.telemetry is not None
            else None
        )
        workers_frac = (
            self.supervisor.alive_fraction()
            if self.supervisor is not None
            else 1.0
        )
        return BrownoutSignals(
            queue_frac=depth / float(self.config.queue_bound),
            p99_ms=p99,
            workers_frac=workers_frac,
        )

    def _make_executor(self, timeout: Optional[float]):
        effective = timeout if timeout is not None else self.config.timeout_s
        executor = make_executor(
            jobs=self.config.jobs,
            cache=self.cache,
            timeout_seconds=effective if self.config.jobs > 1 else None,
        )
        self._maybe_prune()
        return executor

    def _maybe_prune(self) -> None:
        """Between-batch cache GC, when the config bounds the cache."""
        config = self.config
        if self.cache is None:
            return
        if config.cache_max_bytes is None and config.cache_max_age_s is None:
            return
        report = self.cache.prune(
            max_bytes=config.cache_max_bytes, max_age_s=config.cache_max_age_s
        )
        if report.removed_files:
            self.session.metrics.counter("serve.cache_pruned_files").inc(
                report.removed_files
            )
            self.session.metrics.counter("serve.cache_pruned_bytes").inc(
                report.removed_bytes
            )

    # -- request handling ------------------------------------------------------

    def handle_eval(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        """One POST body to ``(status, envelope, extra headers)``.

        With telemetry on, every request that parses gets a request id
        minted here, threaded through the batcher (so its span tree is
        retrievable at ``/trace/<id>``) and returned in the
        ``X-Repro-Request-Id`` header; the admit→respond latency and
        ok/shed/error outcome feed the rolling windows and SLO tracker.
        """
        started = time.perf_counter()
        try:
            request = parse_request(body)
        except ProtocolError as exc:
            return 400, error_envelope("protocol", str(exc)), None
        request_id = (
            new_request_id() if self.telemetry is not None else None
        )
        headers: Dict[str, str] = (
            {REQUEST_ID_HEADER: request_id} if request_id else {}
        )
        if self.poison is not None and self.poison.is_quarantined(
            request.fingerprint
        ):
            info = self.poison.record_rejection(request.fingerprint)
            self._record_outcome(request.analysis, "error", started)
            return (
                503,
                error_envelope(
                    "poison",
                    f"request {request.fingerprint[:12]} is quarantined "
                    "after repeated worker deaths",
                    detail=info.to_json() if info is not None else None,
                ),
                headers or None,
            )
        if self.brownout is not None:
            refusal = self.brownout.refusal(request.analysis)
            if refusal is not None:
                status, reason = refusal
                self._record_outcome(request.analysis, "shed", started)
                self._count_brownout_refusal(status, request.analysis)
                headers["Retry-After"] = self._retry_after_brownout()
                return status, error_envelope("brownout", reason), headers
        try:
            future = self.batcher.submit(request, request_id=request_id)
        except QueueFullError as exc:
            if self.telemetry is not None:
                # Shed requests never reach the batcher's trace path;
                # store a root-only trace so the id still resolves.
                trace = RequestTrace(
                    request_id, request.analysis,
                    fingerprint=request.fingerprint,
                )
                self.telemetry.store.put(trace.finish("shed"))
            self._record_outcome(request.analysis, "shed", started)
            headers["Retry-After"] = self._retry_after()
            return 429, error_envelope("shed", str(exc)), headers
        except ServeError as exc:
            self._record_outcome(request.analysis, "error", started)
            return (
                503, error_envelope("unavailable", str(exc)), headers or None
            )
        wait = (
            request.deadline_s + 1.0
            if request.deadline_s is not None
            else self.config.request_timeout_s
        )
        try:
            outcome = future.result(timeout=wait)
        except DeadlineError as exc:
            self._record_outcome(request.analysis, "error", started)
            return 504, error_envelope("deadline", str(exc)), headers or None
        except FutureTimeoutError:
            self._record_outcome(request.analysis, "error", started)
            return (
                504,
                error_envelope(
                    "timeout", f"no result within {wait:.1f}s"
                ),
                headers or None,
            )
        except ProtocolError as exc:
            self._record_outcome(request.analysis, "error", started)
            return 400, error_envelope("protocol", str(exc)), headers or None
        except PoisonedRequestError as exc:
            # Quarantine tripped while this very request was in flight.
            self._record_outcome(request.analysis, "error", started)
            return (
                503,
                error_envelope(
                    "poison",
                    str(exc),
                    detail={
                        "fingerprint": exc.fingerprint,
                        "analysis": exc.analysis,
                        "deaths": exc.deaths,
                    },
                ),
                headers or None,
            )
        except ReproError as exc:
            self._record_outcome(request.analysis, "error", started)
            return (
                500,
                error_envelope(type(exc).__name__, str(exc)),
                headers or None,
            )
        except Exception as exc:  # noqa: BLE001 - handlers must not die
            self._record_outcome(request.analysis, "error", started)
            return 500, error_envelope("internal", str(exc)), headers or None
        envelope = ok_envelope(request, outcome["result"], outcome["meta"])
        self._record_outcome(request.analysis, "ok", started)
        return 200, envelope, headers or None

    def _record_outcome(
        self, analysis: Optional[str], outcome: str, started_perf: float
    ) -> None:
        """Fold one finished request into rolling windows and SLOs."""
        if self.telemetry is None:
            return
        latency_ms = (time.perf_counter() - started_perf) * 1000.0
        self.telemetry.record_request("/v1/eval", analysis, outcome, latency_ms)

    def _retry_after(self) -> str:
        """A shed client's hint: roughly one batch window from now."""
        return str(max(1, int(round(self.config.batch_wait_s * 2))))

    def _retry_after_brownout(self) -> str:
        """A browned-out client's hint: try again after roughly one
        controller dwell (the soonest the tier can have stepped down)."""
        policy = (
            self.brownout.policy
            if self.brownout is not None
            else BrownoutPolicy()
        )
        return str(max(1, int(round(policy.min_dwell_s))))

    def _count_brownout_refusal(self, status: int, analysis: str) -> None:
        metrics = self.session.metrics
        if status == 503:
            metrics.counter("serve.brownout.shed").inc()
        else:
            metrics.counter("serve.brownout.refused").inc()
            metrics.counter(f"serve.brownout.refused[{analysis}]").inc()

    # -- introspection ---------------------------------------------------------

    def ready(self) -> Tuple[bool, str]:
        """Readiness: should a balancer send this instance traffic?

        Liveness (the process answers) and readiness (it would accept an
        evaluation) split under resilience: a fully shed or worker-less
        server is alive but not ready.
        """
        if self.brownout is not None and self.brownout.tier >= Tier.SHED:
            return False, f"brownout tier {self.brownout.tier.name}"
        if self.supervisor is not None and self.supervisor.alive_count() == 0:
            return False, "no worker processes alive"
        return True, "ok"

    def health(self) -> Dict[str, Any]:
        import repro

        is_ready, ready_reason = self.ready()
        out: Dict[str, Any] = {
            "ok": True,
            "live": True,
            "ready": is_ready,
            "ready_reason": ready_reason,
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.batcher.stats()["queue_depth"],
        }
        if self.telemetry is not None:
            shed = self.telemetry.shed_rate()
            p99 = self.telemetry.rolling_p99_ms()
            out["shed_rate"] = round(shed, 6) if shed is not None else None
            out["rolling_p99_ms"] = (
                round(p99, 3) if p99 is not None else None
            )
        if self.brownout is not None:
            out["brownout"] = self.brownout.snapshot()
        if self.supervisor is not None:
            sup = self.supervisor.stats()
            out["workers"] = {
                "configured": sup["configured"],
                "alive": sup["alive"],
                "deaths": sup["deaths"],
            }
        return out

    def prometheus(self) -> str:
        """The ``/metrics`` text-format rendering (content-negotiated)."""
        rolling = slo_report = None
        if self.telemetry is not None:
            rolling = self.telemetry.rolling.summary()
            slo_report = self.telemetry.slo.report()
        return render_prometheus(
            self.session.metrics.snapshot(),
            rolling=rolling,
            slo_report=slo_report,
            extra={
                "serve.up": 1,
                "serve.uptime_s": round(time.time() - self.started_at, 3),
            },
        )

    def stats(self) -> Dict[str, Any]:
        import repro

        stats: Dict[str, Any] = {
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "config": {
                "jobs": self.config.jobs,
                "queue_bound": self.config.queue_bound,
                "max_batch": self.config.max_batch,
                "batch_wait_s": self.config.batch_wait_s,
                "workers": self.config.workers,
            },
            **self.batcher.stats(),
        }
        if self.supervisor is not None:
            stats["workers"] = self.supervisor.stats()
        if self.brownout is not None:
            stats["brownout"] = self.brownout.snapshot()
        if self.poison is not None:
            stats["poison"] = self.poison.stats()
        if self.cache is not None:
            disk = self.cache.stats()
            stats["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "corrupt": self.cache.corrupt,
                "entries": disk.entries,
                "bytes": disk.bytes,
                "version": self.cache.version,
            }
        if self.telemetry is not None:
            stats["rolling"] = self.telemetry.rolling.summary()
            stats["slo"] = self.telemetry.slo.report()
            stats["traces_stored"] = len(self.telemetry.store)
        return stats

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise ServeError("server not started")
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "EvalServer":
        """Bind, start the batcher and the listener thread; returns self."""
        if self._httpd is not None:
            return self
        if self.supervisor is not None:
            self.supervisor.start()
        self.batcher.start()
        if self.brownout is not None:
            self._ticker_stop.clear()
            self._ticker = threading.Thread(
                target=self._tick_loop, name="serve-ticker", daemon=True
            )
            self._ticker.start()
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        # Non-daemon handlers + block_on_close: server_close() joins the
        # in-flight handler threads, so close() cannot return before every
        # admitted request has flushed its response (HTTP/1.0, one request
        # per connection, so the joins are bounded).
        self._httpd.daemon_threads = False
        self._httpd.eval_server = self  # type: ignore[attr-defined]
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def _tick_loop(self) -> None:
        """Brownout sampling (and, in pool mode, the periodic cache GC
        that the in-process path runs between batches)."""
        interval = max(0.01, self.config.brownout_interval_s)
        prune_every = max(1, int(round(10.0 / interval)))
        ticks = 0
        while not self._ticker_stop.wait(interval):
            if self.brownout is not None:
                self.brownout.step()
            ticks += 1
            if self.supervisor is not None and ticks % prune_every == 0:
                self._maybe_prune()

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting, then drain (or cancel) the queue and pool.

        In-flight requests finish and their handler threads flush the
        responses; queued requests either run to completion (``drain``)
        or fail fast — either way every admitted request gets exactly
        one deterministic response, brownout tier or not.  Idempotent.
        """
        if self._httpd is not None:
            self._httpd.shutdown()
        self._ticker_stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=2.0)
            self._ticker = None
        self.batcher.close(drain=drain, timeout=timeout)
        if self.supervisor is not None:
            self.supervisor.close(drain=drain, timeout=timeout)
        if self._httpd is not None:
            # After the queue/pool resolved every future: join handler
            # threads (they are unblocked now) so responses are flushed
            # before the process may exit, then release the socket.
            self._httpd.server_close()
            self._httpd = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=timeout)
            self._serve_thread = None


def run_server(config: ServeConfig) -> int:
    """Run a server until SIGINT/SIGTERM; the ``repro serve`` body.

    Returns the process exit code.  Shutdown is graceful: the listener
    stops accepting, then the queue drains (deadline-expired entries are
    cancelled by the dispatcher as usual).
    """
    server = EvalServer(config).start()
    stop = threading.Event()

    def _signal_handler(signum: int, _frame: Any) -> None:
        print(
            f"[serve] caught {signal.Signals(signum).name}, draining...",
            flush=True,
        )
        stop.set()

    previous = {
        sig: signal.signal(sig, _signal_handler)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        print(
            f"[serve] listening on {server.base_url} "
            f"(jobs={config.jobs}, workers={config.workers}, "
            f"queue_bound={config.queue_bound}, "
            f"max_batch={config.max_batch})",
            flush=True,
        )
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.close(drain=True)
        print("[serve] drained and stopped", flush=True)
    return 0
