"""A supervised pool of worker processes behind the admission queue.

The batcher stays the single front door — admission, coalescing,
deadlines and backpressure are unchanged — but with a pool attached its
dispatcher stops *executing* batches and starts *routing* them:

* **Fingerprint-sharded routing.**  Each request fingerprint hashes to
  one shard (worker process), so identical requests always land on the
  same worker and coalescing survives sharding — there is never a second
  worker computing the entry a first one already owns.  A batch cut by
  the dispatcher is regrouped per shard and each shard group is sent as
  *one* work item, keeping the micro-batching amortisation.
* **Bit-identical execution.**  A worker rebuilds the same jobs from the
  same :class:`~repro.serve.protocol.Request` via
  :func:`repro.serve.analyses.build`, runs them on a
  :class:`~repro.runner.SerialExecutor`, and reduces with the same
  finish function — every job still carries its own seed tree, so the
  response payload is byte-for-byte what the in-process path (or the
  CLI) produces.  Workers share one on-disk cache through
  :class:`~repro.runner.cache.SingleFlightCache`, so concurrent misses
  on one fingerprint compute once.
* **Supervision.**  A worker death (crash, OOM-kill, SIGKILL) is
  detected by its broken pipe.  The supervisor marks each in-flight
  request with a death (see
  :class:`~repro.serve.resilience.PoisonRegistry`), re-queues the
  survivors as *singleton* tasks — so a second death pins the culprit
  exactly — and restarts the worker under exponential backoff.  Replays
  are idempotent by fingerprint: either the cache already holds the
  entry or it is recomputed bit-identically.
* **Poison quarantine.**  A fingerprint whose death marks reach the
  registry threshold is failed with
  :class:`~repro.errors.PoisonedRequestError` instead of being replayed
  — one poison request cannot crash-loop the pool.

The supervisor deals in :class:`WorkItem` values and reports every
completion through a single ``on_done(item, outcome)`` callback (outcome
is a payload dict or an exception), which is how the batcher resolves
its entry futures without the two layers sharing internals.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.errors import PoisonedRequestError, ServeError
from repro.obs.metrics import MetricsRegistry
from repro.runner.cache import SingleFlightCache
from repro.runner.executor import SerialExecutor
from repro.runner.jobs import Job
from repro.serve import analyses
from repro.serve.protocol import Request
from repro.serve.resilience import PoisonRegistry

#: Outcome callback: payload dict on success, exception on failure.
DoneCallback = Callable[["WorkItem", Any], None]


# --------------------------------------------------------------------------
# Worker side (runs in the child process; everything top-level and
# picklable so both fork and spawn start methods work).
# --------------------------------------------------------------------------


def _reindexed(jobs: List[Job], offset: int) -> List[Job]:
    """Shift job indices so concatenated lists stay unique (index is
    presentation-only — not part of the fingerprint, seeds, or cache
    keys)."""
    import dataclasses

    return [
        dataclasses.replace(job, index=offset + i)
        for i, job in enumerate(jobs)
    ]


def _evaluate_requests(
    requests: Sequence[Request], cache: Optional[SingleFlightCache]
) -> List[Dict[str, Any]]:
    """One shard batch: build, concatenate, run once, reduce per request.

    Mirrors the in-process dispatcher exactly — per-request isolation
    for build/reduce failures, one executor submission for the whole
    group — so pooled responses stay bit-identical to unpooled ones.
    """
    outcomes: List[Optional[Dict[str, Any]]] = [None] * len(requests)
    jobs: List[Job] = []
    ranges: List[Any] = []  # (outcome slot, finish, start, end)
    for slot, request in enumerate(requests):
        try:
            entry_jobs, finish = analyses.build(request)
        except Exception as exc:  # noqa: BLE001 - per-request isolation
            outcomes[slot] = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
            continue
        start = len(jobs)
        jobs.extend(_reindexed(entry_jobs, start))
        ranges.append((slot, finish, start, len(jobs)))
    if jobs:
        started = time.monotonic()
        executor = SerialExecutor(cache=cache)
        try:
            report = executor.run(jobs, strict=False)
        except Exception as exc:  # noqa: BLE001 - executor-level failure
            for slot, _, _, _ in ranges:
                outcomes[slot] = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            ranges = []
            report = None
        finally:
            if cache is not None:
                cache.release_all()
        elapsed = time.monotonic() - started
        if report is not None:
            failed_by_index = {f.index: f for f in report.failures}
            for slot, finish, start, end in ranges:
                failures = [
                    failed_by_index[i]
                    for i in range(start, end)
                    if i in failed_by_index
                ]
                if failures:
                    first = failures[0]
                    outcomes[slot] = {
                        "ok": False,
                        "error": (
                            f"{len(failures)} of {end - start} jobs failed; "
                            f"first: {first.label}: {first.error}"
                        ),
                    }
                    continue
                try:
                    payload = finish(report.values[start:end])
                except Exception as exc:  # noqa: BLE001 - per-request
                    outcomes[slot] = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                    continue
                outcomes[slot] = {
                    "ok": True,
                    "payload": payload,
                    "jobs": end - start,
                    "cache_hits": report.stats.cache_hits,
                    "batch_seconds": round(elapsed, 6),
                }
    return [
        outcome
        if outcome is not None
        else {"ok": False, "error": "request produced no jobs"}
        for outcome in outcomes
    ]


def _worker_main(
    worker_id: int,
    conn: Any,
    cache_dir: Optional[str],
    cache_version: Optional[str],
    lease_s: float,
) -> None:
    """The worker process loop: receive shard batches, evaluate, reply.

    Protocol (parent -> worker): ``("batch", task_id, [Request, ...])``,
    ``("latency", seconds)`` (chaos-drill injection: sleep that long
    before each subsequent batch), ``("stop",)``.
    Worker -> parent: ``("result", task_id, [outcome, ...])``.
    """
    # The parent owns lifecycle; an operator ^C must not kill workers
    # mid-batch before the parent has drained.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        pass
    cache = (
        SingleFlightCache(cache_dir, version=cache_version, lease_s=lease_s)
        if cache_dir
        else None
    )
    injected_latency_s = 0.0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "latency":
            injected_latency_s = max(0.0, float(message[1]))
            continue
        if kind != "batch":  # pragma: no cover - future protocol slack
            continue
        _, task_id, requests = message
        if injected_latency_s > 0:
            time.sleep(injected_latency_s)
        try:
            outcomes = _evaluate_requests(requests, cache)
        except BaseException as exc:  # noqa: BLE001 - keep the loop alive
            outcomes = [
                {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                for _ in requests
            ]
        try:
            conn.send(("result", task_id, outcomes))
        except (OSError, ValueError, BrokenPipeError):
            return


# --------------------------------------------------------------------------
# Parent side.
# --------------------------------------------------------------------------


@dataclass
class WorkItem:
    """One request the batcher handed to the pool.

    ``context`` is opaque to the supervisor — the batcher stores its
    queue entry there and gets it back in ``on_done``.  ``attempts``
    counts worker deaths this item lived through (replays).
    """

    request: Request
    context: Any = None
    attempts: int = 0


@dataclass
class _Task:
    """One shard-group in flight on one worker."""

    task_id: int
    items: List[WorkItem]
    sent_at: float = 0.0


class _Shard:
    """One worker process slot and its routing state."""

    __slots__ = (
        "id",
        "proc",
        "conn",
        "lock",
        "inflight",
        "backlog",
        "alive",
        "restarts",
        "consecutive_deaths",
        "spawned_at",
        "tasks_done",
    )

    def __init__(self, shard_id: int) -> None:
        self.id = shard_id
        self.proc: Optional[Any] = None
        self.conn: Optional[Any] = None
        self.lock = threading.Lock()
        self.inflight: Dict[int, _Task] = {}
        self.backlog: List[_Task] = []
        self.alive = False
        self.restarts = 0
        self.consecutive_deaths = 0
        self.spawned_at = 0.0
        self.tasks_done = 0


class Supervisor:
    """Owns N worker processes; routes, replays, restarts, quarantines.

    Args:
        workers: Pool size (>= 1).
        on_done: Completion callback; called from receiver threads with
            ``(item, outcome)`` where outcome is the worker's payload
            dict or an exception.  Must not block for long.
        cache_dir / cache_version: The shared on-disk cache workers open
            (with single-flight semantics); ``None`` disables caching.
        metrics: Optional registry for ``serve.worker.*`` counters and
            the ``serve.workers_alive`` gauge.
        poison: Optional circuit breaker consulted on worker deaths.
        backoff_base_s / backoff_max_s: Exponential restart backoff
            (``base * 2**(consecutive_deaths - 1)``, capped).
        stable_after_s: A worker surviving this long resets its
            consecutive-death count (a crash after a week is not part of
            a crash loop).
        lease_s: Single-flight lease passed through to worker caches.
    """

    def __init__(
        self,
        workers: int,
        on_done: DoneCallback,
        cache_dir: Optional[str] = None,
        cache_version: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        poison: Optional[PoisonRegistry] = None,
        backoff_base_s: float = 0.1,
        backoff_max_s: float = 5.0,
        stable_after_s: float = 30.0,
        lease_s: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ServeError("workers must be >= 1")
        if backoff_base_s <= 0 or backoff_max_s < backoff_base_s:
            raise ServeError("need 0 < backoff_base_s <= backoff_max_s")
        self.workers = workers
        self._on_done = on_done
        self._cache_dir = cache_dir
        self._cache_version = cache_version
        self._metrics = metrics
        self._poison = poison
        self._backoff_base_s = backoff_base_s
        self._backoff_max_s = backoff_max_s
        self._stable_after_s = stable_after_s
        self._lease_s = lease_s
        start_methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in start_methods else None
        )
        self._shards = [_Shard(i) for i in range(workers)]
        self._task_ids = itertools.count(1)
        self._closed = False
        self._started = False
        #: Items submitted and not yet reported through ``on_done`` —
        #: includes items in the replay gap between a death and the
        #: respawned worker, which live in neither inflight nor backlog.
        self._pending_items = 0
        self._pending_lock = threading.Lock()
        self.deaths_total = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Supervisor":
        if self._started:
            return self
        self._started = True
        for shard in self._shards:
            self._spawn(shard)
        return self

    def _spawn(self, shard: _Shard) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                shard.id,
                child_conn,
                self._cache_dir,
                self._cache_version,
                self._lease_s,
            ),
            name=f"serve-worker-{shard.id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        with shard.lock:
            shard.proc = proc
            shard.conn = parent_conn
            shard.alive = True
            shard.spawned_at = time.monotonic()
        threading.Thread(
            target=self._recv_loop,
            args=(shard, proc, parent_conn),
            name=f"serve-recv-{shard.id}",
            daemon=True,
        ).start()
        self._gauge_alive()

    def close(
        self, drain: bool = False, timeout: Optional[float] = None
    ) -> None:
        """Stop the pool; optionally wait for in-flight work first.

        With ``drain``, waits (bounded by ``timeout``) for every
        submitted item to resolve; anything still unresolved after the
        workers stop is failed with :class:`ServeError` so no caller
        hangs on a future that will never be set.
        """
        if drain:
            self.drain(timeout)
        self._closed = True
        for shard in self._shards:
            with shard.lock:
                conn = shard.conn
                if conn is not None:
                    try:
                        conn.send(("stop",))
                    except (OSError, ValueError, BrokenPipeError):
                        pass
        for shard in self._shards:
            proc = shard.proc
            if proc is None:
                continue
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=0.5)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=0.5)
            with shard.lock:
                shard.alive = False
        self._fail_outstanding(ServeError("server shut down before dispatch"))
        self._gauge_alive()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every submitted item has resolved; True on empty."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            with self._pending_lock:
                pending = self._pending_items
            if pending == 0:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    def _fail_outstanding(self, exc: BaseException) -> None:
        for shard in self._shards:
            with shard.lock:
                tasks = list(shard.inflight.values()) + shard.backlog
                shard.inflight.clear()
                shard.backlog = []
            for task in tasks:
                for item in task.items:
                    self._done(item, exc)

    # -- routing --------------------------------------------------------------

    def shard_of(self, fingerprint: str) -> int:
        """Stable fingerprint -> worker mapping (hex prefix mod N)."""
        return int(fingerprint[:8], 16) % self.workers

    def submit(self, items: Sequence[WorkItem]) -> None:
        """Route ``items`` to their shards, one task per shard group."""
        if self._closed:
            raise ServeError("supervisor is shutting down")
        groups: Dict[int, List[WorkItem]] = {}
        for item in items:
            groups.setdefault(
                self.shard_of(item.request.fingerprint), []
            ).append(item)
        with self._pending_lock:
            self._pending_items += len(items)
        for shard_id in sorted(groups):
            self._send(
                self._shards[shard_id],
                _Task(next(self._task_ids), groups[shard_id]),
            )

    def _send(self, shard: _Shard, task: _Task) -> None:
        task.sent_at = time.monotonic()
        with shard.lock:
            if not shard.alive:
                # Worker is mid-restart: hold the task; the restart path
                # flushes the backlog once the replacement is up.
                shard.backlog.append(task)
                return
            shard.inflight[task.task_id] = task
            try:
                shard.conn.send(
                    ("batch", task.task_id, [i.request for i in task.items])
                )
            except (OSError, ValueError, BrokenPipeError):
                # Death detected at send time; the receiver thread will
                # notice the broken pipe and run the restart path.
                shard.inflight.pop(task.task_id, None)
                shard.backlog.append(task)

    # -- receive / supervision -------------------------------------------------

    def _recv_loop(self, shard: _Shard, proc: Any, conn: Any) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] != "result":  # pragma: no cover - protocol slack
                continue
            _, task_id, outcomes = message
            with shard.lock:
                task = shard.inflight.pop(task_id, None)
                shard.tasks_done += 1
            if task is None:
                continue
            for item, outcome in zip(task.items, outcomes):
                if isinstance(outcome, dict):
                    if outcome.get("ok") and self._poison is not None:
                        self._poison.record_success(
                            item.request.fingerprint
                        )
                    outcome.setdefault("worker", shard.id)
                    outcome["attempts"] = item.attempts + 1
                    outcome["shard_batch"] = len(task.items)
                self._done(item, outcome)
        with shard.lock:
            stale = shard.proc is not proc
        if stale or self._closed:
            return
        self._handle_death(shard, proc)

    def _handle_death(self, shard: _Shard, proc: Any) -> None:
        """Runs on the dead worker's receiver thread: mark, replay,
        backoff, respawn."""
        proc.join(timeout=2.0)  # reap, so pid-liveness lease checks work
        with shard.lock:
            shard.alive = False
            orphans = list(shard.inflight.values())
            shard.inflight.clear()
            shard.restarts += 1
            if (
                time.monotonic() - shard.spawned_at > self._stable_after_s
            ):
                shard.consecutive_deaths = 1
            else:
                shard.consecutive_deaths += 1
            consecutive = shard.consecutive_deaths
        self.deaths_total += 1
        self._count("serve.worker.deaths")
        self._gauge_alive()

        replay: List[WorkItem] = []
        for task in orphans:
            for item in task.items:
                item.attempts += 1
                fingerprint = item.request.fingerprint
                if self._poison is not None:
                    deaths = self._poison.record_death(
                        fingerprint,
                        analysis=item.request.analysis,
                        worker=shard.id,
                    )
                    if self._poison.is_quarantined(fingerprint):
                        self._done(
                            item,
                            PoisonedRequestError(
                                f"request {fingerprint[:12]} quarantined "
                                f"after {deaths} worker deaths",
                                fingerprint=fingerprint,
                                analysis=item.request.analysis,
                                deaths=deaths,
                            ),
                        )
                        continue
                replay.append(item)

        backoff = min(
            self._backoff_max_s,
            self._backoff_base_s * (2 ** (consecutive - 1)),
        )
        deadline = time.monotonic() + backoff
        while not self._closed and time.monotonic() < deadline:
            time.sleep(min(0.05, backoff))
        if self._closed:
            with shard.lock:
                backlog = shard.backlog
                shard.backlog = []
            for item in replay:
                self._done(
                    item, ServeError("server shut down during worker restart")
                )
            for task in backlog:
                for item in task.items:
                    self._done(
                        item,
                        ServeError("server shut down during worker restart"),
                    )
            return
        self._spawn(shard)
        self._count("serve.worker.restarts")
        with shard.lock:
            backlog = shard.backlog
            shard.backlog = []
        # Replay orphans as singletons: if one of them is poison, the
        # next death marks exactly the culprit, not its batch-mates.
        for item in replay:
            self._send(shard, _Task(next(self._task_ids), [item]))
        for task in backlog:
            self._send(shard, task)

    def _done(self, item: WorkItem, outcome: Any) -> None:
        with self._pending_lock:
            self._pending_items -= 1
        try:
            self._on_done(item, outcome)
        except Exception:  # noqa: BLE001 - callbacks must not kill recv
            pass

    # -- chaos hooks (the drill drives these) ---------------------------------

    def kill_worker(self, shard_id: int, sig: int = signal.SIGKILL) -> bool:
        """Send ``sig`` to one worker process (chaos injection)."""
        shard = self._shards[shard_id]
        proc = shard.proc
        if proc is None or proc.pid is None or not proc.is_alive():
            return False
        try:
            os.kill(proc.pid, sig)
        except (OSError, ProcessLookupError):
            return False
        return True

    def inject_latency(
        self, seconds: float, shard_id: Optional[int] = None
    ) -> None:
        """Ask worker(s) to sleep before each batch (chaos injection)."""
        targets = (
            self._shards
            if shard_id is None
            else [self._shards[shard_id]]
        )
        for shard in targets:
            with shard.lock:
                if shard.conn is None or not shard.alive:
                    continue
                try:
                    shard.conn.send(("latency", float(seconds)))
                except (OSError, ValueError, BrokenPipeError):
                    pass

    def inflight_fingerprints(self, shard_id: int) -> Set[str]:
        """Fingerprints currently on one worker (drill targeting aid)."""
        shard = self._shards[shard_id]
        with shard.lock:
            return {
                item.request.fingerprint
                for task in shard.inflight.values()
                for item in task.items
            }

    # -- introspection ---------------------------------------------------------

    def pending_items(self) -> int:
        """Items submitted and not yet resolved (the pool's backlog).

        In pool mode the admission queue drains into the shards almost
        instantly, so *this* is where load pressure shows up — the
        brownout controller folds it into its queue signal.
        """
        with self._pending_lock:
            return self._pending_items

    def alive_count(self) -> int:
        count = 0
        for shard in self._shards:
            with shard.lock:
                if shard.alive and shard.proc is not None and shard.proc.is_alive():
                    count += 1
        return count

    def alive_fraction(self) -> float:
        return self.alive_count() / float(self.workers)

    def stats(self) -> Dict[str, Any]:
        per_worker = []
        for shard in self._shards:
            with shard.lock:
                per_worker.append(
                    {
                        "worker": shard.id,
                        "pid": shard.proc.pid if shard.proc else None,
                        "alive": bool(
                            shard.alive
                            and shard.proc is not None
                            and shard.proc.is_alive()
                        ),
                        "restarts": shard.restarts,
                        "inflight": sum(
                            len(t.items) for t in shard.inflight.values()
                        ),
                        "backlog": sum(
                            len(t.items) for t in shard.backlog
                        ),
                        "tasks_done": shard.tasks_done,
                    }
                )
        with self._pending_lock:
            pending = self._pending_items
        return {
            "configured": self.workers,
            "alive": sum(1 for w in per_worker if w["alive"]),
            "deaths": self.deaths_total,
            "pending_items": pending,
            "per_worker": per_worker,
        }

    def _count(self, name: str, n: float = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(n)

    def _gauge_alive(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("serve.workers_alive").set(
                self.alive_count()
            )
