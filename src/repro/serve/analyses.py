"""From a validated :class:`~repro.serve.protocol.Request` to runner jobs.

Every analysis the service exposes reduces to the same shape the
library's own entry points use: *build a job list, run it, fold the
values*.  :func:`build` returns that pair — ``(jobs, finish)`` — without
running anything, which is what lets the batcher concatenate the job
lists of many requests into **one** executor submission and still hand
each caller exactly the payload a dedicated run would have produced.

:func:`evaluate_request` is the unbatched reference path: the CLI's
``--json`` output goes through it, and the serve-smoke certification
diffs its payloads against the HTTP ones byte-for-byte.  Both paths
share the same job builders, the same seed trees, and (given the same
cache directory) the same :class:`~repro.runner.ResultCache` entries —
bit-identical responses are a construction property, then certified by
test.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runner.executor import BaseExecutor, SerialExecutor
from repro.runner.jobs import Job, make_jobs
from repro.serve.protocol import Request

#: Folds executor values (the request's slice, submission order) into the
#: response's ``result`` payload — plain JSON-able data only.
FinishFn = Callable[[Sequence[Any]], Any]


def _echo_cell(spec: Mapping[str, Any], seed: Any) -> Dict[str, Any]:
    """Diagnostics job: sleep as instructed, return the payload."""
    if spec["sleep_s"] > 0:
        time.sleep(spec["sleep_s"])
    return {"echo": spec["payload"]}


def _whatif_record(report) -> Dict[str, Any]:
    """Flatten an ExpectedOutageReport; nodes as [duration, weight] pairs."""
    record = asdict(report)
    record["nodes"] = [[d, w] for d, w in report.nodes]
    record["expected_downtime_minutes"] = report.expected_downtime_minutes
    return record


def _rank_records(ranking) -> List[Dict[str, Any]]:
    """Flatten a reduce_rank result (list of SizedBackup, cheapest first)."""
    from repro.analysis.export import _jsonable

    records = []
    for sized in ranking:
        config = sized.configuration
        records.append(
            {
                "technique": sized.point.technique_name,
                "normalized_cost": _jsonable(sized.normalized_cost),
                "performance": _jsonable(sized.point.performance),
                "downtime_minutes": _jsonable(sized.point.downtime_minutes),
                "crashed": sized.point.crashed,
                "configuration": {
                    "name": config.name,
                    "dg_power_fraction": config.dg_power_fraction,
                    "ups_power_fraction": config.ups_power_fraction,
                    "ups_runtime_seconds": config.ups_runtime_seconds,
                },
            }
        )
    return records


def _build_availability(params: Mapping[str, Any]) -> Tuple[List[Job], FinishFn]:
    from repro.analysis.availability import AvailabilityAnalyzer
    from repro.analysis.export import availability_record
    from repro.core.configurations import get_configuration
    from repro.faults import FaultPlan
    from repro.techniques.registry import get_technique
    from repro.workloads.registry import get_workload

    analyzer = AvailabilityAnalyzer(
        get_workload(params["workload"]),
        num_servers=params["servers"],
        seed=params["seed"],
    )
    faults = (
        FaultPlan.parse(params["faults"]) if params["faults"] else None
    )
    jobs, reduce = analyzer.prepare(
        get_configuration(params["configuration"]),
        get_technique(params["technique"]),
        years=params["years"],
        faults=faults,
    )
    return jobs, lambda values: availability_record(reduce(values))


def _build_rank(params: Mapping[str, Any]) -> Tuple[List[Job], FinishFn]:
    from repro.core.selection import rank_jobs, reduce_rank
    from repro.units import minutes
    from repro.workloads.registry import get_workload

    jobs = rank_jobs(
        get_workload(params["workload"]),
        minutes(params["outage_minutes"]),
        technique_names=params["techniques"],
        num_servers=params["servers"],
    )
    return jobs, lambda values: _rank_records(reduce_rank(values))


def _build_sweep(params: Mapping[str, Any]) -> Tuple[List[Job], FinishFn]:
    from repro.analysis.export import sweep_records
    from repro.analysis.sweep import (
        configuration_sweep_jobs,
        technique_sweep_jobs,
    )
    from repro.core.configurations import get_configuration
    from repro.units import minutes
    from repro.workloads.registry import get_workload

    workload = get_workload(params["workload"])
    durations = [minutes(m) for m in params["outage_minutes"]]
    if params["kind"] == "techniques":
        jobs = technique_sweep_jobs(
            workload, params["rows"], durations, num_servers=params["servers"]
        )
    else:
        jobs = configuration_sweep_jobs(
            workload,
            [get_configuration(name) for name in params["rows"]],
            durations,
            num_servers=params["servers"],
        )
    return jobs, sweep_records


def _build_whatif(params: Mapping[str, Any]) -> Tuple[List[Job], FinishFn]:
    from repro.core.whatif import whatif_cell

    jobs = make_jobs(
        whatif_cell,
        [dict(params)],
        labels=[
            f"whatif:{params['workload']}/{params['configuration']}"
            f"/{params['technique']}"
        ],
    )
    return jobs, lambda values: _whatif_record(values[0])


def _build_policy_frontier(params: Mapping[str, Any]) -> Tuple[List[Job], FinishFn]:
    from repro.policy.frontier import (
        policy_frontier_jobs,
        reduce_policy_frontier,
    )

    jobs = policy_frontier_jobs(
        params["workload"],
        params["configurations"],
        params["policies"],
        nodes_per_bucket=params["nodes_per_bucket"],
        num_servers=params["servers"],
    )
    return jobs, lambda values: reduce_policy_frontier(values)


def _build_fleet_frontier(params: Mapping[str, Any]) -> Tuple[List[Job], FinishFn]:
    from repro.fleet.frontier import prepare_fleet_frontier

    return prepare_fleet_frontier(
        params["fleet"],
        params["configurations"],
        technique=params["technique"],
        years=params["years"],
        seed=params["seed"],
    )


def _build_echo(params: Mapping[str, Any]) -> Tuple[List[Job], FinishFn]:
    jobs = make_jobs(_echo_cell, [dict(params)], labels=["echo"])
    return jobs, lambda values: values[0]


_BUILDERS: Dict[str, Callable[[Mapping[str, Any]], Tuple[List[Job], FinishFn]]] = {
    "availability": _build_availability,
    "rank": _build_rank,
    "sweep": _build_sweep,
    "whatif": _build_whatif,
    "policy_frontier": _build_policy_frontier,
    "fleet_frontier": _build_fleet_frontier,
    "echo": _build_echo,
}


def build(request: Request) -> Tuple[List[Job], FinishFn]:
    """The request's ``(jobs, finish)`` pair, nothing executed yet."""
    return _BUILDERS[request.analysis](request.params)


def evaluate_request(
    request: Request, executor: Optional[BaseExecutor] = None
) -> Any:
    """Run one request to its ``result`` payload — the reference path.

    This is exactly what the batched server computes for the same
    request; the CLI's ``--json`` flags print its output canonically.
    """
    jobs, finish = build(request)
    if executor is None:
        executor = SerialExecutor()
    report = executor.run(jobs)
    return finish(report.values)
