"""Closed-loop load generator for the evaluation service.

Each worker is a closed loop: issue a request, wait for the response,
record the latency, immediately issue the next.  Offered load therefore
tracks service capacity (concurrency bounds the in-flight population),
which is the right model for benchmarking a backpressured server — an
open-loop generator would just measure its own queue.

The request mix is weighted sampling over named shapes (``whatif``,
``availability``, ``rank``, ``sweep``, ``echo``), drawn from a seeded
RNG so two runs against the same server offer the same sequence.  The
report carries throughput, latency percentiles, and the status/shed
breakdown; ``repro loadgen`` writes it to ``BENCH_serve.json`` next to
the other ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import http.client
import json
import random
import statistics
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ServeError
from repro.serve.protocol import PROTOCOL_VERSION, canonical_json

#: The canned request shapes a mix can draw from.  Costs span three
#: orders of magnitude: echo ~0, whatif ~ms, availability/rank ~100 ms —
#: enough spread to exercise batching and queueing realistically while
#: keeping a smoke run fast.
REQUEST_SHAPES: Dict[str, Dict[str, Any]] = {
    "echo": {
        "analysis": "echo",
        "params": {"payload": {"ping": True}},
    },
    "whatif": {
        "analysis": "whatif",
        "params": {
            "workload": "memcached",
            "configuration": "NoDG",
            "technique": "sleep-l",
        },
    },
    "availability": {
        "analysis": "availability",
        "params": {
            "workload": "memcached",
            "configuration": "NoDG",
            "technique": "sleep-l",
            "years": 5,
        },
    },
    "rank": {
        "analysis": "rank",
        "params": {"workload": "memcached", "outage_minutes": 5.0},
    },
    "sweep": {
        "analysis": "sweep",
        "params": {
            "workload": "memcached",
            "rows": ["full-service", "sleep-l"],
            "outage_minutes": [5.0],
        },
    },
}


def parse_mix(spec: str) -> Dict[str, float]:
    """``"whatif=2,availability=1"`` -> ``{"whatif": 2.0, ...}``.

    Bare names get weight 1; unknown shapes and non-positive weights are
    rejected up front rather than failing mid-run.
    """
    mix: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight_text = part.partition("=")
        name = name.strip()
        if name not in REQUEST_SHAPES:
            raise ServeError(
                f"unknown request shape {name!r}; "
                f"one of {sorted(REQUEST_SHAPES)}"
            )
        try:
            weight = float(weight_text) if weight_text else 1.0
        except ValueError as exc:
            raise ServeError(f"bad weight in {part!r}") from exc
        if weight <= 0:
            raise ServeError(f"weight for {name!r} must be positive")
        mix[name] = mix.get(name, 0.0) + weight
    if not mix:
        raise ServeError(f"empty request mix {spec!r}")
    return mix


@dataclass
class LoadgenConfig:
    """One load-generation run.

    Attributes:
        base_url: Server root, e.g. ``http://127.0.0.1:8321``.
        concurrency: Closed-loop worker threads.
        duration_s: How long workers keep issuing requests.
        mix: Shape-name -> weight (see :data:`REQUEST_SHAPES`).
        seed: RNG seed for the mix sequence.
        deadline_s: Optional per-request deadline forwarded in the body.
        timeout_s: Client-side socket timeout per request.
        net_retries: Retry budget per request for network-level failures
            (connection refused/reset — what a restarting worker pool
            looks like from outside).  A request that exhausts the
            budget is recorded as an error with status 0; the generator
            itself never crashes on transport failures.
        retry_backoff_s: Pause between network retries.
    """

    base_url: str
    concurrency: int = 4
    duration_s: float = 5.0
    mix: Mapping[str, float] = field(
        default_factory=lambda: {"whatif": 2.0, "availability": 1.0, "echo": 1.0}
    )
    seed: int = 0
    deadline_s: Optional[float] = None
    timeout_s: float = 60.0
    net_retries: int = 2
    retry_backoff_s: float = 0.05


@dataclass(frozen=True)
class LoadgenReport:
    """What one run observed.

    Attributes:
        requests / ok / sheds / errors: Outcome counts (sheds = 429).
        duration_s: Measured wall-clock of the issuing window.
        throughput_rps: Completed-OK requests per second.
        latency_ms: p50/p95/p99/mean/max over successful requests.
        status_counts: HTTP status -> count of *final* outcomes per
            request, including retry-exhausted network failures under
            status 0.
        retries: Network-level attempts that were retried (connection
            refused/reset absorbed by the budget, e.g. while a worker
            pool restarts mid-run).
        net_errors: Requests whose final outcome was still a network
            failure after the retry budget.
        by_shape: Shape name -> issued count.
        latency_by_shape: Shape name -> p50/p95/p99/mean/max over that
            shape's successful requests — the per-analysis tails the
            serve benchmark gates on, not just the blended distribution.
        config: The knobs that produced this (for the artifact).
    """

    requests: int
    ok: int
    sheds: int
    errors: int
    duration_s: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    status_counts: Dict[str, int]
    by_shape: Dict[str, int]
    config: Dict[str, Any]
    latency_by_shape: Dict[str, Dict[str, float]] = field(default_factory=dict)
    retries: int = 0
    net_errors: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "bench": "serve",
            "requests": self.requests,
            "ok": self.ok,
            "sheds": self.sheds,
            "errors": self.errors,
            "retries": self.retries,
            "net_errors": self.net_errors,
            "duration_s": round(self.duration_s, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_ms": self.latency_ms,
            "status_counts": self.status_counts,
            "by_shape": self.by_shape,
            "latency_by_shape": self.latency_by_shape,
            "config": self.config,
        }

    def summary(self) -> str:
        lat = self.latency_ms
        return (
            f"{self.ok}/{self.requests} ok, {self.sheds} shed, "
            f"{self.errors} errors | {self.throughput_rps:.1f} req/s | "
            f"p50 {lat.get('p50', 0.0):.1f} ms, "
            f"p95 {lat.get('p95', 0.0):.1f} ms, "
            f"p99 {lat.get('p99', 0.0):.1f} ms"
        )


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile; samples must be sorted and non-empty."""
    index = max(0, min(len(samples) - 1, int(round(fraction * (len(samples) - 1)))))
    return samples[index]


def post_request_full(
    base_url: str, body: Mapping[str, Any], timeout_s: float = 60.0
) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
    """POST one protocol request; returns ``(status, headers, body)``.

    Headers matter since the server started minting request ids — the
    ``X-Repro-Request-Id`` value retrieves the span tree from
    ``/trace/<id>``.  Network-level failures surface as status 0 with an
    error-shaped body, so callers can treat every outcome uniformly.
    """
    data = canonical_json(dict(body)).encode("utf-8")
    request = urllib.request.Request(
        f"{base_url}/v1/eval",
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return (
                response.status,
                dict(response.headers.items()),
                json.loads(response.read().decode("utf-8")),
            )
    except urllib.error.HTTPError as exc:
        headers = dict(exc.headers.items()) if exc.headers else {}
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            payload = {"ok": False, "error": {"type": "http", "message": str(exc)}}
        return exc.code, headers, payload
    except (
        urllib.error.URLError,
        http.client.HTTPException,  # truncated/garbled exchange mid-shutdown
        OSError,
        ValueError,
    ) as exc:
        return 0, {}, {
            "ok": False, "error": {"type": "network", "message": str(exc)}
        }


def post_request(
    base_url: str, body: Mapping[str, Any], timeout_s: float = 60.0
) -> Tuple[int, Dict[str, Any]]:
    """:func:`post_request_full` without the headers (the original API)."""
    status, _headers, payload = post_request_full(
        base_url, body, timeout_s=timeout_s
    )
    return status, payload


def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Drive the closed loops and fold their observations into a report."""
    names = sorted(config.mix)
    weights = [float(config.mix[name]) for name in names]
    stop_at = time.monotonic() + config.duration_s
    lock = threading.Lock()
    latencies: List[float] = []
    shape_latencies: Dict[str, List[float]] = {name: [] for name in names}
    status_counts: Dict[str, int] = {}
    by_shape: Dict[str, int] = {name: 0 for name in names}
    totals = {
        "requests": 0, "ok": 0, "sheds": 0, "errors": 0,
        "retries": 0, "net_errors": 0,
    }

    def worker(worker_id: int) -> None:
        rng = random.Random(f"{config.seed}:{worker_id}")
        while time.monotonic() < stop_at:
            name = rng.choices(names, weights=weights, k=1)[0]
            shape = REQUEST_SHAPES[name]
            body: Dict[str, Any] = {
                "v": PROTOCOL_VERSION,
                "analysis": shape["analysis"],
                "params": shape["params"],
            }
            if config.deadline_s is not None:
                body["deadline_s"] = config.deadline_s
            started = time.monotonic()
            # Network failures (status 0: connection refused/reset — a
            # worker restart seen from outside) burn the retry budget
            # instead of crashing the loop or skewing the error count
            # with transient blips.
            attempts_left = max(0, config.net_retries)
            while True:
                status, _payload = post_request(
                    config.base_url, body, timeout_s=config.timeout_s
                )
                if status != 0 or attempts_left <= 0:
                    break
                attempts_left -= 1
                with lock:
                    totals["retries"] += 1
                if config.retry_backoff_s > 0:
                    time.sleep(config.retry_backoff_s)
            elapsed_ms = (time.monotonic() - started) * 1000.0
            with lock:
                totals["requests"] += 1
                by_shape[name] += 1
                status_counts[str(status)] = (
                    status_counts.get(str(status), 0) + 1
                )
                if status == 200:
                    totals["ok"] += 1
                    latencies.append(elapsed_ms)
                    shape_latencies[name].append(elapsed_ms)
                elif status == 429:
                    totals["sheds"] += 1
                else:
                    totals["errors"] += 1
                    if status == 0:
                        totals["net_errors"] += 1

    started_at = time.monotonic()
    threads = [
        threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
        for i in range(config.concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started_at

    def percentiles(samples: List[float]) -> Dict[str, float]:
        samples.sort()
        if not samples:
            return {}
        return {
            "p50": round(_percentile(samples, 0.50), 3),
            "p95": round(_percentile(samples, 0.95), 3),
            "p99": round(_percentile(samples, 0.99), 3),
            "mean": round(statistics.fmean(samples), 3),
            "max": round(samples[-1], 3),
        }

    latency_ms = percentiles(latencies)
    latency_by_shape = {
        name: percentiles(samples)
        for name, samples in sorted(shape_latencies.items())
        if samples
    }
    return LoadgenReport(
        requests=totals["requests"],
        ok=totals["ok"],
        sheds=totals["sheds"],
        errors=totals["errors"],
        retries=totals["retries"],
        net_errors=totals["net_errors"],
        duration_s=wall,
        throughput_rps=totals["ok"] / wall if wall > 0 else 0.0,
        latency_ms=latency_ms,
        status_counts=dict(sorted(status_counts.items())),
        by_shape=by_shape,
        latency_by_shape=latency_by_shape,
        config={
            "base_url": config.base_url,
            "concurrency": config.concurrency,
            "duration_s": config.duration_s,
            "mix": dict(sorted(config.mix.items())),
            "seed": config.seed,
            "deadline_s": config.deadline_s,
            "net_retries": config.net_retries,
        },
    )
