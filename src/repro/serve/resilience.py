"""Graded degradation for the serve tier: brownout + poison quarantine.

The paper's core stance is that underprovisioned backup is safe only
because failures are absorbed by a *layered* degradation plan — shave a
little, then a lot, then shed — instead of failing open.  This module
gives the evaluation service the same discipline:

* **Brownout tiers.**  A small controller watches queue pressure,
  rolling p99 latency and worker availability, and degrades service in
  declared, ordered tiers: ``NORMAL`` → ``TRIM`` (the batcher stops
  lingering for riders) → ``RESTRICT`` (expensive analyses are refused
  with 429 + ``Retry-After``) → ``SHED`` (every evaluation is refused
  with 503; ``/healthz``, ``/livez`` and ``/metrics`` stay up).  Tier
  moves are one step at a time in both directions, with hysteresis
  (exit thresholds sit below entry thresholds) and a minimum dwell
  before stepping down, so the service cannot flap or skip tiers — the
  drill certifies transitions happen *in order*.
* **Poison quarantine.**  A per-fingerprint circuit breaker.  When a
  worker process dies, every request it had in flight gets a death mark;
  a fingerprint whose marks reach the threshold is quarantined and all
  further identical requests are refused with a diagnostic 503 instead
  of crash-looping the pool.  Marks are cleared by a successful
  evaluation, so requests that merely shared a batch with a poison one
  recover on replay.

Both objects are plain, lock-guarded, and clock-injectable — the drill
and the unit tests drive them deterministically.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry

#: Analyses refused first under brownout: their job fan-out is one to
#: two orders of magnitude above a point query (a sweep is a whole
#: grid), so refusing them frees the most capacity per refusal.
EXPENSIVE_ANALYSES = frozenset({"sweep", "policy_frontier", "fleet_frontier"})


class Tier(enum.IntEnum):
    """Brownout tiers, in declared escalation order."""

    NORMAL = 0
    TRIM = 1      # stop lingering for micro-batch riders
    RESTRICT = 2  # refuse expensive analyses (429 + Retry-After)
    SHED = 3      # refuse all evaluations (503); GET surface stays up


@dataclass(frozen=True)
class BrownoutSignals:
    """One sampling of the three pressure inputs.

    Attributes:
        queue_frac: Admission-queue depth over its bound, in ``[0, 1+]``.
        p99_ms: Rolling p99 request latency (None with telemetry off or
            no traffic — the signal simply does not vote).
        workers_frac: Alive workers over configured workers; 1.0 for the
            in-process (no pool) server.
    """

    queue_frac: float = 0.0
    p99_ms: Optional[float] = None
    workers_frac: float = 1.0

    def describe(self) -> str:
        p99 = f"{self.p99_ms:.0f}" if self.p99_ms is not None else "-"
        return (
            f"queue={self.queue_frac:.2f} p99_ms={p99} "
            f"workers={self.workers_frac:.2f}"
        )


@dataclass(frozen=True)
class BrownoutPolicy:
    """Entry thresholds per tier plus the hysteresis/dwell shape.

    Index ``i`` of each tuple is the threshold for entering tier
    ``i + 1``.  A tier is entered when *any* signal crosses its
    threshold; it is exited only when *every* signal is back under the
    scaled-down exit threshold (``enter * exit_fraction``) and the tier
    has been held for ``min_dwell_s`` — classic hysteresis so the
    controller does not flap around a boundary.

    Attributes:
        queue_enter: Queue fractions entering TRIM / RESTRICT / SHED.
        p99_enter_ms: Rolling p99 thresholds for the same tiers.  The
            defaults are deliberately loose — queue depth is the primary
            driver; p99 is the backstop for a slow-poisoned pool.
        workers_enter: Alive-worker fractions *at or below* which the
            tier engages (a half-dead pool should trim, a dead one shed).
        exit_fraction: Exit threshold = entry threshold × this.
        min_dwell_s: Minimum time in a tier before stepping down.
    """

    queue_enter: Tuple[float, float, float] = (0.5, 0.8, 0.95)
    p99_enter_ms: Tuple[float, float, float] = (5_000.0, 15_000.0, 60_000.0)
    workers_enter: Tuple[float, float, float] = (0.5, 0.25, 0.0)
    exit_fraction: float = 0.7
    min_dwell_s: float = 1.0

    def __post_init__(self) -> None:
        for name in ("queue_enter", "p99_enter_ms", "workers_enter"):
            values = getattr(self, name)
            if len(values) != 3:
                raise ServeError(f"{name} needs one threshold per tier (3)")
        if not 0.0 < self.exit_fraction <= 1.0:
            raise ServeError("exit_fraction must be in (0, 1]")
        if self.min_dwell_s < 0:
            raise ServeError("min_dwell_s must be >= 0")

    def level(self, signals: BrownoutSignals, exiting: bool = False) -> Tier:
        """The tier these signals call for.

        With ``exiting=True`` the queue/p99 thresholds are scaled by
        ``exit_fraction`` — the level the controller may *descend* to.
        """
        scale = self.exit_fraction if exiting else 1.0
        level = 0
        for i in range(3):
            hot = (
                signals.queue_frac >= self.queue_enter[i] * scale
                or (
                    signals.p99_ms is not None
                    and signals.p99_ms >= self.p99_enter_ms[i] * scale
                )
                or signals.workers_frac <= self.workers_enter[i]
            )
            if hot:
                level = i + 1
        return Tier(level)


class BrownoutController:
    """Steps the service through brownout tiers, one tier at a time.

    Args:
        policy: Thresholds and hysteresis shape.
        signal_fn: Called on every :meth:`step` for a fresh
            :class:`BrownoutSignals` sample.
        metrics: Optional registry; transitions maintain the
            ``serve.brownout.tier`` gauge and ``serve.brownout.*``
            counters (the obs event stream for brownout).
        clock: Monotonic clock, injectable for tests.
        history_limit: Transition records kept for ``/healthz`` and the
            drill's in-order certification.
    """

    def __init__(
        self,
        policy: Optional[BrownoutPolicy] = None,
        signal_fn: Optional[Callable[[], BrownoutSignals]] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        history_limit: int = 256,
    ) -> None:
        self.policy = policy or BrownoutPolicy()
        self._signal_fn = signal_fn or BrownoutSignals
        self._metrics = metrics
        self._clock = clock
        self._history_limit = max(1, history_limit)
        self._lock = threading.Lock()
        self._tier = Tier.NORMAL
        self._since = clock()
        self._last_signals = BrownoutSignals()
        self.transitions: List[Dict[str, Any]] = []
        self.transitions_total = 0
        if metrics is not None:
            metrics.gauge("serve.brownout.tier").set(0)

    @property
    def tier(self) -> Tier:
        with self._lock:
            return self._tier

    def step(self) -> Tier:
        """Sample the signals and move at most one tier toward them."""
        signals = self._signal_fn()
        now = self._clock()
        with self._lock:
            self._last_signals = signals
            enter_level = self.policy.level(signals)
            exit_level = self.policy.level(signals, exiting=True)
            if enter_level > self._tier:
                self._move(Tier(self._tier + 1), signals, now)
            elif (
                exit_level < self._tier
                and now - self._since >= self.policy.min_dwell_s
            ):
                self._move(Tier(self._tier - 1), signals, now)
            return self._tier

    def _move(self, to: Tier, signals: BrownoutSignals, now: float) -> None:
        """One transition; caller holds the lock."""
        frm = self._tier
        self._tier = to
        self._since = now
        self.transitions_total += 1
        record = {
            "at_unix": round(time.time(), 3),
            "from": int(frm),
            "to": int(to),
            "from_name": frm.name,
            "to_name": to.name,
            "signals": signals.describe(),
        }
        self.transitions.append(record)
        del self.transitions[: -self._history_limit]
        if self._metrics is not None:
            self._metrics.gauge("serve.brownout.tier").set(int(to))
            self._metrics.counter("serve.brownout.transitions").inc()
            self._metrics.counter(
                f"serve.brownout.transitions[{frm.name}->{to.name}]"
            ).inc()

    # -- admission decisions ---------------------------------------------------

    def refusal(self, analysis: str) -> Optional[Tuple[int, str]]:
        """``(status, reason)`` if ``analysis`` must be refused right now.

        ``None`` means admit.  SHED refuses everything (503); RESTRICT
        refuses only :data:`EXPENSIVE_ANALYSES` (429).  The caller adds
        ``Retry-After``.
        """
        tier = self.tier
        if tier >= Tier.SHED:
            return 503, (
                f"brownout tier {tier.name}: all evaluations shed; "
                "retry shortly"
            )
        if tier >= Tier.RESTRICT and analysis in EXPENSIVE_ANALYSES:
            return 429, (
                f"brownout tier {tier.name}: expensive analysis "
                f"{analysis!r} refused; retry shortly"
            )
        return None

    def linger_s(self, normal_linger_s: float) -> float:
        """The batcher's micro-batch linger under the current tier.

        TRIM and above dispatch eagerly — under pressure, waiting for
        riders only adds latency to a queue that is already deep.
        """
        return 0.0 if self.tier >= Tier.TRIM else normal_linger_s

    def snapshot(self) -> Dict[str, Any]:
        """The ``/healthz`` / ``repro top`` view of the controller."""
        with self._lock:
            return {
                "tier": int(self._tier),
                "name": self._tier.name,
                "since_s": round(self._clock() - self._since, 3),
                "transitions": self.transitions_total,
                "signals": self._last_signals.describe(),
                "recent": [dict(r) for r in self.transitions[-8:]],
            }


@dataclass
class PoisonInfo:
    """Book-keeping for one fingerprint's death marks."""

    fingerprint: str
    analysis: Optional[str] = None
    deaths: int = 0
    workers: List[int] = field(default_factory=list)
    first_death_unix: float = 0.0
    quarantined_unix: Optional[float] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "analysis": self.analysis,
            "deaths": self.deaths,
            "workers": list(self.workers),
            "first_death_unix": round(self.first_death_unix, 3),
            "quarantined_unix": (
                round(self.quarantined_unix, 3)
                if self.quarantined_unix is not None
                else None
            ),
        }


class PoisonRegistry:
    """The per-fingerprint circuit breaker behind poison quarantine.

    A request that repeatedly takes a worker down with it must not be
    allowed to crash-loop the pool: after ``threshold`` death marks the
    fingerprint is quarantined and the server refuses it outright (503
    with the diagnostic body) until the process restarts.  Successful
    evaluation clears a fingerprint's marks — innocent requests that
    died alongside a poison batch-mate are exonerated on replay.

    Counters (when ``metrics`` is given): ``serve.poison.deaths``,
    ``serve.poison.quarantined``, ``serve.poison.rejected``.
    """

    def __init__(
        self,
        threshold: int = 3,
        metrics: Optional[MetricsRegistry] = None,
        capacity: int = 1024,
    ) -> None:
        if threshold < 1:
            raise ServeError("poison threshold must be >= 1")
        self.threshold = threshold
        self._metrics = metrics
        self._capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._suspects: Dict[str, PoisonInfo] = {}
        self._quarantined: Dict[str, PoisonInfo] = {}
        self.rejected = 0

    def record_death(
        self,
        fingerprint: str,
        analysis: Optional[str] = None,
        worker: Optional[int] = None,
    ) -> int:
        """Mark one worker death against ``fingerprint``; returns marks."""
        with self._lock:
            info = self._suspects.get(fingerprint)
            if info is None:
                # Bound the suspect table: drop the oldest mark first.
                if len(self._suspects) >= self._capacity:
                    self._suspects.pop(next(iter(self._suspects)))
                info = PoisonInfo(
                    fingerprint=fingerprint,
                    analysis=analysis,
                    first_death_unix=time.time(),
                )
                self._suspects[fingerprint] = info
            info.deaths += 1
            if analysis is not None:
                info.analysis = analysis
            if worker is not None:
                info.workers.append(worker)
            if self._metrics is not None:
                self._metrics.counter("serve.poison.deaths").inc()
            if (
                info.deaths >= self.threshold
                and fingerprint not in self._quarantined
            ):
                info.quarantined_unix = time.time()
                self._quarantined[fingerprint] = info
                self._suspects.pop(fingerprint, None)
                if self._metrics is not None:
                    self._metrics.counter("serve.poison.quarantined").inc()
            return info.deaths

    def record_success(self, fingerprint: str) -> None:
        """A completed evaluation exonerates its fingerprint."""
        with self._lock:
            self._suspects.pop(fingerprint, None)

    def is_quarantined(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._quarantined

    def record_rejection(self, fingerprint: str) -> Optional[PoisonInfo]:
        """Count one admission-time refusal; returns the diagnostic info."""
        with self._lock:
            info = self._quarantined.get(fingerprint)
            if info is None:
                return None
            self.rejected += 1
        if self._metrics is not None:
            self._metrics.counter("serve.poison.rejected").inc()
        return info

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold": self.threshold,
                "suspects": len(self._suspects),
                "quarantined": len(self._quarantined),
                "rejected": self.rejected,
                "entries": [
                    info.to_json()
                    for info in self._quarantined.values()
                ],
            }
