"""Crash-safe sweep checkpointing: a JSONL manifest of finished work.

The :class:`~repro.runner.cache.ResultCache` is the *value* store; a
:class:`SweepCheckpoint` is the *progress* manifest layered on top of it.
As an executor completes jobs it appends one JSON line per job
(``{"fingerprint", "index", "label"}``) to the checkpoint file; a run that
dies — power cut, OOM kill, ctrl-C — leaves behind an accurate record of
what finished.  Relaunching with ``resume=True`` loads the manifest and
serves every recorded job straight from the cache, so the resumed run's
results are provably identical to an uninterrupted one: the values come
from the same fingerprint-keyed store either way, and jobs carry their own
seeded streams so recomputed stragglers match too.

The format is deliberately dumb.  Appending a line is atomic enough for
one writer; a line half-written at the moment of death is detected (bad
JSON) and skipped on load, costing at most a re-run of that one job.  No
compaction, no binary framing, greppable in an editor.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Optional, Set

from repro.errors import RunnerError
from repro.runner.jobs import Job


class SweepCheckpoint:
    """Append-only progress manifest for one (possibly interrupted) sweep.

    Args:
        path: Manifest file location (parent directories are created).
        resume: Load fingerprints already recorded in ``path`` instead of
            truncating it.  With ``resume=False`` (the default) an
            existing manifest is discarded — the sweep starts over.
        flush_every: Fsync cadence in records.  1 (the default) makes
            every completion durable immediately; larger values trade
            crash-window size for fewer syncs on huge sweeps.
    """

    def __init__(
        self,
        path: os.PathLike,
        resume: bool = False,
        flush_every: int = 1,
    ) -> None:
        if flush_every < 1:
            raise RunnerError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = flush_every
        self.resume = resume
        self._done: Set[str] = set()
        self._handle: Optional[IO[str]] = None
        self._unflushed = 0
        self.skipped_lines = 0
        if resume and self.path.exists():
            self._load()
        elif not resume and self.path.exists():
            self.path.unlink()

    def _load(self) -> None:
        """Read the manifest, tolerating a torn final line (the writer may
        have died mid-append)."""
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    fingerprint = record["fingerprint"]
                except (json.JSONDecodeError, TypeError, KeyError):
                    self.skipped_lines += 1
                    continue
                if isinstance(fingerprint, str):
                    self._done.add(fingerprint)
                else:
                    self.skipped_lines += 1

    # -- queries ------------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._done

    def __len__(self) -> int:
        return len(self._done)

    def is_done(self, job: Job) -> bool:
        """Whether ``job`` completed in a previous (or this) run."""
        return job.fingerprint in self._done

    # -- recording ----------------------------------------------------------

    def record(self, job: Job) -> None:
        """Mark ``job`` finished.  Idempotent: re-recording a fingerprint
        (a cache hit of already-checkpointed work) writes nothing."""
        if job.fingerprint in self._done:
            return
        self._done.add(job.fingerprint)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        json.dump(
            {
                "fingerprint": job.fingerprint,
                "index": job.index,
                "label": job.display_name(),
            },
            self._handle,
        )
        self._handle.write("\n")
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered records to durable storage."""
        if self._handle is None:
            return
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass
        self._unflushed = 0

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
