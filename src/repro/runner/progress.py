"""Run observability: per-job events and whole-run statistics.

Executors emit a :class:`JobEvent` at every state transition (started,
finished, failed, cache-hit) to a :class:`ProgressListener`.  Listeners
are synchronous and run in the coordinating process, so they may touch
shared state freely; a slow listener slows the run, so keep them cheap.

:class:`RunStats` is the aggregate every run returns: how many jobs ran,
how many came from cache, how many failed, wall-clock elapsed, and the
sum of per-job compute seconds (> elapsed when workers overlap — the
ratio is the achieved parallel speedup).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from enum import Enum
from typing import IO, List, Optional, Union


class JobEventKind(str, Enum):
    """The job state transitions executors report.

    A ``str`` subclass (mirroring :class:`repro.sim.metrics.SourceKind`),
    so listeners written against the old free-form strings keep working:
    ``event.kind == "cache-hit"`` is True for :attr:`CACHE_HIT`.
    """

    STARTED = "started"
    FINISHED = "finished"
    FAILED = "failed"
    CACHE_HIT = "cache-hit"
    RETRIED = "retried"


@dataclass(frozen=True)
class JobEvent:
    """One job state transition.

    Attributes:
        kind: The transition; plain strings ("started", "finished",
            "failed", "cache-hit") are coerced to :class:`JobEventKind`
            at construction, unknown ones raise ``ValueError``.
        index: The job's submission index.
        label: The job's display name.
        fingerprint: The job's stable identity (cache key material).
        duration_seconds: Wall-clock compute time ("finished"/"failed"
            only; 0.0 otherwise).
        error: Failure description ("failed" only).
    """

    kind: Union[JobEventKind, str]
    index: int
    label: str
    fingerprint: str
    duration_seconds: float = 0.0
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, JobEventKind):
            object.__setattr__(self, "kind", JobEventKind(self.kind))


class ProgressListener:
    """Callback protocol; subclass and override :meth:`on_event`."""

    def on_event(self, event: JobEvent) -> None:  # pragma: no cover - no-op
        pass


@dataclass
class RunStats:
    """Aggregate telemetry for one executor run.

    Attributes:
        jobs_total: Jobs submitted.
        jobs_run: Jobs actually computed (misses).
        cache_hits: Jobs answered from the result cache.
        failures: Jobs that raised or timed out.
        timeouts: Jobs that exceeded the per-job timeout (a subset of
            ``failures``); each one also left a pool worker occupied until
            its job finished on its own.
        job_seconds: Sum of per-job compute durations (timed-out jobs
            contribute the wall-clock the coordinator actually waited).
        elapsed_seconds: Wall-clock for the whole run.
        workers: Worker count the executor settled on (1 = serial).
        fell_back_to_serial: True when a parallel run degraded to serial
            (pool could not start, e.g. in a sandbox).
        retries: Re-dispatches of transiently failed jobs (see
            :class:`~repro.runner.retry.RetryPolicy`); a job retried twice
            counts twice.
        pool_restarts: Times a crashed process pool was rebuilt mid-run
            and its in-flight jobs re-queued.
        resumed: Jobs skipped because a ``--resume`` checkpoint recorded
            them finished (their values came from the cache; a subset of
            ``cache_hits``).
        cache_corrupt: Corrupt cache entries quarantined during the run
            (each cost a recompute, never an error).
    """

    jobs_total: int = 0
    jobs_run: int = 0
    cache_hits: int = 0
    failures: int = 0
    timeouts: int = 0
    job_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    workers: int = 1
    fell_back_to_serial: bool = False
    retries: int = 0
    pool_restarts: int = 0
    resumed: int = 0
    cache_corrupt: int = 0

    @property
    def speedup(self) -> float:
        """Achieved compute-to-wall ratio (1.0 for a serial run)."""
        if self.elapsed_seconds <= 0:
            return 1.0
        return self.job_seconds / self.elapsed_seconds

    def summary(self) -> str:
        """One-line human-readable digest (the CLI prints this)."""
        parts = [
            f"{self.jobs_total} jobs",
            f"{self.jobs_run} run",
            f"{self.cache_hits} cache hits",
            f"{self.failures} failed",
            f"{self.elapsed_seconds:.2f}s elapsed",
            f"{self.workers} worker{'s' if self.workers != 1 else ''}",
        ]
        if self.timeouts:
            parts.insert(4, f"{self.timeouts} timed out")
        if self.retries:
            parts.append(f"{self.retries} retr{'ies' if self.retries != 1 else 'y'}")
        if self.pool_restarts:
            parts.append(
                f"{self.pool_restarts} pool restart"
                f"{'s' if self.pool_restarts != 1 else ''}"
            )
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.cache_corrupt:
            parts.append(f"{self.cache_corrupt} corrupt cache entries quarantined")
        if self.workers > 1:
            parts.append(f"{self.speedup:.1f}x speedup")
        if self.fell_back_to_serial:
            parts.append("(fell back to serial)")
        return ", ".join(parts)


class CollectingProgress(ProgressListener):
    """Records every event; used by tests and ad-hoc inspection."""

    def __init__(self) -> None:
        self.events: List[JobEvent] = []

    def on_event(self, event: JobEvent) -> None:
        self.events.append(event)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)


class ConsoleProgress(ProgressListener):
    """Prints a progress line every ``every`` completions.

    Args:
        total: Expected job count (for the ``done/total`` readout).
        every: Print cadence in completions (1 = every job).
        stream: Output stream; defaults to stderr so stdout stays
            machine-parseable.
    """

    def __init__(
        self, total: int, every: int = 10, stream: Optional[IO[str]] = None
    ) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.total = total
        self.every = every
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.hits = 0
        self.failed = 0

    def on_event(self, event: JobEvent) -> None:
        if event.kind == "started":
            return
        self.done += 1
        if event.kind == "cache-hit":
            self.hits += 1
        elif event.kind == "failed":
            self.failed += 1
            print(
                f"[runner] FAILED {event.label or event.index}: {event.error}",
                file=self.stream,
            )
        if self.done % self.every == 0 or self.done == self.total:
            print(
                f"[runner] {self.done}/{self.total} done "
                f"({self.hits} cache hits, {self.failed} failed)",
                file=self.stream,
            )
