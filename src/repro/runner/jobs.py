"""The job model: picklable units of work with deterministic identity.

A :class:`Job` binds a top-level callable to a *spec* (the inputs that
define the result) and an optional per-job random stream.  Two properties
make the executor layer trustworthy:

* **Deterministic fingerprint** — :attr:`Job.fingerprint` is a stable
  SHA-256 over the callable's qualified name, a canonical encoding of the
  spec, and the seed material.  The fingerprint is identical across
  processes and Python invocations (no ``id()``, no ``hash()``
  randomisation), so it can key an on-disk result cache.
* **Order-independent randomness** — per-job streams come from
  :meth:`numpy.random.SeedSequence.spawn`, so a job draws the same random
  numbers whether it runs first or last, serially or on eight workers.

Job callables have one fixed signature::

    def fn(spec: Mapping[str, Any], seed: Optional[SeedSequence]) -> Any: ...

and must be defined at module top level (process pools pickle them by
qualified name).  Deterministic jobs simply ignore ``seed``; stochastic
jobs build one or more :class:`numpy.random.Generator` instances from it
(spawning children for independent streams).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import RunnerError

#: The one job-callable signature the executors understand.
JobFn = Callable[[Mapping[str, Any], Optional[np.random.SeedSequence]], Any]


def canonical_encode(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-able structure with a stable encoding.

    Handles the vocabulary job specs are made of: primitives, sequences,
    mappings (key-sorted), enums, dataclasses (encoded as class name +
    fields), plain objects (class name + ``vars()``), numpy
    scalars/arrays, and non-finite floats.  The last resort is ``repr``
    — rejected when it contains a memory address (`` at 0x``), because an
    address-bearing key would silently change every process and defeat
    both caching and fingerprint comparison.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {
            "__enum__": type(obj).__qualname__,
            "value": canonical_encode(obj.value),
        }
    if isinstance(obj, float):
        if math.isnan(obj):
            return {"__float__": "nan"}
        if math.isinf(obj):
            return {"__float__": "inf" if obj > 0 else "-inf"}
        return obj
    if isinstance(obj, np.generic):
        return canonical_encode(obj.item())
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": [canonical_encode(x) for x in obj.tolist()]}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical_encode(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__qualname__, "fields": fields}
    if isinstance(obj, Mapping):
        return {
            "__mapping__": [
                [canonical_encode(k), canonical_encode(obj[k])]
                for k in sorted(obj, key=repr)
            ]
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_encode(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(canonical_encode(x) for x in obj)}
    if isinstance(obj, type):
        return {"__type__": f"{obj.__module__}.{obj.__qualname__}"}
    state = getattr(obj, "__dict__", None)
    if isinstance(state, dict) and state:
        return {
            "__object__": type(obj).__qualname__,
            "state": canonical_encode(state),
        }
    rendered = repr(obj)
    if " at 0x" in rendered:
        raise RunnerError(
            f"cannot canonically encode {type(obj).__qualname__}: its repr "
            "embeds a memory address; give it a value-style repr, make it a "
            "dataclass, or pass primitive spec fields instead"
        )
    return {"__repr__": rendered}


def _seed_material(seed: Optional[np.random.SeedSequence]) -> Any:
    """A stable, JSON-able identity for a SeedSequence (or None)."""
    if seed is None:
        return None
    return {
        "entropy": canonical_encode(seed.entropy),
        "spawn_key": list(seed.spawn_key),
    }


@dataclass(frozen=True)
class Job:
    """One unit of work.

    Attributes:
        fn: Top-level callable ``fn(spec, seed) -> value``.
        spec: The inputs that define the result; everything the fingerprint
            should cover must be in here (or in ``seed``).
        index: Position in the submission order.  Executors return values
            sorted by index, so aggregation is order-stable regardless of
            completion order.
        seed: Per-job random stream (None for deterministic jobs).
        label: Short human-readable tag for progress events and failures.
    """

    fn: JobFn
    spec: Mapping[str, Any]
    index: int = 0
    seed: Optional[np.random.SeedSequence] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise RunnerError("job index must be >= 0")
        fn = self.fn
        if getattr(fn, "__name__", "<lambda>") == "<lambda>":
            raise RunnerError(
                "job callables must be top-level named functions "
                "(lambdas cannot be pickled for process pools)"
            )

    @property
    def fingerprint(self) -> str:
        """Stable SHA-256 identity of (callable, spec, seed).

        Computed once and memoised — specs are treated as immutable
        after job construction.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        payload = {
            "fn": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "spec": canonical_encode(self.spec),
            "seed": _seed_material(self.seed),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    def run(self) -> Any:
        """Execute the job in the current process."""
        return self.fn(self.spec, self.seed)

    def display_name(self) -> str:
        return self.label or f"job[{self.index}]"


def spawn_seeds(
    base_seed: Optional[int], count: int
) -> List[Optional[np.random.SeedSequence]]:
    """``count`` independent child streams of ``SeedSequence(base_seed)``.

    ``base_seed=None`` yields all-``None`` (deterministic jobs).  The
    children depend only on (base_seed, position), never on execution
    order — the key property behind serial == parallel reproducibility.
    """
    if count < 0:
        raise RunnerError("count must be >= 0")
    if base_seed is None:
        return [None] * count
    return list(np.random.SeedSequence(base_seed).spawn(count))


def make_jobs(
    fn: JobFn,
    specs: Sequence[Mapping[str, Any]],
    base_seed: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[Job]:
    """Build an indexed job list over ``specs`` with spawned seeds."""
    if labels is not None and len(labels) != len(specs):
        raise RunnerError("labels must match specs one-to-one")
    seeds = spawn_seeds(base_seed, len(specs))
    return [
        Job(
            fn=fn,
            spec=spec,
            index=i,
            seed=seeds[i],
            label=labels[i] if labels is not None else "",
        )
        for i, spec in enumerate(specs)
    ]
