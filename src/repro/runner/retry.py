"""Retry policy: bounded, deterministic re-execution of transient failures.

A long sweep should not lose an hour of Monte-Carlo work because one
worker hit a transient ``OSError`` or a pool hiccup.  :class:`RetryPolicy`
decides *whether* a failure is worth re-running (by exception type, parsed
from the worker-side ``"TypeName: message"`` rendering — tracebacks do not
survive pickling, the name does) and *how long* to wait before doing so
(exponential backoff, capped, with deterministic seeded jitter).

Determinism matters even here: the jitter is a pure function of
``(seed, token, attempt)`` — no wall clock, no global RNG — so a retried
run sleeps the same schedule every time and tests can assert exact delays.
The policy never touches job *results*; jobs carry their own seeded
streams, so a re-run computes bit-identical values.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import FrozenSet

from repro.errors import RunnerError

#: Exception type names worth a second chance: infrastructure weather, not
#: program logic.  A ``ValueError`` from a job is a bug and retrying it
#: would just fail again (and hide the bug behind latency).
DEFAULT_RETRYABLE_ERRORS: FrozenSet[str] = frozenset(
    {
        "TimeoutError",
        "OSError",
        "IOError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionAbortedError",
        "ConnectionRefusedError",
        "BrokenPipeError",
        "InterruptedError",
        "EOFError",
        "BrokenProcessPool",
    }
)


def classify_error(error_text: str) -> str:
    """The exception type name out of a worker-rendered failure string.

    Workers report failures as ``"TypeName: message"`` (see
    :func:`repro.runner.executor._execute_job`); everything up to the
    first ``": "`` is the type.  Text with no such prefix classifies as
    ``""`` (never retryable).
    """
    head, sep, _ = error_text.partition(":")
    if not sep:
        return ""
    name = head.strip()
    # A type name is a single identifier (possibly dotted); anything with
    # spaces is prose, not a classification.
    if not name or any(ch.isspace() for ch in name):
        return ""
    return name


@dataclass(frozen=True)
class RetryPolicy:
    """When and how to re-run failed jobs.

    Attributes:
        max_attempts: Total execution attempts per job (1 = never retry).
        base_delay_seconds: Backoff before the first retry.
        backoff_factor: Multiplier per subsequent retry (>= 1).
        max_delay_seconds: Ceiling on any single backoff.
        jitter_fraction: How much of the delay the jitter may shave off:
            the actual sleep is uniform in
            ``[(1 - jitter_fraction) * delay, delay]``.  Jitter shortens,
            never lengthens, so ``max_delay_seconds`` stays a true cap.
        retryable_errors: Exception type names eligible for retry.
        seed: Root of the deterministic jitter stream.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.1
    backoff_factor: float = 2.0
    max_delay_seconds: float = 30.0
    jitter_fraction: float = 0.5
    retryable_errors: FrozenSet[str] = field(default=DEFAULT_RETRYABLE_ERRORS)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RunnerError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0:
            raise RunnerError("base_delay_seconds must be >= 0")
        if self.backoff_factor < 1:
            raise RunnerError("backoff_factor must be >= 1")
        if self.max_delay_seconds < 0:
            raise RunnerError("max_delay_seconds must be >= 0")
        if not 0 <= self.jitter_fraction <= 1:
            raise RunnerError("jitter_fraction must be in [0, 1]")
        object.__setattr__(
            self, "retryable_errors", frozenset(self.retryable_errors)
        )

    def is_retryable(self, error_text: str) -> bool:
        """Whether a worker-rendered failure is worth re-running."""
        return classify_error(error_text) in self.retryable_errors

    def _unit(self, token: str, attempt: int) -> float:
        """Deterministic uniform in ``[0, 1)`` from (seed, token, attempt)."""
        digest = hashlib.sha256(
            f"{self.seed}:{token}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def delay_for(self, attempt: int, token: str = "") -> float:
        """Seconds to back off before retry number ``attempt`` (1-based).

        ``token`` (conventionally the job fingerprint) decorrelates jitter
        across jobs so a burst of simultaneous transient failures does not
        retry in lockstep.
        """
        if attempt < 1:
            raise RunnerError("attempt must be >= 1")
        raw = min(
            self.base_delay_seconds * self.backoff_factor ** (attempt - 1),
            self.max_delay_seconds,
        )
        scale = 1.0 - self.jitter_fraction * self._unit(token, attempt)
        return raw * scale
