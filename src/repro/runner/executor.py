"""Executors: run job lists serially or on a process pool.

Both executors share one contract:

* results come back **in submission order** (by :attr:`Job.index`), so
  callers aggregate identically regardless of completion order;
* the optional :class:`~repro.runner.cache.ResultCache` is consulted in
  the coordinating process before any dispatch, so cache hits never pay
  worker-transfer costs;
* every transition is reported to the optional
  :class:`~repro.runner.progress.ProgressListener`, and the returned
  :class:`RunReport` carries a full :class:`RunStats`.

:class:`ParallelExecutor` dispatches misses to a
:class:`concurrent.futures.ProcessPoolExecutor` in bounded windows
(``chunk_size`` futures in flight per worker) with a per-job timeout,
and degrades to in-process execution when the pool cannot start or
breaks mid-run — sandboxes without ``fork``/semaphores get a slower run,
not a crash.  Because jobs carry their own
:class:`numpy.random.SeedSequence` streams, a fallback (or any worker
count) changes nothing about the numbers produced.
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import RunnerError
from repro.runner.cache import ResultCache
from repro.runner.jobs import Job
from repro.runner.progress import JobEvent, ProgressListener, RunStats

DEFAULT_CHUNK_SIZE = 8


@dataclass(frozen=True)
class JobFailure:
    """One failed job.

    Attributes:
        index: The job's submission index.
        label: The job's display name.
        error: Exception message (with the exception type's name).
        traceback_text: Formatted worker-side traceback when available.
    """

    index: int
    label: str
    error: str
    traceback_text: str = ""


@dataclass(frozen=True)
class RunReport:
    """The outcome of one executor run.

    Attributes:
        values: Per-job results in submission order; failed jobs hold
            ``None`` (only observable with ``strict=False``).
        stats: Aggregate run telemetry.
        failures: The failed jobs, submission order.
    """

    values: Sequence[Any]
    stats: RunStats
    failures: Sequence[JobFailure] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.failures


def _execute_job(job: Job) -> Tuple[int, bool, Any, str, float]:
    """Worker-side wrapper: never raises, always reports duration.

    Returns ``(index, ok, value_or_error, traceback_text, seconds)``.
    Exceptions are rendered to strings here because traceback objects do
    not survive pickling back to the coordinator.
    """
    start = time.perf_counter()
    try:
        value = job.run()
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        elapsed = time.perf_counter() - start
        message = f"{type(exc).__name__}: {exc}"
        return job.index, False, message, traceback.format_exc(), elapsed
    return job.index, True, value, "", time.perf_counter() - start


class BaseExecutor:
    """Shared cache/progress/aggregation plumbing; subclasses dispatch.

    Args:
        cache: Optional on-disk result cache.
        progress: Optional event listener.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressListener] = None,
    ) -> None:
        self.cache = cache
        self.progress = progress
        #: The most recent :class:`RunReport`; lets callers that hand an
        #: executor to a library function still read the run telemetry.
        self.last_report: Optional[RunReport] = None

    # -- subclass hook --------------------------------------------------------

    def _dispatch(
        self, jobs: Sequence[Job], stats: RunStats
    ) -> List[Tuple[int, bool, Any, str, float]]:
        """Compute every job in ``jobs``; any order, all of them."""
        raise NotImplementedError

    # -- public API -----------------------------------------------------------

    def run(self, jobs: Sequence[Job], strict: bool = True) -> RunReport:
        """Run ``jobs``; values return in submission order.

        Args:
            jobs: The work list; indices must be unique.
            strict: Raise :class:`RunnerError` on the first failure
                (after all jobs finish) instead of returning ``None``
                holes in :attr:`RunReport.values`.
        """
        jobs = list(jobs)
        indices = [job.index for job in jobs]
        if len(set(indices)) != len(indices):
            raise RunnerError("job indices must be unique")
        stats = RunStats(jobs_total=len(jobs))
        started = time.perf_counter()
        values: Dict[int, Any] = {}
        failures: List[JobFailure] = []

        misses: List[Job] = []
        for job in jobs:
            if self.cache is not None:
                hit, value = self.cache.get(job)
                if hit:
                    values[job.index] = value
                    stats.cache_hits += 1
                    self._emit(JobEvent("cache-hit", job.index,
                                        job.display_name(), job.fingerprint))
                    continue
            misses.append(job)

        if misses:
            by_index = {job.index: job for job in misses}
            for index, ok, payload, tb_text, seconds in self._dispatch(
                misses, stats
            ):
                job = by_index[index]
                stats.jobs_run += 1
                stats.job_seconds += seconds
                if ok:
                    values[index] = payload
                    if self.cache is not None:
                        self.cache.put(job, payload)
                    self._emit(JobEvent("finished", index, job.display_name(),
                                        job.fingerprint, seconds))
                else:
                    values[index] = None
                    stats.failures += 1
                    failures.append(
                        JobFailure(index, job.display_name(), payload, tb_text)
                    )
                    self._emit(JobEvent("failed", index, job.display_name(),
                                        job.fingerprint, seconds, error=payload))

        stats.elapsed_seconds = time.perf_counter() - started
        failures.sort(key=lambda f: f.index)
        report = RunReport(
            values=[values[i] for i in sorted(values)],
            stats=stats,
            failures=tuple(failures),
        )
        self.last_report = report
        if strict and failures:
            first = failures[0]
            detail = f"\n{first.traceback_text}" if first.traceback_text else ""
            raise RunnerError(
                f"{len(failures)} of {len(jobs)} jobs failed; first: "
                f"{first.label}: {first.error}{detail}"
            )
        return report

    def _emit(self, event: JobEvent) -> None:
        if self.progress is not None:
            self.progress.on_event(event)


class SerialExecutor(BaseExecutor):
    """In-process, in-order execution — the reference semantics."""

    def _dispatch(
        self, jobs: Sequence[Job], stats: RunStats
    ) -> List[Tuple[int, bool, Any, str, float]]:
        results = []
        for job in jobs:
            self._emit(JobEvent("started", job.index, job.display_name(),
                                job.fingerprint))
            results.append(_execute_job(job))
        return results


class ParallelExecutor(BaseExecutor):
    """Process-pool execution with windowed dispatch and serial fallback.

    Args:
        max_workers: Pool size (None lets the pool pick; values are
            clamped to >= 1).
        cache: Optional on-disk result cache.
        progress: Optional event listener.
        timeout_seconds: Per-job wall-clock limit; an overrun marks the
            job failed (the worker is abandoned, not killed — pools
            cannot interrupt a running task).
        chunk_size: Futures kept in flight per worker; bounds coordinator
            memory on very large job lists.
        fallback_serial: Degrade to in-process execution when the pool
            cannot start or breaks; ``False`` re-raises instead.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressListener] = None,
        timeout_seconds: Optional[float] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        fallback_serial: bool = True,
    ) -> None:
        super().__init__(cache=cache, progress=progress)
        if max_workers is not None and max_workers < 1:
            raise RunnerError("max_workers must be >= 1")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise RunnerError("timeout_seconds must be positive")
        if chunk_size < 1:
            raise RunnerError("chunk_size must be >= 1")
        self.max_workers = max_workers
        self.timeout_seconds = timeout_seconds
        self.chunk_size = chunk_size
        self.fallback_serial = fallback_serial

    def _dispatch(
        self, jobs: Sequence[Job], stats: RunStats
    ) -> List[Tuple[int, bool, Any, str, float]]:
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers
            )
        except (OSError, ValueError, NotImplementedError) as exc:
            return self._fallback(jobs, stats, exc)
        stats.workers = getattr(pool, "_max_workers", self.max_workers or 1)
        results: List[Tuple[int, bool, Any, str, float]] = []
        pending: List[Job] = list(jobs)
        abandoned = 0
        try:
            with pool:
                in_flight: "List[Tuple[concurrent.futures.Future, Job]]" = []
                cursor = 0
                while cursor < len(pending) or in_flight:
                    # A timed-out job cannot be killed (pools cannot
                    # interrupt a running task), so its worker stays busy
                    # until the job finishes on its own: shrink the
                    # dispatch window as if the pool had lost that worker.
                    window = self.chunk_size * max(stats.workers - abandoned, 1)
                    while cursor < len(pending) and len(in_flight) < window:
                        job = pending[cursor]
                        cursor += 1
                        self._emit(JobEvent("started", job.index,
                                            job.display_name(), job.fingerprint))
                        in_flight.append((pool.submit(_execute_job, job), job))
                    future, job = in_flight.pop(0)
                    wait_started = time.perf_counter()
                    try:
                        results.append(future.result(timeout=self.timeout_seconds))
                    except concurrent.futures.TimeoutError:
                        waited = time.perf_counter() - wait_started
                        future.cancel()
                        abandoned += 1
                        stats.timeouts += 1
                        results.append((
                            job.index, False,
                            f"TimeoutError: job exceeded "
                            f"{self.timeout_seconds:.1f}s "
                            f"(waited {waited:.1f}s; worker abandoned)",
                            "", waited,
                        ))
        except BrokenProcessPool as exc:
            done = {r[0] for r in results}
            remaining = [job for job in jobs if job.index not in done]
            return results + self._fallback(remaining, stats, exc)
        return results

    def _fallback(
        self, jobs: Sequence[Job], stats: RunStats, cause: BaseException
    ) -> List[Tuple[int, bool, Any, str, float]]:
        if not self.fallback_serial:
            raise RunnerError(f"process pool unavailable: {cause}") from cause
        stats.fell_back_to_serial = True
        stats.workers = 1
        results = []
        for job in jobs:
            self._emit(JobEvent("started", job.index, job.display_name(),
                                job.fingerprint))
            results.append(_execute_job(job))
        return results


def make_executor(
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    timeout_seconds: Optional[float] = None,
) -> BaseExecutor:
    """The conventional ``--jobs N`` mapping: 1 → serial, N → pool of N."""
    if jobs < 1:
        raise RunnerError("jobs must be >= 1")
    if jobs == 1:
        return SerialExecutor(cache=cache, progress=progress)
    return ParallelExecutor(
        max_workers=jobs,
        cache=cache,
        progress=progress,
        timeout_seconds=timeout_seconds,
    )
