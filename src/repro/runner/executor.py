"""Executors: run job lists serially or on a process pool.

Both executors share one contract:

* results come back **in submission order** (by :attr:`Job.index`), so
  callers aggregate identically regardless of completion order;
* the optional :class:`~repro.runner.cache.ResultCache` is consulted in
  the coordinating process before any dispatch, so cache hits never pay
  worker-transfer costs;
* every transition is reported to the optional
  :class:`~repro.runner.progress.ProgressListener`, and the returned
  :class:`RunReport` carries a full :class:`RunStats`.

:class:`ParallelExecutor` dispatches misses to a
:class:`concurrent.futures.ProcessPoolExecutor` in bounded windows
(``chunk_size`` futures in flight per worker) with a per-job timeout,
and degrades to in-process execution when the pool cannot start or
breaks mid-run — sandboxes without ``fork``/semaphores get a slower run,
not a crash.  Because jobs carry their own
:class:`numpy.random.SeedSequence` streams, a fallback (or any worker
count) changes nothing about the numbers produced.

**Observability.**  When an ambient :mod:`repro.obs` session is active at
executor construction, the whole run is wrapped in a ``runner.run`` span
and every job in a ``job`` span.  Every traced job — in a pool worker or
in-process — runs under a private per-job session whose finished span
records and metrics snapshot travel back with the result; the coordinator
re-parents the spans under ``runner.run`` and merges metric snapshots
**in job submission order**.  Per-job subtotals combined in a fixed order
are what make the merged registry bit-identical at every worker count
(including serial).  With no session active (the default) every hook is
one ``is None`` check.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RetryExhaustedError, RunnerError
from repro.obs import ObsSession, activate, current_metrics, current_tracer, deactivate
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.jobs import Job
from repro.runner.progress import JobEvent, JobEventKind, ProgressListener, RunStats
from repro.runner.retry import RetryPolicy

DEFAULT_CHUNK_SIZE = 8

#: ``(index, ok, value_or_error, traceback_text, seconds, obs_payload)``
JobResult = Tuple[int, bool, Any, str, float, Optional[Dict[str, Any]]]


@dataclass(frozen=True)
class JobFailure:
    """One failed job.

    Attributes:
        index: The job's submission index.
        label: The job's display name.
        error: Exception message (with the exception type's name).
        traceback_text: Formatted worker-side traceback when available.
    """

    index: int
    label: str
    error: str
    traceback_text: str = ""


@dataclass(frozen=True)
class RunReport:
    """The outcome of one executor run.

    Attributes:
        values: Per-job results in submission order; failed jobs hold
            ``None`` (only observable with ``strict=False``).
        stats: Aggregate run telemetry.
        failures: The failed jobs, submission order.
    """

    values: Sequence[Any]
    stats: RunStats
    failures: Sequence[JobFailure] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.failures


def _pristine(job: Job) -> Job:
    """A copy of ``job`` with an unspawned seed.

    A job that spawned child streams in-process and *then* failed would,
    if retried with the same :class:`~numpy.random.SeedSequence` object,
    spawn *different* children (spawning advances a counter).  Re-queues
    therefore rebuild the seed from its entropy + spawn key, so a retry
    draws exactly what the first attempt drew.
    """
    if job.seed is None or job.seed.n_children_spawned == 0:
        return job
    fresh = np.random.SeedSequence(
        entropy=job.seed.entropy, spawn_key=job.seed.spawn_key
    )
    return dataclasses.replace(job, seed=fresh)


def _execute_job(job: Job, obs_mode: str = "off") -> JobResult:
    """Worker-side wrapper: never raises, always reports duration.

    Returns ``(index, ok, value_or_error, traceback_text, seconds,
    obs_payload)``.  Exceptions are rendered to strings here because
    traceback objects do not survive pickling back to the coordinator.

    ``obs_mode`` is ``"off"`` (no instrumentation at all — the default
    path) or ``"on"``.  A traced job always runs under a *private*
    :class:`ObsSession` — in a pool worker (where a fork-started child may
    have inherited the coordinator's ambient session, which we drop) and
    in-process (serial execution, pool fallback) alike — with the job's
    spans and metrics snapshot shipped back in the payload for the
    coordinator to ingest and merge in submission order.  One mechanism
    for every worker count is what makes the merged metrics bit-identical
    between serial and parallel runs: per-job subtotals always combine in
    the same grouping and order, so float addition cannot diverge.
    """
    own_session = None
    span = None
    prior = None
    if obs_mode != "off":
        prior = deactivate()
        own_session = activate(ObsSession())
        span = own_session.tracer.start_span(
            "job",
            "runner",
            label=job.display_name(),
            index=job.index,
            fingerprint=job.fingerprint,
        )
    start = time.perf_counter()
    try:
        value = job.run()
        ok, payload, tb_text = True, value, ""
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        ok = False
        payload = f"{type(exc).__name__}: {exc}"
        tb_text = traceback.format_exc()
        if span is not None:
            span.event("job-error", message=payload)
    elapsed = time.perf_counter() - start
    obs_payload = None
    if own_session is not None:
        span.set("ok", ok)
        own_session.tracer.end_span(span)
        deactivate()
        if prior is not None:  # in-process: restore the coordinator session
            activate(prior)
        obs_payload = {
            "spans": own_session.tracer.records,
            "metrics": own_session.metrics.snapshot(),
        }
    return job.index, ok, payload, tb_text, elapsed, obs_payload


class BaseExecutor:
    """Shared cache/progress/aggregation plumbing; subclasses dispatch.

    Args:
        cache: Optional on-disk result cache.
        progress: Optional event listener.
        retry: Optional :class:`~repro.runner.retry.RetryPolicy`; failed
            jobs whose error classifies as transient are re-dispatched
            (with deterministic backoff) up to the policy's attempt budget
            before counting as failures.
        checkpoint: Optional :class:`~repro.runner.checkpoint.SweepCheckpoint`
            recording every completion; a checkpoint opened with
            ``resume=True`` serves already-recorded jobs from the cache
            without re-dispatching them.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressListener] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
    ) -> None:
        self.cache = cache
        self.progress = progress
        self.retry = retry
        self.checkpoint = checkpoint
        # Ambient observability, captured at construction (None = off).
        self._tracer = current_tracer()
        self._metrics = current_metrics()
        #: The most recent :class:`RunReport`; lets callers that hand an
        #: executor to a library function still read the run telemetry.
        self.last_report: Optional[RunReport] = None

    # -- subclass hook --------------------------------------------------------

    def _dispatch(self, jobs: Sequence[Job], stats: RunStats) -> List[JobResult]:
        """Compute every job in ``jobs``; any order, all of them."""
        raise NotImplementedError

    # -- public API -----------------------------------------------------------

    def run(self, jobs: Sequence[Job], strict: bool = True) -> RunReport:
        """Run ``jobs``; values return in submission order.

        Args:
            jobs: The work list; indices must be unique.
            strict: Raise :class:`RunnerError` on the first failure
                (after all jobs finish) instead of returning ``None``
                holes in :attr:`RunReport.values`.
        """
        jobs = list(jobs)
        if self._tracer is None:
            return self._run(jobs, strict)
        with self._tracer.span("runner.run", "runner", jobs=len(jobs)) as span:
            report = self._run(jobs, strict)
            span.set("cache_hits", report.stats.cache_hits)
            span.set("failures", report.stats.failures)
            span.set("workers", report.stats.workers)
            return report

    def _run(self, jobs: List[Job], strict: bool) -> RunReport:
        indices = [job.index for job in jobs]
        if len(set(indices)) != len(indices):
            raise RunnerError("job indices must be unique")
        stats = RunStats(jobs_total=len(jobs))
        started = time.perf_counter()
        values: Dict[int, Any] = {}
        failures: List[JobFailure] = []
        obs_by_index: Dict[int, Dict[str, Any]] = {}
        exhausted: set = set()
        corrupt_before = self.cache.corrupt if self.cache is not None else 0

        misses: List[Job] = []
        for job in jobs:
            resumed = (
                self.checkpoint is not None and self.checkpoint.is_done(job)
            )
            if self.cache is not None:
                hit, value = self.cache.get(job)
                if hit:
                    values[job.index] = value
                    stats.cache_hits += 1
                    if resumed:
                        stats.resumed += 1
                    if self.checkpoint is not None:
                        self.checkpoint.record(job)
                    self._emit(JobEvent(JobEventKind.CACHE_HIT, job.index,
                                        job.display_name(), job.fingerprint))
                    continue
            # A checkpointed job whose cached value is gone (or that never
            # had a cache) must re-run; the recompute is bit-identical, so
            # resume equivalence holds either way.
            misses.append(job)

        attempts = {job.index: 1 for job in misses}
        pending = misses
        while pending:
            by_index = {job.index: job for job in pending}
            retry_next: List[Job] = []
            for index, ok, payload, tb_text, seconds, obs_payload in (
                self._dispatch(pending, stats)
            ):
                job = by_index[index]
                stats.jobs_run += 1
                stats.job_seconds += seconds
                if obs_payload is not None:
                    obs_by_index[index] = obs_payload
                if ok:
                    values[index] = payload
                    if self.cache is not None:
                        self.cache.put(job, payload)
                    if self.checkpoint is not None:
                        self.checkpoint.record(job)
                    self._emit(JobEvent(JobEventKind.FINISHED, index,
                                        job.display_name(),
                                        job.fingerprint, seconds))
                    continue
                attempt = attempts[index]
                if (
                    self.retry is not None
                    and attempt < self.retry.max_attempts
                    and self.retry.is_retryable(payload)
                ):
                    attempts[index] = attempt + 1
                    stats.retries += 1
                    self._emit(JobEvent(JobEventKind.RETRIED, index,
                                        job.display_name(),
                                        job.fingerprint, seconds,
                                        error=payload))
                    delay = self.retry.delay_for(attempt, token=job.fingerprint)
                    if delay > 0:
                        time.sleep(delay)
                    retry_next.append(_pristine(job))
                    continue
                if (
                    self.retry is not None
                    and attempt >= self.retry.max_attempts
                    and self.retry.is_retryable(payload)
                ):
                    exhausted.add(index)
                    payload = (
                        f"{payload} (retries exhausted: "
                        f"{attempt} attempts)"
                    )
                values[index] = None
                stats.failures += 1
                failures.append(
                    JobFailure(index, job.display_name(), payload, tb_text)
                )
                self._emit(JobEvent(JobEventKind.FAILED, index,
                                    job.display_name(),
                                    job.fingerprint, seconds, error=payload))
            pending = retry_next

        if self.checkpoint is not None:
            self.checkpoint.flush()
        if self.cache is not None:
            stats.cache_corrupt = self.cache.corrupt - corrupt_before
        self._absorb_obs(obs_by_index, stats)
        stats.elapsed_seconds = time.perf_counter() - started
        failures.sort(key=lambda f: f.index)
        report = RunReport(
            values=[values[i] for i in sorted(values)],
            stats=stats,
            failures=tuple(failures),
        )
        self.last_report = report
        if strict and failures:
            first = failures[0]
            detail = f"\n{first.traceback_text}" if first.traceback_text else ""
            message = (
                f"{len(failures)} of {len(jobs)} jobs failed; first: "
                f"{first.label}: {first.error}{detail}"
            )
            if first.index in exhausted:
                raise RetryExhaustedError(message)
            raise RunnerError(message)
        return report

    def _absorb_obs(
        self, obs_by_index: Dict[int, Dict[str, Any]], stats: RunStats
    ) -> None:
        """Adopt worker span trees and metric snapshots into the ambient
        session.  Iteration is sorted by submission index — the order that
        makes gauge merges (and therefore whole-registry state) identical
        at every worker count."""
        if self._tracer is not None:
            parent = self._tracer.current()
            parent_id = parent.span_id if parent is not None else None
            for index in sorted(obs_by_index):
                self._tracer.ingest(
                    obs_by_index[index]["spans"], parent_id=parent_id
                )
        if self._metrics is not None:
            for index in sorted(obs_by_index):
                self._metrics.merge(obs_by_index[index]["metrics"])
            self._metrics.counter("runner.jobs").inc(stats.jobs_total)
            self._metrics.counter("runner.cache_hits").inc(stats.cache_hits)
            self._metrics.counter("runner.cache_misses").inc(stats.jobs_run)
            self._metrics.counter("runner.failures").inc(stats.failures)
            self._metrics.histogram("runner.job_seconds").observe(
                stats.job_seconds
            )

    def _obs_mode(self) -> str:
        """Which ``_execute_job`` instrumentation mode applies."""
        if self._tracer is None and self._metrics is None:
            return "off"
        return "on"

    def _emit(self, event: JobEvent) -> None:
        if self.progress is not None:
            self.progress.on_event(event)


class SerialExecutor(BaseExecutor):
    """In-process, in-order execution — the reference semantics."""

    def _dispatch(self, jobs: Sequence[Job], stats: RunStats) -> List[JobResult]:
        mode = self._obs_mode()
        results = []
        for job in jobs:
            self._emit(JobEvent(JobEventKind.STARTED, job.index,
                                job.display_name(), job.fingerprint))
            results.append(_execute_job(job, mode))
        return results


class ParallelExecutor(BaseExecutor):
    """Process-pool execution with windowed dispatch and serial fallback.

    Args:
        max_workers: Pool size (None lets the pool pick; values are
            clamped to >= 1).
        cache: Optional on-disk result cache.
        progress: Optional event listener.
        timeout_seconds: Per-job wall-clock limit; an overrun marks the
            job failed (the worker is abandoned, not killed — pools
            cannot interrupt a running task).
        chunk_size: Futures kept in flight per worker; bounds coordinator
            memory on very large job lists.
        fallback_serial: Degrade to in-process execution when the pool
            cannot start or breaks; ``False`` re-raises instead.
        max_pool_restarts: Times a crashed pool (a worker killed by the
            OOM killer, a segfault, chaos testing) is rebuilt — with the
            dead round's unfinished jobs re-queued — before giving up and
            degrading to serial.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressListener] = None,
        timeout_seconds: Optional[float] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        fallback_serial: bool = True,
        max_pool_restarts: int = 2,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
    ) -> None:
        super().__init__(
            cache=cache, progress=progress, retry=retry, checkpoint=checkpoint
        )
        if max_workers is not None and max_workers < 1:
            raise RunnerError("max_workers must be >= 1")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise RunnerError("timeout_seconds must be positive")
        if chunk_size < 1:
            raise RunnerError("chunk_size must be >= 1")
        if max_pool_restarts < 0:
            raise RunnerError("max_pool_restarts must be >= 0")
        self.max_workers = max_workers
        self.timeout_seconds = timeout_seconds
        self.chunk_size = chunk_size
        self.fallback_serial = fallback_serial
        self.max_pool_restarts = max_pool_restarts

    def _dispatch(self, jobs: Sequence[Job], stats: RunStats) -> List[JobResult]:
        results: List[JobResult] = []
        pending: List[Job] = list(jobs)
        restarts = 0
        while pending:
            try:
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.max_workers
                )
            except (OSError, ValueError, NotImplementedError) as exc:
                return results + self._fallback(pending, stats, exc)
            try:
                self._pool_round(pool, pending, stats, results)
                pending = []
            except BrokenProcessPool as exc:
                # A worker died hard (OOM kill, segfault, chaos): every
                # job of this round without a result was in flight on the
                # dead pool.  Re-queue exactly those and start a fresh
                # pool; their seeded streams make the re-run identical to
                # what the dead worker would have produced.
                done = {r[0] for r in results}
                pending = [job for job in pending if job.index not in done]
                if restarts >= self.max_pool_restarts:
                    return results + self._fallback(pending, stats, exc)
                restarts += 1
                stats.pool_restarts += 1
                if self._tracer is not None:
                    self._tracer.event(
                        "pool-restart", restart=restarts, requeued=len(pending)
                    )
                if self._metrics is not None:
                    self._metrics.counter("runner.pool_restarts").inc()
        return results

    def _pool_round(
        self,
        pool: "concurrent.futures.ProcessPoolExecutor",
        jobs: Sequence[Job],
        stats: RunStats,
        results: List[JobResult],
    ) -> None:
        """Run ``jobs`` on ``pool``, appending to ``results`` as they
        finish (so a :class:`BrokenProcessPool` abort keeps everything
        completed before the crash)."""
        stats.workers = getattr(pool, "_max_workers", self.max_workers or 1)
        mode = self._obs_mode()
        pending: List[Job] = list(jobs)
        abandoned = 0
        with pool:
            in_flight: "List[Tuple[concurrent.futures.Future, Job]]" = []
            cursor = 0
            while cursor < len(pending) or in_flight:
                # A timed-out job cannot be killed (pools cannot
                # interrupt a running task), so its worker stays busy
                # until the job finishes on its own: shrink the
                # dispatch window as if the pool had lost that worker.
                window = self.chunk_size * max(stats.workers - abandoned, 1)
                while cursor < len(pending) and len(in_flight) < window:
                    job = pending[cursor]
                    cursor += 1
                    self._emit(JobEvent(JobEventKind.STARTED, job.index,
                                        job.display_name(), job.fingerprint))
                    in_flight.append(
                        (pool.submit(_execute_job, job, mode), job)
                    )
                future, job = in_flight.pop(0)
                wait_started = time.perf_counter()
                try:
                    results.append(future.result(timeout=self.timeout_seconds))
                except concurrent.futures.TimeoutError:
                    waited = time.perf_counter() - wait_started
                    future.cancel()
                    abandoned += 1
                    stats.timeouts += 1
                    results.append((
                        job.index, False,
                        f"TimeoutError: job exceeded "
                        f"{self.timeout_seconds:.1f}s "
                        f"(waited {waited:.1f}s; worker abandoned)",
                        "", waited, None,
                    ))

    def _fallback(
        self, jobs: Sequence[Job], stats: RunStats, cause: BaseException
    ) -> List[JobResult]:
        if not self.fallback_serial:
            raise RunnerError(f"process pool unavailable: {cause}") from cause
        stats.fell_back_to_serial = True
        stats.workers = 1
        mode = self._obs_mode()
        results = []
        for job in jobs:
            self._emit(JobEvent(JobEventKind.STARTED, job.index,
                                job.display_name(), job.fingerprint))
            results.append(_execute_job(job, mode))
        return results


def make_executor(
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    timeout_seconds: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> BaseExecutor:
    """The conventional ``--jobs N`` mapping: 1 → serial, N → pool of N."""
    if jobs < 1:
        raise RunnerError("jobs must be >= 1")
    if jobs == 1:
        return SerialExecutor(
            cache=cache, progress=progress, retry=retry, checkpoint=checkpoint
        )
    return ParallelExecutor(
        max_workers=jobs,
        cache=cache,
        progress=progress,
        timeout_seconds=timeout_seconds,
        retry=retry,
        checkpoint=checkpoint,
    )
