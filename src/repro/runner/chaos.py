"""Chaos harness: certify the runner's self-healing end to end.

Unit tests exercise retry, checkpointing and pool recovery one at a time;
this module turns them all on at once and *breaks things on purpose* while
a real fault-injected availability sweep runs:

* **worker kills** — the first ``kills`` year-cells hard-exit their pool
  worker (``os._exit``) the first time they run, forcing a
  :class:`BrokenProcessPool` and a pool restart with re-queued jobs;
* **flaky failures** — the next ``flaky`` cells raise a transient
  ``OSError`` once, exercising the :class:`~repro.runner.retry.RetryPolicy`;
* **cache corruption** — a progress listener overwrites the first
  ``corrupt`` finished cache entries with garbage, so the follow-up resume
  pass must quarantine and recompute them.

The certificate is bit-identical results along three independent paths:
a serial fault-free-harness baseline, the chaos run, and a checkpoint
resume of the chaos run.  Jobs carry their own seeded streams, so every
recovery mechanism — re-queue, retry, recompute — must reproduce exactly
what an undisturbed worker would have produced; any divergence fails the
report.

Chaos cells never kill the *coordinating* process: a sandbox without
working process pools degrades the executor to in-process execution, and
an unguarded ``os._exit`` there would take down the harness itself.  Each
kill is also one-shot (marker file), so re-queued cells complete.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.analysis.availability import _simulate_year
from repro.core.configurations import BackupConfiguration
from repro.core.performability import (
    DEFAULT_NUM_SERVERS,
    make_datacenter,
    plan_power_budget_watts,
)
from repro.errors import RunnerError, TechniqueError
from repro.faults import FaultPlan
from repro.power.ups import DEFAULT_RECHARGE_SECONDS
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.executor import ParallelExecutor, SerialExecutor
from repro.runner.jobs import make_jobs
from repro.runner.progress import JobEvent, JobEventKind, ProgressListener, RunStats
from repro.runner.retry import RetryPolicy
from repro.servers.server import PAPER_SERVER, ServerSpec
from repro.techniques.base import OutageTechnique, TechniqueContext
from repro.workloads.base import WorkloadSpec


def _chaos_cell(spec, seed):
    """One availability year-cell wrapped in scheduled sabotage.

    ``kill_marker``/``flaky_marker`` make each disruption one-shot: the
    first execution leaves the marker and dies, every later one computes
    normally.  The kill additionally refuses to fire in the coordinating
    process (see module docstring).
    """
    kill_marker = spec.get("kill_marker")
    if kill_marker:
        path = Path(kill_marker)
        if not path.exists() and os.getpid() != spec["coordinator_pid"]:
            path.write_text("killed")
            os._exit(17)
    flaky_marker = spec.get("flaky_marker")
    if flaky_marker:
        path = Path(flaky_marker)
        if not path.exists():
            path.write_text("failed once")
            raise OSError("chaos: injected transient worker failure")
    return _simulate_year(spec["year"], seed)


class _CacheCorruptor(ProgressListener):
    """Overwrites the first ``limit`` finished cache entries with garbage
    *while the sweep runs* — the resume pass must then quarantine them."""

    def __init__(self, cache: ResultCache, limit: int) -> None:
        self.cache = cache
        self.limit = limit
        self.corrupted = 0

    def on_event(self, event: JobEvent) -> None:
        if event.kind is not JobEventKind.FINISHED or self.corrupted >= self.limit:
            return
        path = self.cache.entry_path(event.fingerprint)
        if path.exists():
            path.write_bytes(b"\x00chaos: deliberately corrupted entry")
            self.corrupted += 1


@dataclass(frozen=True)
class ChaosReport:
    """What the chaos run did and whether every recovery path held.

    Attributes:
        years: Year-cells in the sweep.
        kills: Worker kills planned (one-shot each).
        flaky: Transient failures planned (one-shot each).
        corrupted: Cache entries deliberately corrupted mid-run.
        chaos_stats: Telemetry of the disrupted parallel run.
        resume_stats: Telemetry of the checkpoint-resume pass.
        chaos_matches: Disrupted run produced the baseline values.
        resume_matches: Resume pass produced the baseline values.
    """

    years: int
    kills: int
    flaky: int
    corrupted: int
    chaos_stats: RunStats
    resume_stats: RunStats
    chaos_matches: bool
    resume_matches: bool

    @property
    def ok(self) -> bool:
        return self.chaos_matches and self.resume_matches

    def summary(self) -> str:
        lines = [
            f"chaos sweep: {self.years} years, {self.kills} worker kills, "
            f"{self.flaky} transient failures, {self.corrupted} cache "
            f"entries corrupted",
            f"  chaos run:  {self.chaos_stats.summary()}",
            f"  resume run: {self.resume_stats.summary()}",
            f"  chaos == baseline:  {'yes' if self.chaos_matches else 'NO'}",
            f"  resume == baseline: {'yes' if self.resume_matches else 'NO'}",
        ]
        return "\n".join(lines)


def run_chaos(
    workload: WorkloadSpec,
    configuration: BackupConfiguration,
    technique: OutageTechnique,
    years: int = 8,
    jobs: int = 2,
    kills: int = 1,
    flaky: int = 1,
    corrupt: int = 1,
    faults: Optional[FaultPlan] = None,
    seed: int = 0,
    workdir: Optional[os.PathLike] = None,
    num_servers: int = DEFAULT_NUM_SERVERS,
    server: ServerSpec = PAPER_SERVER,
) -> ChaosReport:
    """Run the three-pass chaos certification (module docstring).

    Args:
        workload / configuration / technique: The pairing under study.
        years: Monte-Carlo sample size (also the job count).
        jobs: Worker processes for the disrupted run.
        kills / flaky / corrupt: Disruption budget; ``kills + flaky``
            must not exceed ``years``.
        faults: Optional domain fault plan injected into every year —
            chaos in the simulated world on top of chaos in the harness.
        seed: Root seed shared by all three passes.
        workdir: Scratch directory for cache/checkpoint/markers; a
            temporary directory (cleaned up) when None.
    """
    if years <= 0:
        raise RunnerError("years must be positive")
    if kills < 0 or flaky < 0 or corrupt < 0:
        raise RunnerError("disruption counts must be >= 0")
    if kills + flaky > years:
        raise RunnerError(
            f"kills + flaky ({kills + flaky}) cannot exceed years ({years})"
        )
    if workdir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            return run_chaos(
                workload, configuration, technique,
                years=years, jobs=jobs, kills=kills, flaky=flaky,
                corrupt=corrupt, faults=faults, seed=seed, workdir=tmp,
                num_servers=num_servers, server=server,
            )

    datacenter = make_datacenter(workload, configuration, num_servers, server)
    context = TechniqueContext(
        cluster=datacenter.cluster,
        workload=workload,
        power_budget_watts=plan_power_budget_watts(datacenter),
    )
    try:
        plan = technique.compile_plan(context)
    except TechniqueError:
        from repro.techniques.nop import FullService

        plan = FullService().compile_plan(
            TechniqueContext(cluster=datacenter.cluster, workload=workload)
        )
    year_spec = {
        "datacenter": datacenter,
        "plan": plan,
        "recharge_seconds": DEFAULT_RECHARGE_SECONDS,
    }
    if faults is not None and not faults.is_null:
        year_spec["fault_plan"] = faults
    labels = [f"year={i}" for i in range(years)]

    # Pass 1 — ground truth: serial, no cache, no harness faults.
    baseline = SerialExecutor().run(
        make_jobs(_simulate_year, [year_spec] * years, base_seed=seed,
                  labels=labels)
    )

    # Pass 2 — the disrupted parallel sweep.
    root = Path(workdir)
    root.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(root / "cache", version="chaos")
    specs: List[dict] = []
    for i in range(years):
        cell = {"year": year_spec, "coordinator_pid": os.getpid()}
        if i < kills:
            cell["kill_marker"] = str(root / f"kill-{i}")
        elif i < kills + flaky:
            cell["flaky_marker"] = str(root / f"flaky-{i}")
        specs.append(cell)
    corruptor = _CacheCorruptor(cache, limit=corrupt)
    checkpoint_path = root / "checkpoint.jsonl"
    with SweepCheckpoint(checkpoint_path) as checkpoint:
        executor = ParallelExecutor(
            max_workers=jobs,
            cache=cache,
            progress=corruptor,
            retry=RetryPolicy(
                max_attempts=3, base_delay_seconds=0.01, seed=seed
            ),
            checkpoint=checkpoint,
        )
        chaos_run = executor.run(
            make_jobs(_chaos_cell, specs, base_seed=seed, labels=labels)
        )

    # Pass 3 — resume from the checkpoint: recorded cells come from the
    # cache (corrupted ones are quarantined and recomputed), stragglers
    # re-run; every marker is spent, so cells compute cleanly.
    with SweepCheckpoint(checkpoint_path, resume=True) as resumed:
        resume_exec = SerialExecutor(cache=cache, checkpoint=resumed)
        resume_run = resume_exec.run(
            make_jobs(_chaos_cell, specs, base_seed=seed, labels=labels)
        )

    return ChaosReport(
        years=years,
        kills=kills,
        flaky=flaky,
        corrupted=corruptor.corrupted,
        chaos_stats=chaos_run.stats,
        resume_stats=resume_run.stats,
        chaos_matches=list(chaos_run.values) == list(baseline.values),
        resume_matches=list(resume_run.values) == list(baseline.values),
    )
