"""On-disk result cache keyed by job fingerprint + code version.

Repeated sweeps and benchmark re-runs recompute mostly identical cells;
the cache turns those into disk reads.  Entries are pickles stored under
``root/<version>/<fp[:2]>/<fp>.pkl`` — the version prefix (defaulting to
the installed ``repro`` version) invalidates the whole cache on upgrade
without touching any files, and the two-character fan-out keeps
directories small for large sweeps.

Robustness over cleverness: a corrupt, truncated, or unreadable entry is
a miss; a failed write is ignored (the value is simply recomputed next
time).  Writes go through a same-directory temp file and ``os.replace``
so concurrent runs never observe half-written entries.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import RunnerError
from repro.runner.jobs import Job

_SENTINEL = object()

#: Entry suffixes the GC accounts for: live entries, quarantined corrupt
#: entries, and temp files a crashed writer may have left behind.
_GC_SUFFIXES = (".pkl", ".pkl.corrupt", ".tmp")


@dataclass(frozen=True)
class CacheStats:
    """A disk-level snapshot of one cache root.

    Attributes:
        entries: Live ``*.pkl`` entries across every version namespace.
        bytes: Total bytes of live entries.
        corrupt_entries / corrupt_bytes: Quarantined ``*.pkl.corrupt``
            files awaiting post-mortem (or GC).
        versions: Per-version-namespace ``(entries, bytes)`` breakdown.
    """

    entries: int = 0
    bytes: int = 0
    corrupt_entries: int = 0
    corrupt_bytes: int = 0
    versions: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.bytes + self.corrupt_bytes


@dataclass(frozen=True)
class PruneReport:
    """What one :meth:`ResultCache.prune` pass removed and kept."""

    removed_files: int = 0
    removed_bytes: int = 0
    kept_files: int = 0
    kept_bytes: int = 0

    def summary(self) -> str:
        return (
            f"pruned {self.removed_files} files ({self.removed_bytes} B), "
            f"kept {self.kept_files} ({self.kept_bytes} B)"
        )


def default_cache_version() -> str:
    """The installed library version (the default cache namespace)."""
    import repro

    return getattr(repro, "__version__", "0")


class ResultCache:
    """Pickle-on-disk memoisation of job results.

    Args:
        root: Cache directory (created on first write).
        version: Namespace folded into every path; results computed by a
            different code version are invisible, not deleted.
    """

    def __init__(self, root: os.PathLike, version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else default_cache_version()
        if not self.version or any(sep in self.version for sep in ("/", "\\")):
            raise RunnerError(f"invalid cache version {self.version!r}")
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        # Counter updates are load-add-store sequences; a long-lived
        # server hits one cache from many handler threads, and torn
        # increments would make hit-rate telemetry drift from the truth.
        self._lock = threading.Lock()

    def _path(self, fingerprint: str) -> Path:
        return self.root / self.version / fingerprint[:2] / f"{fingerprint}.pkl"

    def entry_path(self, fingerprint: str) -> Path:
        """Where the entry for ``fingerprint`` lives (it may not exist).
        Exposed for tooling — the chaos harness corrupts entries in place
        to exercise quarantine."""
        return self._path(fingerprint)

    def get(self, job: Job) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        value = self._read(self._path(job.fingerprint))
        if value is _SENTINEL:
            with self._lock:
                self.misses += 1
            return False, None
        with self._lock:
            self.hits += 1
        return True, value

    def put(self, job: Job, value: Any) -> bool:
        """Store ``value``; returns False (and stays silent) on failure."""
        path = self._path(job.fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            return False
        with self._lock:
            self.stores += 1
        return True

    def _read(self, path: Path) -> Any:
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return _SENTINEL
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # Corrupt or stale entry: treat as a miss and quarantine it —
            # renamed aside (``*.pkl.corrupt``) rather than deleted, so a
            # clean copy gets rewritten on the next store while the bad
            # bytes stay available for post-mortem.
            with self._lock:
                self.corrupt += 1
            try:
                os.replace(path, f"{path}.corrupt")
            except OSError:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return _SENTINEL

    def __len__(self) -> int:
        base = self.root / self.version
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.pkl"))

    # Locks do not pickle; the cache itself never crosses a process
    # boundary (executors consult it in the coordinator), but anything
    # that snapshots executor state should not explode on it either.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- garbage collection ---------------------------------------------------

    def _scan(self) -> List[Tuple[float, int, Path]]:
        """Every GC-visible file under the root (all version namespaces)
        as ``(mtime, bytes, path)``.  Files that vanish mid-scan (another
        process pruned or replaced them) are simply skipped."""
        found: List[Tuple[float, int, Path]] = []
        if not self.root.is_dir():
            return found
        for path in sorted(self.root.rglob("*")):
            if not path.name.endswith(_GC_SUFFIXES):
                continue
            try:
                meta = path.stat()
            except OSError:
                continue
            found.append((meta.st_mtime, meta.st_size, path))
        return found

    def stats(self) -> CacheStats:
        """Disk-level size/entry statistics across every version namespace."""
        entries = live_bytes = corrupt = corrupt_bytes = 0
        versions: Dict[str, List[int]] = {}
        for _, size, path in self._scan():
            try:
                version = path.relative_to(self.root).parts[0]
            except (ValueError, IndexError):  # pragma: no cover - defensive
                version = "?"
            if path.name.endswith(".pkl"):
                entries += 1
                live_bytes += size
                per = versions.setdefault(version, [0, 0])
                per[0] += 1
                per[1] += size
            elif path.name.endswith(".pkl.corrupt"):
                corrupt += 1
                corrupt_bytes += size
        return CacheStats(
            entries=entries,
            bytes=live_bytes,
            corrupt_entries=corrupt,
            corrupt_bytes=corrupt_bytes,
            versions={v: (n, b) for v, (n, b) in sorted(versions.items())},
        )

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> PruneReport:
        """Evict oldest-mtime-first until the cache fits the given bounds.

        A long-lived server must not grow its cache without bound; this
        is the GC it runs between batches (or that ``repro cache`` runs
        by hand).  Quarantined ``*.pkl.corrupt`` files and orphaned
        writer temp files count against the budget and are eligible for
        eviction like any entry; *every* version namespace is swept, so
        entries stranded by an upgrade eventually leave the disk.

        Args:
            max_bytes: Keep total on-disk size at or under this.
            max_age_s: Evict anything whose mtime is older than this.
            now: Reference time for ``max_age_s`` (default
                ``time.time()``), injectable for tests.

        Eviction failures are skipped, not fatal — a file another process
        already removed is success by other means.
        """
        if max_bytes is not None and max_bytes < 0:
            raise RunnerError("max_bytes must be >= 0")
        if max_age_s is not None and max_age_s < 0:
            raise RunnerError("max_age_s must be >= 0")
        files = sorted(self._scan())  # oldest mtime first
        clock = time.time() if now is None else now
        total = sum(size for _, size, _ in files)
        removed_files = removed_bytes = 0
        for mtime, size, path in files:
            too_old = max_age_s is not None and clock - mtime > max_age_s
            too_big = max_bytes is not None and total > max_bytes
            if not (too_old or too_big):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed_files += 1
            removed_bytes += size
        self._remove_empty_dirs()
        return PruneReport(
            removed_files=removed_files,
            removed_bytes=removed_bytes,
            kept_files=len(files) - removed_files,
            kept_bytes=total,
        )

    def _remove_empty_dirs(self) -> None:
        """Drop fan-out/version directories the prune emptied."""
        if not self.root.is_dir():
            return
        for path in sorted(
            (p for p in self.root.rglob("*") if p.is_dir()),
            key=lambda p: len(p.parts),
            reverse=True,
        ):
            try:
                path.rmdir()  # refuses non-empty directories
            except OSError:
                pass
