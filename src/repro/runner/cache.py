"""On-disk result cache keyed by job fingerprint + code version.

Repeated sweeps and benchmark re-runs recompute mostly identical cells;
the cache turns those into disk reads.  Entries are pickles stored under
``root/<version>/<fp[:2]>/<fp>.pkl`` — the version prefix (defaulting to
the installed ``repro`` version) invalidates the whole cache on upgrade
without touching any files, and the two-character fan-out keeps
directories small for large sweeps.

Robustness over cleverness: a corrupt, truncated, or unreadable entry is
a miss; a failed write is ignored (the value is simply recomputed next
time).  Writes go through a same-directory temp file and ``os.replace``
so concurrent runs never observe half-written entries.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.errors import RunnerError
from repro.runner.jobs import Job

_SENTINEL = object()


def default_cache_version() -> str:
    """The installed library version (the default cache namespace)."""
    import repro

    return getattr(repro, "__version__", "0")


class ResultCache:
    """Pickle-on-disk memoisation of job results.

    Args:
        root: Cache directory (created on first write).
        version: Namespace folded into every path; results computed by a
            different code version are invisible, not deleted.
    """

    def __init__(self, root: os.PathLike, version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else default_cache_version()
        if not self.version or any(sep in self.version for sep in ("/", "\\")):
            raise RunnerError(f"invalid cache version {self.version!r}")
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def _path(self, fingerprint: str) -> Path:
        return self.root / self.version / fingerprint[:2] / f"{fingerprint}.pkl"

    def entry_path(self, fingerprint: str) -> Path:
        """Where the entry for ``fingerprint`` lives (it may not exist).
        Exposed for tooling — the chaos harness corrupts entries in place
        to exercise quarantine."""
        return self._path(fingerprint)

    def get(self, job: Job) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        value = self._read(self._path(job.fingerprint))
        if value is _SENTINEL:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, job: Job, value: Any) -> bool:
        """Store ``value``; returns False (and stays silent) on failure."""
        path = self._path(job.fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            return False
        self.stores += 1
        return True

    def _read(self, path: Path) -> Any:
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return _SENTINEL
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # Corrupt or stale entry: treat as a miss and quarantine it —
            # renamed aside (``*.pkl.corrupt``) rather than deleted, so a
            # clean copy gets rewritten on the next store while the bad
            # bytes stay available for post-mortem.
            self.corrupt += 1
            try:
                os.replace(path, f"{path}.corrupt")
            except OSError:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return _SENTINEL

    def __len__(self) -> int:
        base = self.root / self.version
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.pkl"))
