"""On-disk result cache keyed by job fingerprint + code version.

Repeated sweeps and benchmark re-runs recompute mostly identical cells;
the cache turns those into disk reads.  Entries are pickles stored under
``root/<version>/<fp[:2]>/<fp>.pkl`` — the version prefix (defaulting to
the installed ``repro`` version) invalidates the whole cache on upgrade
without touching any files, and the two-character fan-out keeps
directories small for large sweeps.

Robustness over cleverness: a corrupt, truncated, or unreadable entry is
a miss; a failed write is ignored (the value is simply recomputed next
time).  Writes go through a same-directory temp file and ``os.replace``
so concurrent runs never observe half-written entries.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import RunnerError
from repro.runner.jobs import Job

_SENTINEL = object()

#: Entry suffixes the GC accounts for: live entries, quarantined corrupt
#: entries, temp files a crashed writer may have left behind, and
#: single-flight lease files a killed worker may have stranded.
_GC_SUFFIXES = (".pkl", ".pkl.corrupt", ".tmp", ".flight")

#: Suffixes that are never a live entry: a crashed writer's temp file or
#: a dead flight lease.  ``prune`` removes these past a short grace
#: period even when the cache is within its size/age budget — a torn
#: write must not linger just because the cache is small.
_ORPHAN_SUFFIXES = (".tmp", ".flight")


@dataclass(frozen=True)
class CacheStats:
    """A disk-level snapshot of one cache root.

    Attributes:
        entries: Live ``*.pkl`` entries across every version namespace.
        bytes: Total bytes of live entries.
        corrupt_entries / corrupt_bytes: Quarantined ``*.pkl.corrupt``
            files awaiting post-mortem (or GC).
        versions: Per-version-namespace ``(entries, bytes)`` breakdown.
    """

    entries: int = 0
    bytes: int = 0
    corrupt_entries: int = 0
    corrupt_bytes: int = 0
    versions: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.bytes + self.corrupt_bytes


@dataclass(frozen=True)
class PruneReport:
    """What one :meth:`ResultCache.prune` pass removed and kept."""

    removed_files: int = 0
    removed_bytes: int = 0
    kept_files: int = 0
    kept_bytes: int = 0

    def summary(self) -> str:
        return (
            f"pruned {self.removed_files} files ({self.removed_bytes} B), "
            f"kept {self.kept_files} ({self.kept_bytes} B)"
        )


def default_cache_version() -> str:
    """The installed library version (the default cache namespace)."""
    import repro

    return getattr(repro, "__version__", "0")


class ResultCache:
    """Pickle-on-disk memoisation of job results.

    Args:
        root: Cache directory (created on first write).
        version: Namespace folded into every path; results computed by a
            different code version are invisible, not deleted.
    """

    def __init__(self, root: os.PathLike, version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else default_cache_version()
        if not self.version or any(sep in self.version for sep in ("/", "\\")):
            raise RunnerError(f"invalid cache version {self.version!r}")
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        # Counter updates are load-add-store sequences; a long-lived
        # server hits one cache from many handler threads, and torn
        # increments would make hit-rate telemetry drift from the truth.
        self._lock = threading.Lock()

    def _path(self, fingerprint: str) -> Path:
        return self.root / self.version / fingerprint[:2] / f"{fingerprint}.pkl"

    def entry_path(self, fingerprint: str) -> Path:
        """Where the entry for ``fingerprint`` lives (it may not exist).
        Exposed for tooling — the chaos harness corrupts entries in place
        to exercise quarantine."""
        return self._path(fingerprint)

    def get(self, job: Job) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        value = self._read(self._path(job.fingerprint))
        if value is _SENTINEL:
            with self._lock:
                self.misses += 1
            return False, None
        with self._lock:
            self.hits += 1
        return True, value

    def put(self, job: Job, value: Any) -> bool:
        """Store ``value``; returns False (and stays silent) on failure."""
        path = self._path(job.fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            return False
        with self._lock:
            self.stores += 1
        return True

    def _read(self, path: Path) -> Any:
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return _SENTINEL
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # Corrupt or stale entry: treat as a miss and quarantine it —
            # renamed aside (``*.pkl.corrupt``) rather than deleted, so a
            # clean copy gets rewritten on the next store while the bad
            # bytes stay available for post-mortem.
            with self._lock:
                self.corrupt += 1
            try:
                os.replace(path, f"{path}.corrupt")
            except OSError:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return _SENTINEL

    def __len__(self) -> int:
        base = self.root / self.version
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.pkl"))

    # Locks do not pickle; the cache itself never crosses a process
    # boundary (executors consult it in the coordinator), but anything
    # that snapshots executor state should not explode on it either.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- garbage collection ---------------------------------------------------

    def _scan(self) -> List[Tuple[float, int, Path]]:
        """Every GC-visible file under the root (all version namespaces)
        as ``(mtime, bytes, path)``.  Files that vanish mid-scan (another
        process pruned or replaced them) are simply skipped."""
        found: List[Tuple[float, int, Path]] = []
        if not self.root.is_dir():
            return found
        for path in sorted(self.root.rglob("*")):
            if not path.name.endswith(_GC_SUFFIXES):
                continue
            try:
                meta = path.stat()
            except OSError:
                continue
            found.append((meta.st_mtime, meta.st_size, path))
        return found

    def stats(self) -> CacheStats:
        """Disk-level size/entry statistics across every version namespace."""
        entries = live_bytes = corrupt = corrupt_bytes = 0
        versions: Dict[str, List[int]] = {}
        for _, size, path in self._scan():
            try:
                version = path.relative_to(self.root).parts[0]
            except (ValueError, IndexError):  # pragma: no cover - defensive
                version = "?"
            if path.name.endswith(".pkl"):
                entries += 1
                live_bytes += size
                per = versions.setdefault(version, [0, 0])
                per[0] += 1
                per[1] += size
            elif path.name.endswith(".pkl.corrupt"):
                corrupt += 1
                corrupt_bytes += size
        return CacheStats(
            entries=entries,
            bytes=live_bytes,
            corrupt_entries=corrupt,
            corrupt_bytes=corrupt_bytes,
            versions={v: (n, b) for v, (n, b) in sorted(versions.items())},
        )

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
        orphan_grace_s: float = 300.0,
    ) -> PruneReport:
        """Evict oldest-mtime-first until the cache fits the given bounds.

        A long-lived server must not grow its cache without bound; this
        is the GC it runs between batches (or that ``repro cache`` runs
        by hand).  Quarantined ``*.pkl.corrupt`` files and orphaned
        writer temp files count against the budget and are eligible for
        eviction like any entry; *every* version namespace is swept, so
        entries stranded by an upgrade eventually leave the disk.

        Orphans are also swept unconditionally: a ``*.tmp`` left by a
        writer killed between temp-write and rename, or a ``*.flight``
        lease stranded by a dead worker, is removed once older than
        ``orphan_grace_s`` even when the cache is inside its budget —
        the grace period only protects writes/leases in progress.

        Args:
            max_bytes: Keep total on-disk size at or under this.
            max_age_s: Evict anything whose mtime is older than this.
            now: Reference time for ``max_age_s`` (default
                ``time.time()``), injectable for tests.
            orphan_grace_s: Age past which ``*.tmp`` / ``*.flight``
                orphans are removed regardless of the budget.

        Eviction failures are skipped, not fatal — a file another process
        already removed is success by other means.
        """
        if max_bytes is not None and max_bytes < 0:
            raise RunnerError("max_bytes must be >= 0")
        if max_age_s is not None and max_age_s < 0:
            raise RunnerError("max_age_s must be >= 0")
        files = sorted(self._scan())  # oldest mtime first
        clock = time.time() if now is None else now
        total = sum(size for _, size, _ in files)
        removed_files = removed_bytes = 0
        for mtime, size, path in files:
            too_old = max_age_s is not None and clock - mtime > max_age_s
            too_big = max_bytes is not None and total > max_bytes
            stale_orphan = (
                path.name.endswith(_ORPHAN_SUFFIXES)
                and clock - mtime > orphan_grace_s
            )
            if not (too_old or too_big or stale_orphan):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed_files += 1
            removed_bytes += size
        self._remove_empty_dirs()
        return PruneReport(
            removed_files=removed_files,
            removed_bytes=removed_bytes,
            kept_files=len(files) - removed_files,
            kept_bytes=total,
        )

    def _remove_empty_dirs(self) -> None:
        """Drop fan-out/version directories the prune emptied."""
        if not self.root.is_dir():
            return
        for path in sorted(
            (p for p in self.root.rglob("*") if p.is_dir()),
            key=lambda p: len(p.parts),
            reverse=True,
        ):
            try:
                path.rmdir()  # refuses non-empty directories
            except OSError:
                pass


class SingleFlightCache(ResultCache):
    """A :class:`ResultCache` with cross-process single-flight misses.

    When several worker processes share one cache directory, a popular
    fingerprint that misses everywhere gets computed N times — wasted
    work, and N racing writers.  This subclass adds a lease protocol on
    top of the plain cache: the first process to miss creates
    ``<entry>.flight`` with ``O_EXCL`` (atomic on every platform the
    repo targets) and computes; later missers find the fresh foreign
    lease and poll for the entry instead of computing.

    The protocol is crash-safe by construction, never by coordination:

    * A lease names its owner (``pid:unix``).  A waiter that sees the
      owner dead — or the lease older than ``lease_s`` — breaks it and
      computes itself.  Duplicated compute after a broken lease is
      *safe*: results are idempotent by fingerprint and writes are
      atomic, so the worst case is wasted effort, never a torn entry.
    * :meth:`put` releases the lease after the atomic rename; a worker
      that fails mid-compute releases via :meth:`release_all` (the
      supervisor's worker loop calls it in a ``finally``); a worker that
      is SIGKILLed strands the lease, which dies by pid-check or age.
    * A filesystem that refuses the lock degrades to plain-cache
      behaviour — single-flight is an optimisation, not a correctness
      requirement.

    ``flights_won`` / ``flights_waited`` / ``flights_broken`` count the
    protocol outcomes for ``/stats``.
    """

    def __init__(
        self,
        root: os.PathLike,
        version: Optional[str] = None,
        lease_s: float = 30.0,
        wait_s: Optional[float] = None,
        poll_s: float = 0.02,
    ) -> None:
        super().__init__(root, version=version)
        if lease_s <= 0:
            raise RunnerError("lease_s must be > 0")
        if poll_s <= 0:
            raise RunnerError("poll_s must be > 0")
        self.lease_s = lease_s
        self.wait_s = lease_s if wait_s is None else wait_s
        self.poll_s = poll_s
        self.flights_won = 0
        self.flights_waited = 0
        self.flights_broken = 0
        #: fingerprint -> lease path held by *this* process.
        self._held: Dict[str, Path] = {}

    def _flight_path(self, fingerprint: str) -> Path:
        return self._path(fingerprint).parent / f"{fingerprint}.flight"

    def get(self, job: Job) -> Tuple[bool, Any]:
        """Hit, or a miss that this process holds the flight lease for.

        ``(False, None)`` means: compute it — you own the lease (or the
        filesystem would not grant one).  If another process holds a
        fresh lease, block (up to ``wait_s``) polling for its entry to
        land; a stale lease is broken and the miss returned.
        """
        path = self._path(job.fingerprint)
        value = self._read(path)
        if value is not _SENTINEL:
            with self._lock:
                self.hits += 1
            return True, value
        flight = self._flight_path(job.fingerprint)
        deadline = time.monotonic() + self.wait_s
        waited = False
        while True:
            if self._try_acquire(job.fingerprint, flight):
                with self._lock:
                    self.misses += 1
                return False, None
            if not waited:
                waited = True
                with self._lock:
                    self.flights_waited += 1
            if time.monotonic() >= deadline:
                # Waited out the whole lease window: break and compute.
                self._break_lease(flight)
                continue
            time.sleep(self.poll_s)
            value = self._read(path)
            if value is not _SENTINEL:
                with self._lock:
                    self.hits += 1
                return True, value
            if self._lease_stale(flight):
                self._break_lease(flight)

    def put(self, job: Job, value: Any) -> bool:
        """Store and release this process's lease on the fingerprint."""
        try:
            return super().put(job, value)
        finally:
            self._release(job.fingerprint)

    def release_all(self) -> None:
        """Drop every lease this process still holds (failure cleanup)."""
        with self._lock:
            held = dict(self._held)
            self._held.clear()
        for flight in held.values():
            try:
                os.unlink(flight)
            except OSError:
                pass

    # -- lease protocol --------------------------------------------------------

    def _try_acquire(self, fingerprint: str, flight: Path) -> bool:
        try:
            flight.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(flight, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # Cannot lock here (read-only dir, exotic fs): plain-cache
            # semantics — compute without coordination.
            return True
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{os.getpid()}:{time.time():.3f}")
        except OSError:
            pass
        with self._lock:
            self._held[fingerprint] = flight
            self.flights_won += 1
        return True

    def _lease_stale(self, flight: Path) -> bool:
        """Owner dead, lease expired, or lease already gone."""
        try:
            text = flight.read_text()
            pid_text, _, stamp_text = text.partition(":")
            pid = int(pid_text)
            stamp = float(stamp_text)
        except (OSError, ValueError):
            # Vanished (released) or unreadable: treat as stale; the
            # next acquire attempt settles it atomically either way.
            return True
        if time.time() - stamp > self.lease_s:
            return True
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            return False
        return False

    def _break_lease(self, flight: Path) -> None:
        try:
            os.unlink(flight)
        except OSError:
            return
        with self._lock:
            self.flights_broken += 1

    def _release(self, fingerprint: str) -> None:
        with self._lock:
            flight = self._held.pop(fingerprint, None)
        if flight is not None:
            try:
                os.unlink(flight)
            except OSError:
                pass
