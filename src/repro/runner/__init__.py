"""repro.runner: parallel, cached, observable experiment execution.

Everything quantitative in the reproduction — Monte-Carlo availability
studies, the Figure 5-9 sweep grids, the ``reproduce`` driver — reduces
to "run many independent simulations and aggregate".  This package makes
that a first-class service:

* :mod:`repro.runner.jobs` — picklable :class:`Job` units with stable
  SHA-256 fingerprints and :class:`numpy.random.SeedSequence`-spawned
  per-job random streams (bit-identical results at any worker count);
* :mod:`repro.runner.executor` — :class:`SerialExecutor` and a
  process-pool :class:`ParallelExecutor` with windowed dispatch,
  per-job timeouts, and automatic serial fallback;
* :mod:`repro.runner.cache` — an on-disk :class:`ResultCache` keyed by
  job fingerprint + code version (corrupt entries are quarantined, never
  fatal);
* :mod:`repro.runner.progress` — :class:`JobEvent` callbacks and the
  :class:`RunStats` aggregate every run returns;
* :mod:`repro.runner.retry` — :class:`RetryPolicy`: bounded re-execution
  of transient failures with deterministic seeded backoff;
* :mod:`repro.runner.checkpoint` — :class:`SweepCheckpoint`: a crash-safe
  JSONL manifest of finished work enabling ``--resume``;
* :mod:`repro.runner.chaos` — :func:`run_chaos`: kills workers and
  corrupts cache entries mid-sweep, then certifies the results are
  bit-identical to an undisturbed run.

Quickstart::

    from repro.runner import ResultCache, make_executor, make_jobs

    def cell(spec, seed):          # top-level, picklable
        rng = __import__("numpy").random.default_rng(seed)
        return spec["x"] ** 2 + rng.standard_normal()

    jobs = make_jobs(cell, [{"x": x} for x in range(100)], base_seed=7)
    report = make_executor(jobs=4, cache=ResultCache("/tmp/cells")).run(jobs)
    print(report.values, report.stats.summary())
"""

from repro.runner.cache import (
    CacheStats,
    PruneReport,
    ResultCache,
    default_cache_version,
)
from repro.runner.chaos import ChaosReport, run_chaos
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.executor import (
    BaseExecutor,
    JobFailure,
    ParallelExecutor,
    RunReport,
    SerialExecutor,
    make_executor,
)
from repro.runner.jobs import Job, JobFn, canonical_encode, make_jobs, spawn_seeds
from repro.runner.progress import (
    CollectingProgress,
    ConsoleProgress,
    JobEvent,
    JobEventKind,
    ProgressListener,
    RunStats,
)
from repro.runner.retry import DEFAULT_RETRYABLE_ERRORS, RetryPolicy, classify_error

__all__ = [
    "BaseExecutor",
    "CacheStats",
    "ChaosReport",
    "CollectingProgress",
    "ConsoleProgress",
    "DEFAULT_RETRYABLE_ERRORS",
    "Job",
    "JobEvent",
    "JobEventKind",
    "JobFailure",
    "JobFn",
    "ParallelExecutor",
    "ProgressListener",
    "PruneReport",
    "ResultCache",
    "RetryPolicy",
    "RunReport",
    "RunStats",
    "SerialExecutor",
    "SweepCheckpoint",
    "canonical_encode",
    "classify_error",
    "default_cache_version",
    "make_executor",
    "make_jobs",
    "run_chaos",
    "spawn_seeds",
]
