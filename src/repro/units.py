"""Unit helpers used throughout the library.

Internally the library standardises on:

* time      -- seconds (float)
* power     -- watts (float)
* energy    -- joules (float)
* data size -- bytes (float)
* money     -- dollars per year for amortised cap-ex (float)

The paper, however, quotes values in minutes, kilowatts, kilowatt-hours and
gigabytes, so this module provides explicit, readable conversion functions in
both directions.  Using named functions rather than bare multiplications keeps
every magic constant out of the model code and makes each call site
self-documenting: ``minutes(2)`` instead of ``120``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time.
# ---------------------------------------------------------------------------

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_YEAR = 365.0 * SECONDS_PER_DAY


def seconds(value: float) -> float:
    """Identity conversion, for call-site symmetry with :func:`minutes`."""
    return float(value)


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return float(value) * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return float(value) * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return float(value) * SECONDS_PER_DAY


def to_minutes(value_seconds: float) -> float:
    """Convert seconds to minutes."""
    return float(value_seconds) / SECONDS_PER_MINUTE


def to_hours(value_seconds: float) -> float:
    """Convert seconds to hours."""
    return float(value_seconds) / SECONDS_PER_HOUR


# ---------------------------------------------------------------------------
# Power and energy.
# ---------------------------------------------------------------------------

WATTS_PER_KILOWATT = 1000.0
WATTS_PER_MEGAWATT = 1e6
JOULES_PER_WATT_HOUR = 3600.0
JOULES_PER_KILOWATT_HOUR = 3.6e6


def watts(value: float) -> float:
    """Identity conversion, for call-site symmetry with :func:`kilowatts`."""
    return float(value)


def kilowatts(value: float) -> float:
    """Convert kilowatts to watts."""
    return float(value) * WATTS_PER_KILOWATT


def megawatts(value: float) -> float:
    """Convert megawatts to watts."""
    return float(value) * WATTS_PER_MEGAWATT


def to_kilowatts(value_watts: float) -> float:
    """Convert watts to kilowatts."""
    return float(value_watts) / WATTS_PER_KILOWATT


def to_megawatts(value_watts: float) -> float:
    """Convert watts to megawatts."""
    return float(value_watts) / WATTS_PER_MEGAWATT


def watt_hours(value: float) -> float:
    """Convert watt-hours to joules."""
    return float(value) * JOULES_PER_WATT_HOUR


def kilowatt_hours(value: float) -> float:
    """Convert kilowatt-hours to joules."""
    return float(value) * JOULES_PER_KILOWATT_HOUR


def to_watt_hours(value_joules: float) -> float:
    """Convert joules to watt-hours."""
    return float(value_joules) / JOULES_PER_WATT_HOUR


def to_kilowatt_hours(value_joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return float(value_joules) / JOULES_PER_KILOWATT_HOUR


def energy(power_watts: float, duration_seconds: float) -> float:
    """Energy in joules for a constant ``power_watts`` over ``duration_seconds``."""
    return float(power_watts) * float(duration_seconds)


def runtime_at_power(energy_joules: float, power_watts: float) -> float:
    """How long ``energy_joules`` lasts at a constant draw of ``power_watts``.

    Returns ``float('inf')`` for a non-positive draw, matching the physical
    intuition that an unloaded store never drains.
    """
    if power_watts <= 0.0:
        return float("inf")
    return float(energy_joules) / float(power_watts)


# ---------------------------------------------------------------------------
# Data sizes.
# ---------------------------------------------------------------------------

BYTES_PER_MEGABYTE = 1e6
BYTES_PER_GIGABYTE = 1e9
BITS_PER_BYTE = 8.0


def megabytes(value: float) -> float:
    """Convert megabytes (decimal) to bytes."""
    return float(value) * BYTES_PER_MEGABYTE


def gigabytes(value: float) -> float:
    """Convert gigabytes (decimal) to bytes."""
    return float(value) * BYTES_PER_GIGABYTE


def to_gigabytes(value_bytes: float) -> float:
    """Convert bytes to gigabytes (decimal)."""
    return float(value_bytes) / BYTES_PER_GIGABYTE


def gigabits_per_second(value: float) -> float:
    """Convert a link speed in Gb/s to bytes per second."""
    return float(value) * BYTES_PER_GIGABYTE / BITS_PER_BYTE


def megabytes_per_second(value: float) -> float:
    """Convert a bandwidth in MB/s to bytes per second."""
    return float(value) * BYTES_PER_MEGABYTE


def transfer_time(size_bytes: float, bandwidth_bytes_per_second: float) -> float:
    """Seconds to move ``size_bytes`` at ``bandwidth_bytes_per_second``.

    Zero-sized transfers take zero time regardless of bandwidth; a
    non-positive bandwidth with a positive size is an error state surfaced
    as ``float('inf')`` so that feasibility checks upstream reject the plan.
    """
    if size_bytes <= 0.0:
        return 0.0
    if bandwidth_bytes_per_second <= 0.0:
        return float("inf")
    return float(size_bytes) / float(bandwidth_bytes_per_second)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"clamp range is inverted: [{low}, {high}]")
    return max(low, min(high, value))
