"""Kernel-backed point evaluation: the batch engine behind selection jobs.

:func:`evaluate_point_batch` is a drop-in replacement for
:func:`repro.core.performability.evaluate_point` that executes the outage
on a compiled :class:`~repro.vsim.kernel.PlanKernel` instead of the scalar
simulator.  Results are bit-identical (traces included) — certified by
``make batch-smoke`` — so the selection searches in
:mod:`repro.core.selection` and the sweeps in
:mod:`repro.analysis.sweep` can flip engines without changing answers.

The win for selection-shaped work is kernel reuse: a lowest-cost sizing
search probes dozens of battery runtimes against the *same* (workload,
technique, power fraction), and :class:`KernelEvaluator` caches the
compiled plan per power budget so each probe only recompiles the cheap
battery constants.  Fault-injected evaluations are out of kernel scope
and silently delegate to the scalar engine.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.core.configurations import BackupConfiguration
from repro.core.costs import BackupCostModel
from repro.core.performability import (
    DEFAULT_NUM_SERVERS,
    PerformabilityPoint,
    evaluate_point,
    make_datacenter,
    plan_power_budget_watts,
)
from repro.errors import TechniqueError
from repro.servers.server import PAPER_SERVER, ServerSpec
from repro.techniques.base import OutageTechnique, TechniqueContext
from repro.vsim.kernel import PlanKernel
from repro.workloads.base import WorkloadSpec

#: Compiled-kernel cache bound (entries are small: arrays of per-phase
#: constants, not simulation state).
_MAX_CACHED_KERNELS = 256


class KernelEvaluator:
    """Evaluates performability points on cached :class:`PlanKernel` s.

    Kernels are memoised on the full point identity (configuration,
    technique, workload, cluster sizing, lost-work assumption); compiled
    *plans* are additionally shared across configurations with the same
    power budget, which is what makes runtime bisection probes cheap.
    Cache entries hold strong references to the technique/workload/server
    objects they were built from and are validated by identity, so the
    ``id()``-based keys can never alias recycled objects.
    """

    def __init__(self, max_kernels: int = _MAX_CACHED_KERNELS):
        self._kernels: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self._plans: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self._max_kernels = max(1, int(max_kernels))

    # -- internals -----------------------------------------------------------

    def _cache_get(self, cache: OrderedDict, key: Tuple, refs: Tuple):
        entry = cache.get(key)
        if entry is None:
            return None
        if any(a is not b for a, b in zip(entry["refs"], refs)):
            # id() reuse after garbage collection: treat as a miss.
            del cache[key]
            return None
        cache.move_to_end(key)
        return entry

    def _cache_put(
        self, cache: OrderedDict, key: Tuple, refs: Tuple, **payload: Any
    ) -> Dict[str, Any]:
        entry = dict(payload, refs=refs)
        cache[key] = entry
        while len(cache) > self._max_kernels:
            cache.popitem(last=False)
        return entry

    def _compile_plan(
        self,
        technique: OutageTechnique,
        workload: WorkloadSpec,
        datacenter,
    ):
        """Compile (or fetch) the technique plan for this power budget.

        Raises :class:`TechniqueError` exactly as the scalar path would;
        infeasible compilations are cached too so repeated probes of an
        infeasible fraction stay cheap.
        """
        budget = plan_power_budget_watts(datacenter)
        key = (id(technique), id(workload), datacenter.cluster.num_servers, budget)
        refs = (technique, workload)
        entry = self._cache_get(self._plans, key, refs)
        if entry is None:
            try:
                plan = technique.compile_plan(
                    TechniqueContext(
                        cluster=datacenter.cluster,
                        workload=workload,
                        power_budget_watts=budget,
                    )
                )
                error = None
            except TechniqueError as exc:
                plan, error = None, exc
            entry = self._cache_put(
                self._plans, key, refs, plan=plan, error=error
            )
        if entry["error"] is not None:
            raise entry["error"]
        return entry["plan"]

    def _kernel_for(
        self,
        configuration: BackupConfiguration,
        technique: OutageTechnique,
        workload: WorkloadSpec,
        num_servers: int,
        server: ServerSpec,
        lost_work_seconds: Optional[float],
    ) -> Dict[str, Any]:
        key = (
            configuration,
            id(technique),
            id(workload),
            num_servers,
            server,
            lost_work_seconds,
        )
        refs = (technique, workload)
        entry = self._cache_get(self._kernels, key, refs)
        if entry is not None:
            return entry
        datacenter = make_datacenter(workload, configuration, num_servers, server)
        try:
            plan = self._compile_plan(technique, workload, datacenter)
            kernel: Optional[PlanKernel] = PlanKernel(
                datacenter, plan, lost_work_seconds=lost_work_seconds
            )
        except TechniqueError:
            plan, kernel = None, None
        return self._cache_put(
            self._kernels, key, refs, plan=plan, kernel=kernel
        )

    # -- public API ----------------------------------------------------------

    def evaluate_point(
        self,
        configuration: BackupConfiguration,
        technique: OutageTechnique,
        workload: WorkloadSpec,
        outage_seconds: float,
        num_servers: int = DEFAULT_NUM_SERVERS,
        server: ServerSpec = PAPER_SERVER,
        cost_model: Optional[BackupCostModel] = None,
        lost_work_seconds: Optional[float] = None,
        faults: Optional[Any] = None,
    ) -> PerformabilityPoint:
        """Drop-in twin of :func:`repro.core.performability.evaluate_point`.

        Bit-identical points (the kernel collects traces, so ``outcome``
        compares equal field-for-field); fault-injected calls delegate to
        the scalar engine, which owns fault semantics.
        """
        if faults is not None:
            return evaluate_point(
                configuration,
                technique,
                workload,
                outage_seconds,
                num_servers=num_servers,
                server=server,
                cost_model=cost_model,
                lost_work_seconds=lost_work_seconds,
                faults=faults,
            )
        entry = self._kernel_for(
            configuration, technique, workload, num_servers, server,
            lost_work_seconds,
        )
        cost = configuration.normalized_cost(cost_model)
        if entry["kernel"] is None:
            return PerformabilityPoint(
                configuration_name=configuration.name,
                technique_name=technique.name,
                workload_name=workload.name,
                outage_seconds=outage_seconds,
                normalized_cost=cost,
                feasible=False,
                performance=0.0,
                downtime_seconds=math.inf,
                outcome=None,
            )
        outcome = entry["kernel"].run(
            [outage_seconds], collect_traces=True
        ).outcome(0)
        return PerformabilityPoint(
            configuration_name=configuration.name,
            technique_name=technique.name,
            workload_name=workload.name,
            outage_seconds=outage_seconds,
            normalized_cost=cost,
            feasible=True,
            performance=outcome.mean_performance,
            downtime_seconds=outcome.downtime_seconds,
            outcome=outcome,
        )


#: Shared evaluator for the module-level entry point; worker processes
#: each build their own copy on first use.
_DEFAULT_EVALUATOR: Optional[KernelEvaluator] = None


def evaluate_point_batch(*args: Any, **kwargs: Any) -> PerformabilityPoint:
    """Module-level :meth:`KernelEvaluator.evaluate_point` on a shared cache.

    The callable the selection/sweep layers resolve ``engine="batch"`` to.
    """
    global _DEFAULT_EVALUATOR
    if _DEFAULT_EVALUATOR is None:
        _DEFAULT_EVALUATOR = KernelEvaluator()
    return _DEFAULT_EVALUATOR.evaluate_point(*args, **kwargs)
