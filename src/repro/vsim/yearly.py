"""Batched Monte-Carlo years: blocks of simulated years on one kernel.

One availability study simulates hundreds of independent years of the
same (datacenter, plan) pair — the worst possible shape for the scalar
engine (every outage replays the plan in Python) and the best possible
shape for :class:`~repro.vsim.kernel.PlanKernel` (every cell shares one
compiled plan).

:func:`simulate_year_block` is the batch twin of
:func:`repro.analysis.availability._simulate_year`, evaluating a
contiguous block of years per job:

* **Same RNG discipline.**  Per-year seeds are re-derived as
  ``SeedSequence(base_seed).spawn(total_years)[start:start+count]`` —
  the exact children :func:`repro.runner.jobs.make_jobs` hands the
  scalar per-year jobs — and each year spawns ``(schedule, dg)`` streams
  positionally, so the sampled schedules and DG start rolls are
  bit-identical to the scalar path at any block size.
* **Same state threading.**  Cross-outage state of charge and recharge
  clamping follow :meth:`repro.sim.yearly.YearlyRunner._run_schedule`
  verbatim; only the outage simulations themselves are vectorized, in
  event-position-major order (all years' first outages as one batch,
  then all second outages, ...), which preserves each year's sequential
  threading while batching across years.
* **Same aggregates.**  The returned per-year dicts accumulate
  downtime/performance in event order with plain Python float adds, so
  each dict equals the scalar job's bit-for-bit — certified by
  ``make batch-smoke`` and ``tests/sim/test_vsim_yearly.py``.

Fault injection is out of kernel scope; the availability analyzer keeps
fault studies on the scalar path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.errors import SimulationError
from repro.outages.generator import OutageGenerator
from repro.vsim.kernel import PlanKernel

#: Years per batch job.  Wide enough to amortise kernel compilation and
#: fill the vector lanes, small enough that a multi-worker run still
#: load-balances a default 200-year study.
DEFAULT_BLOCK_YEARS = 50


def simulate_year_block(
    spec: Mapping[str, Any], seed: Optional[np.random.SeedSequence] = None
) -> List[Dict[str, float]]:
    """Runner job: simulate years ``start .. start+count-1`` as one batch.

    The spec carries ``datacenter``, ``plan``, ``recharge_seconds``,
    ``base_seed`` (the analyzer's root seed), ``start``, ``count`` and
    ``total_years``; the job ignores the runner-supplied ``seed`` and
    re-derives the per-year streams from ``base_seed`` so results are
    independent of how years are grouped into blocks.

    Returns one aggregate dict per year, each bit-identical to what
    ``_simulate_year`` returns for the same year index.
    """
    datacenter = spec["datacenter"]
    plan = spec["plan"]
    recharge_seconds = float(spec["recharge_seconds"])
    if recharge_seconds <= 0:
        raise SimulationError("recharge_seconds must be positive")
    start = int(spec["start"])
    count = int(spec["count"])
    total_years = int(spec["total_years"])
    if not (0 <= start and count > 0 and start + count <= total_years):
        raise SimulationError("year block out of range")
    seeds = np.random.SeedSequence(spec["base_seed"]).spawn(total_years)[
        start : start + count
    ]

    generator_spec = datacenter.generator
    roll_dg = (
        generator_spec.is_provisioned and generator_spec.start_reliability < 1.0
    )

    # Draw every year's schedule and DG rolls up front (cheap, sequential
    # per year exactly as the scalar runner draws them).
    events_per_year: List[List[Any]] = []
    dg_per_year: List[List[bool]] = []
    for year_seed in seeds:
        schedule_seed, dg_seed = year_seed.spawn(2)
        schedule = OutageGenerator(seed=schedule_seed).sample_year()
        rng = np.random.default_rng(dg_seed)
        events = list(schedule)
        if roll_dg:
            draws = [
                bool(rng.random() < generator_spec.start_reliability)
                for _ in events
            ]
        else:
            draws = [True] * len(events)
        events_per_year.append(events)
        dg_per_year.append(draws)

    kernel = PlanKernel(datacenter, plan)

    # Per-year sequential state and aggregates, threaded exactly as
    # YearlyRunner._run_schedule (Python floats, event order).
    soc = [1.0] * count
    previous_end = [float("-inf")] * count
    downtime = [0.0] * count
    crashes = [0] * count
    perf_sum = [0.0] * count
    perf_weight = [0.0] * count
    dg_failures = [0] * count

    max_events = max((len(e) for e in events_per_year), default=0)
    for j in range(max_events):
        years = [y for y in range(count) if len(events_per_year[y]) > j]
        if not years:
            break
        durations = []
        socs = []
        dgs = []
        for y in years:
            event = events_per_year[y][j]
            gap = event.start_seconds - previous_end[y]
            if gap < 0:
                raise SimulationError(
                    "schedule events must be ordered and non-overlapping"
                )
            soc[y] = min(1.0, max(0.0, soc[y] + gap / recharge_seconds))
            dg_starts = dg_per_year[y][j]
            if generator_spec.is_provisioned and not dg_starts:
                dg_failures[y] += 1
            durations.append(event.duration_seconds)
            socs.append(soc[y])
            dgs.append(dg_starts)
        batch = kernel.run(
            durations, initial_state_of_charge=socs, dg_starts=dgs
        )
        for pos, y in enumerate(years):
            event = events_per_year[y][j]
            event_downtime = float(
                batch.downtime_during_outage_seconds[pos]
            ) + float(batch.downtime_after_restore_seconds[pos])
            downtime[y] += event_downtime
            if bool(batch.crashed[pos]):
                crashes[y] += 1
            perf_sum[y] += (
                float(batch.mean_performance[pos]) * event.duration_seconds
            )
            perf_weight[y] += event.duration_seconds
            soc[y] = float(batch.ups_state_of_charge_end[pos])
            previous_end[y] = event.end_seconds

    return [
        {
            "downtime_seconds": downtime[y],
            "crashes": float(crashes[y]),
            "outages": float(len(events_per_year[y])),
            "perf_sum": perf_sum[y],
            "perf_weight": perf_weight[y],
            "dg_start_failures": float(dg_failures[y]),
        }
        for y in range(count)
    ]


def year_block_specs(
    datacenter,
    plan,
    recharge_seconds: float,
    base_seed: int,
    years: int,
    block_years: int = DEFAULT_BLOCK_YEARS,
) -> List[Dict[str, Any]]:
    """Split ``years`` into contiguous block specs for the runner."""
    if years <= 0:
        raise SimulationError("years must be positive")
    if block_years <= 0:
        raise SimulationError("block_years must be positive")
    specs = []
    for start in range(0, years, block_years):
        specs.append(
            {
                "datacenter": datacenter,
                "plan": plan,
                "recharge_seconds": recharge_seconds,
                "base_seed": base_seed,
                "start": start,
                "count": min(block_years, years - start),
                "total_years": years,
            }
        )
    return specs
