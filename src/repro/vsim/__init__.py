"""repro.vsim: numpy-vectorized batch evaluation of outage cells.

The scalar simulator (:mod:`repro.sim.outage_sim`) plays one
(configuration, outage, seed) cell at a time.  This package evaluates
*batches* of cells as numpy arrays:

* :class:`~repro.vsim.kernel.PlanKernel` — one compiled (datacenter,
  plan) pair evaluating thousands of (duration, initial-SoC, dg-starts)
  cells in lockstep, replicating ``_OutageRun``'s control flow
  op-for-op so fault-free results are *bit-identical* to the scalar
  engine (see docs/BATCH.md for the equivalence argument).
* :mod:`~repro.vsim.yearly` — batch Monte-Carlo years threading
  cross-outage SoC and DG-start state exactly as
  :class:`~repro.sim.yearly.YearlyRunner` does, with the same
  SeedSequence spawn discipline as the runner's per-year jobs.
* :mod:`~repro.vsim.select` — kernel-backed ``evaluate_point`` used to
  accelerate the sweep/rank searches behind an ``engine="batch"`` flag.
* :mod:`~repro.vsim.equivalence` / :mod:`~repro.vsim.fuzz` — the
  certification harness: grid equivalence over every registered
  technique and the Table-3 configurations, plus a differential
  scalar-vs-batch fuzzer (``make batch-smoke``).
"""

from repro.vsim.kernel import BatchOutcomes, PlanKernel, simulate_outages_batch

__all__ = [
    "BatchOutcomes",
    "PlanKernel",
    "simulate_outages_batch",
]
