"""Scalar↔batch equivalence certification.

The batch kernel's contract is *bit-identical* fault-free outcomes, so
the comparison here is exact: every float field with ``==`` (NaN-free by
construction), every trace segment tuple-for-tuple.  There is no
tolerance envelope on the plan path — any nonzero difference is a bug in
one of the engines (see docs/BATCH.md for why exactness is attainable).

:func:`certify_grid` sweeps every registered technique over the Table-3
configurations (× workloads × durations × initial charges × DG-start
draws), runs both engines on each cell, guards the batch outcome with
:class:`repro.checks.InvariantGuard`, and reports every mismatch.
``make batch-smoke`` fails on a non-empty report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.checks.guard import InvariantGuard
from repro.core.configurations import PAPER_CONFIGURATIONS, BackupConfiguration
from repro.core.performability import make_datacenter, plan_power_budget_watts
from repro.errors import TechniqueError
from repro.sim.metrics import OutageOutcome
from repro.sim.outage_sim import simulate_outage
from repro.techniques.base import TechniqueContext
from repro.techniques.registry import get_technique, technique_names
from repro.vsim.kernel import PlanKernel
from repro.workloads.registry import get_workload

#: Outage durations certified by default: the Table-3 sweep's span (10 min
#: to 4 h) plus a short outage that ends inside the DG transfer gap.
DEFAULT_DURATIONS = (90.0, 600.0, 3600.0, 4 * 3600.0)

#: Initial charges certified by default: full, a partially recharged
#: string (back-to-back outage), and nearly flat.
DEFAULT_SOCS = (1.0, 0.35, 0.01)

DEFAULT_WORKLOADS = ("specjbb", "websearch")


@dataclass
class Mismatch:
    """One cell where the engines disagreed."""

    workload: str
    configuration: str
    technique: str
    outage_seconds: float
    initial_soc: float
    dg_starts: bool
    diffs: List[str]

    def __str__(self) -> str:
        head = (
            f"{self.workload}/{self.configuration}/{self.technique}"
            f" T={self.outage_seconds:g}s soc={self.initial_soc:g}"
            f" dg_starts={self.dg_starts}"
        )
        return head + "".join(f"\n    {d}" for d in self.diffs)


@dataclass
class CertificationReport:
    cells_compared: int = 0
    plans_skipped: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.cells_compared > 0

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        return (
            f"equivalence {status}: {self.cells_compared} cells compared, "
            f"{self.plans_skipped} infeasible plans skipped, "
            f"{len(self.mismatches)} mismatches"
        )


def _field_diffs(scalar: OutageOutcome, batch: OutageOutcome) -> List[str]:
    """Exact field-wise comparison; returns human-readable differences."""
    diffs: List[str] = []

    def cmp(name: str, a, b) -> None:
        equal = a == b
        if isinstance(a, float) and isinstance(b, float):
            equal = (a == b) or (math.isnan(a) and math.isnan(b))
        if not equal:
            diffs.append(f"{name}: scalar={a!r} batch={b!r}")

    for name in (
        "technique_name",
        "outage_seconds",
        "crashed",
        "crash_time_seconds",
        "state_preserved",
        "downtime_during_outage_seconds",
        "downtime_after_restore_seconds",
        "mean_performance",
        "ups_charge_consumed",
        "ups_state_of_charge_end",
        "ups_energy_joules",
        "dg_energy_joules",
        "peak_backup_power_watts",
        "restored_by_dg",
    ):
        a, b = getattr(scalar, name), getattr(batch, name)
        if name == "crash_time_seconds" and (a is None) != (b is None):
            diffs.append(f"{name}: scalar={a!r} batch={b!r}")
            continue
        if a is None and b is None:
            continue
        cmp(name, a, b)

    sa = scalar.trace.segments
    sb = batch.trace.segments
    if len(sa) != len(sb):
        diffs.append(f"trace: {len(sa)} scalar segments vs {len(sb)} batch")
    else:
        for i, (x, y) in enumerate(zip(sa, sb)):
            tx = (
                x.start_seconds, x.end_seconds, x.power_watts,
                x.performance, x.source, x.label,
            )
            ty = (
                y.start_seconds, y.end_seconds, y.power_watts,
                y.performance, y.source, y.label,
            )
            if tx != ty:
                diffs.append(f"trace[{i}]: scalar={tx!r} batch={ty!r}")
    return diffs


def compare_cell(
    datacenter,
    plan,
    outage_seconds: float,
    initial_soc: float = 1.0,
    dg_starts: bool = True,
    guard: Optional[InvariantGuard] = None,
    kernel: Optional[PlanKernel] = None,
) -> List[str]:
    """Run one cell through both engines; returns the diff list (empty ==
    equivalent).  The batch outcome is also pushed through ``guard``."""
    scalar = simulate_outage(
        datacenter,
        plan,
        outage_seconds,
        initial_state_of_charge=initial_soc,
        dg_starts=dg_starts,
    )
    if kernel is None:
        kernel = PlanKernel(datacenter, plan)
    batch = kernel.run(
        [outage_seconds],
        initial_state_of_charge=[initial_soc],
        dg_starts=[dg_starts],
        collect_traces=True,
    ).outcome(0)
    if guard is not None:
        guard.check_outcome(batch)
    return _field_diffs(scalar, batch)


def certify_grid(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    configurations: Sequence[BackupConfiguration] = PAPER_CONFIGURATIONS,
    techniques: Optional[Sequence[str]] = None,
    durations: Sequence[float] = DEFAULT_DURATIONS,
    socs: Sequence[float] = DEFAULT_SOCS,
    dg_start_cases: Sequence[bool] = (True, False),
    guard: Optional[InvariantGuard] = None,
    max_mismatches: int = 25,
) -> CertificationReport:
    """Certify batch==scalar over the registered-technique × Table-3 grid.

    One :class:`PlanKernel` is compiled per (workload, configuration,
    technique) and certifies the full duration × soc × dg cross product
    as one batch call, compared cell-by-cell against the scalar engine.
    """
    if techniques is None:
        techniques = technique_names()
    if guard is None:
        guard = InvariantGuard()
    report = CertificationReport()
    cells: List[Tuple[float, float, bool]] = [
        (T, s, d) for T in durations for s in socs for d in dg_start_cases
    ]
    for workload_name in workloads:
        workload = get_workload(workload_name)
        for configuration in configurations:
            datacenter = make_datacenter(workload, configuration)
            context = TechniqueContext(
                cluster=datacenter.cluster,
                workload=workload,
                power_budget_watts=plan_power_budget_watts(datacenter),
            )
            for technique_name in techniques:
                try:
                    plan = get_technique(technique_name).compile_plan(context)
                except TechniqueError:
                    report.plans_skipped += 1
                    continue
                kernel = PlanKernel(datacenter, plan)
                batch = kernel.run(
                    [c[0] for c in cells],
                    initial_state_of_charge=[c[1] for c in cells],
                    dg_starts=[c[2] for c in cells],
                    collect_traces=True,
                )
                for i, (T, soc, dg) in enumerate(cells):
                    scalar = simulate_outage(
                        datacenter,
                        plan,
                        T,
                        initial_state_of_charge=soc,
                        dg_starts=dg,
                    )
                    batch_outcome = batch.outcome(i)
                    guard.check_outcome(batch_outcome)
                    diffs = _field_diffs(scalar, batch_outcome)
                    report.cells_compared += 1
                    if diffs:
                        report.mismatches.append(
                            Mismatch(
                                workload=workload_name,
                                configuration=configuration.name,
                                technique=technique_name,
                                outage_seconds=T,
                                initial_soc=soc,
                                dg_starts=dg,
                                diffs=diffs,
                            )
                        )
                        if len(report.mismatches) >= max_mismatches:
                            return report
    return report
