"""The vectorized plan kernel: N outage cells through one compiled plan.

:class:`PlanKernel` is the batch twin of
:class:`repro.sim.outage_sim._OutageRun`.  It compiles one (datacenter,
plan) pair into per-phase constant arrays and then plays any number of
(outage duration, initial state of charge, dg-starts) cells *in lockstep*:
every iteration of the masked main loop mirrors exactly one trip through
the scalar while-loop, with per-cell boolean masks standing in for the
scalar's branches.

Equivalence contract (certified by :mod:`repro.vsim.equivalence` and the
differential fuzzer): for the fault-free plan path, every
:class:`~repro.sim.metrics.OutageOutcome` field — including the full
power trace when ``collect_traces=True`` — is **bit-identical** to the
scalar engine's.  This is achievable because both engines are IEEE-754
double arithmetic over the same operations in the same order:

* segment boundaries take the same ``min`` over the same candidates;
* battery bookkeeping applies the exact scalar expressions
  (``available = soc * full``; ``soc = max(0, soc - sustained / full)``)
  with per-phase ``full`` runtimes precomputed through the *same* spec
  methods the scalar stores call;
* trace integrals accumulate the same addends in the same (per-cell)
  order, so the float sums match term for term;
* the adaptive hold is the :func:`repro.sim.outage_sim.solve_hold_time`
  algebra re-expressed as a ``np.where`` cascade preserving branch order.

Faults and policies are out of scope: the kernel refuses them and the
wiring layers fall back to the scalar path (see docs/BATCH.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.datacenter import Datacenter
from repro.sim.metrics import OutageOutcome, SourceKind
from repro.sim.outage_sim import (
    _EPS,
    _RESERVE_SLACK,
    _PooledBackupStore,
    _ServerBackupStore,
)
from repro.sim.trace import PowerTrace
from repro.techniques.base import OutagePlan

#: Source codes used internally by the lockstep loop.
_SRC_NONE = 0
_SRC_DG = 1
_SRC_UPS = 2
_SRC_CRASH = -1

#: Safety bound on lockstep iterations; the scalar loop terminates after a
#: handful of boundary events per phase, so this is never reached by a
#: correct run.
_MAX_ITER_PER_PHASE = 8
_MAX_ITER_BASE = 32

_Segment = Tuple[float, float, float, float, str, str]


@dataclass
class BatchOutcomes:
    """Struct-of-arrays result of one :meth:`PlanKernel.run` call.

    Every array has one entry per cell, in submission order.  Fields
    mirror :class:`~repro.sim.metrics.OutageOutcome`; use
    :meth:`outcome` to materialise a scalar outcome (requires the run to
    have collected traces).
    """

    technique_name: str
    outage_seconds: np.ndarray
    crashed: np.ndarray
    crash_time_seconds: np.ndarray  # nan when not crashed
    downtime_during_outage_seconds: np.ndarray
    downtime_after_restore_seconds: np.ndarray
    mean_performance: np.ndarray
    ups_charge_consumed: np.ndarray
    ups_state_of_charge_end: np.ndarray
    ups_energy_joules: np.ndarray
    dg_energy_joules: np.ndarray
    peak_backup_power_watts: np.ndarray
    restored_by_dg: np.ndarray
    traces: Optional[List[List[_Segment]]] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.outage_seconds)

    @property
    def downtime_seconds(self) -> np.ndarray:
        return (
            self.downtime_during_outage_seconds
            + self.downtime_after_restore_seconds
        )

    def trace_of(self, i: int) -> PowerTrace:
        if self.traces is None:
            raise SimulationError(
                "run with collect_traces=True to materialise traces"
            )
        trace = PowerTrace()
        for start, end, power, perf, source, label in self.traces[i]:
            trace.record(start, end, power, perf, source, label)
        return trace

    def outcome(self, i: int) -> OutageOutcome:
        """Materialise cell ``i`` as a scalar :class:`OutageOutcome`."""
        crashed = bool(self.crashed[i])
        crash_time = (
            float(self.crash_time_seconds[i]) if crashed else None
        )
        return OutageOutcome(
            technique_name=self.technique_name,
            outage_seconds=float(self.outage_seconds[i]),
            crashed=crashed,
            crash_time_seconds=crash_time,
            state_preserved=not crashed,
            downtime_during_outage_seconds=float(
                self.downtime_during_outage_seconds[i]
            ),
            downtime_after_restore_seconds=float(
                self.downtime_after_restore_seconds[i]
            ),
            mean_performance=float(self.mean_performance[i]),
            ups_charge_consumed=float(self.ups_charge_consumed[i]),
            ups_state_of_charge_end=float(self.ups_state_of_charge_end[i]),
            ups_energy_joules=float(self.ups_energy_joules[i]),
            dg_energy_joules=float(self.dg_energy_joules[i]),
            peak_backup_power_watts=float(self.peak_backup_power_watts[i]),
            restored_by_dg=bool(self.restored_by_dg[i]),
            trace=self.trace_of(i),
        )

    def outcomes(self) -> List[OutageOutcome]:
        return [self.outcome(i) for i in range(len(self))]


class PlanKernel:
    """One (datacenter, plan) pair compiled for batch evaluation.

    Args:
        datacenter: The facility under study.
        plan: The technique's compiled plan.
        lost_work_seconds: Work to recompute after a crash (defaults to
            the workload's expected loss, as in the scalar engine).

    Raises:
        SimulationError: On plan shapes the scalar engine would also
            reject (active phase counts above the fleet for server-level
            packs, malformed adaptive tails when entered).
    """

    def __init__(
        self,
        datacenter: Datacenter,
        plan: OutagePlan,
        lost_work_seconds: Optional[float] = None,
    ):
        from repro.power.placement import UPSPlacement

        self.dc = datacenter
        self.plan = plan
        phases = list(plan.phases)
        self.num_phases = len(phases)
        n = self.num_phases

        self.power = np.array([p.power_watts for p in phases], dtype=float)
        self.perf = np.array([p.performance for p in phases], dtype=float)
        self.committed = np.array([p.committed for p in phases], dtype=bool)
        self.state_safe = np.array([p.state_safe for p in phases], dtype=bool)
        self.resume = np.array(
            [p.resume_downtime_seconds for p in phases], dtype=float
        )
        self.crash_perf = np.array(
            [p.crash_performance for p in phases], dtype=float
        )
        self.is_adaptive = np.array([p.is_adaptive for p in phases], dtype=bool)
        #: Fixed entry durations; nan for adaptive phases (solved at entry).
        self.fixed_duration = np.array(
            [
                math.nan if p.is_adaptive else float(p.duration_seconds)
                for p in phases
            ],
            dtype=float,
        )
        self.names = [p.name for p in phases]

        num_servers = datacenter.cluster.num_servers
        self.active_units = np.array(
            [
                num_servers if p.active_servers is None else p.active_servers
                for p in phases
            ],
            dtype=np.int64,
        )

        # -- UPS compilation -------------------------------------------------
        ups_spec = datacenter.ups
        self.has_ups = ups_spec.is_provisioned
        self.server_placed = (
            self.has_ups and ups_spec.placement is UPSPlacement.SERVER
        )
        self.num_servers = num_servers
        # A throwaway store instance answers the load-independent
        # questions (can_carry, drain_rate, full runtimes) through the
        # *same* code paths the scalar engine uses, so the compiled
        # constants are bit-identical by construction.
        if not self.has_ups:
            store = None
        elif self.server_placed:
            store = _ServerBackupStore(ups_spec, num_servers, 1.0)
        else:
            store = _PooledBackupStore(ups_spec, num_servers, 1.0)

        self.ups_can_carry = np.zeros(n, dtype=bool)
        #: Full (SoC=1) runtime per phase for the pooled store; unused for
        #: server placement (runtime depends on the monotone active set).
        self.pooled_full_runtime = np.full(n, math.inf)
        self.drain_rates = np.zeros(n, dtype=float)
        if store is not None:
            for j, p in enumerate(phases):
                self.ups_can_carry[j] = store.can_carry(
                    p.power_watts, p.active_servers
                )
                self.drain_rates[j] = store.drain_rate(
                    p.power_watts, p.active_servers
                )
                if not self.server_placed and self.ups_can_carry[j]:
                    self.pooled_full_runtime[j] = (
                        ups_spec.battery_spec.runtime_at(p.power_watts)
                    )
        if self.server_placed:
            bank = store._bank
            self.unit_cap = bank.unit_spec.rated_power_watts
            self.unit_runtime = bank.unit_spec.rated_runtime_seconds
            self.peukert_k = bank.unit_spec.peukert_exponent
            if int(self.active_units.max()) > num_servers or int(
                self.active_units.min()
            ) <= 0:
                # The bank's _apply_active raises this on the first query.
                from repro.errors import ConfigurationError

                raise ConfigurationError(
                    f"active_units must be in (0, {num_servers}]"
                )
        self.ups_rated_runtime = (
            ups_spec.rated_runtime_seconds if self.has_ups else 0.0
        )

        # -- adaptive-phase constants ---------------------------------------
        # For each adaptive index: (valid, rate_hold, rate_save,
        # committed_soc, committed_time), computed with plain Python float
        # accumulation in the scalar engine's summation order.
        self.adaptive_consts = {}
        for a in range(n):
            if not phases[a].is_adaptive:
                continue
            fixed = phases[a + 1 : -1]
            terminal = phases[-1]
            if any(p.is_adaptive or p.is_terminal for p in fixed):
                self.adaptive_consts[a] = None  # raise if ever entered
                continue
            if store is None:
                self.adaptive_consts[a] = (0.0, 0.0, 0.0, 0.0)
                continue
            rate_hold = (
                store.drain_rate(phases[a].power_watts, phases[a].active_servers)
                if phases[a].power_watts > 0
                else 0.0
            )
            rate_save = (
                store.drain_rate(terminal.power_watts, terminal.active_servers)
                if terminal.power_watts > 0
                else 0.0
            )
            committed_soc = sum(
                (
                    store.drain_rate(p.power_watts, p.active_servers)
                    if p.power_watts > 0
                    else 0.0
                )
                * float(p.duration_seconds)
                for p in fixed
            )
            committed_time = sum(float(p.duration_seconds) for p in fixed)
            self.adaptive_consts[a] = (
                rate_hold,
                rate_save,
                committed_soc,
                committed_time,
            )

        # -- DG compilation --------------------------------------------------
        gen = datacenter.generator
        self.dg_provisioned = gen.is_provisioned
        self.dg_cap = gen.power_capacity_watts
        self.dg_fuel0 = gen.fuel_energy_joules
        self.transfer_complete = gen.transfer_complete_seconds
        self.normal_power = datacenter.normal_power_watts
        self.dg_can_carry = self.dg_provisioned & (
            self.power <= self.dg_cap * (1 + 1e-9)
        )
        self.dg_carries_normal = self.dg_provisioned and (
            self.normal_power <= self.dg_cap * (1 + 1e-9)
        )

        self.seamless = datacenter.switchover_is_seamless
        self.recovery = datacenter.workload.crash_downtime_after_restore_seconds(
            datacenter.cluster.spec, lost_work_seconds=lost_work_seconds
        )

    # -- main entry ---------------------------------------------------------

    def run(
        self,
        outage_seconds,
        initial_state_of_charge=None,
        dg_starts=None,
        collect_traces: bool = False,
    ) -> BatchOutcomes:
        """Evaluate one cell per entry of ``outage_seconds``.

        Args:
            outage_seconds: Outage durations, one per cell (scalar ok).
            initial_state_of_charge: Battery charge at outage start per
                cell; default 1.0.
            dg_starts: Whether the DG engine starts, per cell; default
                True.
            collect_traces: Record the full power trace per cell (needed
                to materialise :class:`OutageOutcome` objects; leave off
                for aggregate-only Monte-Carlo runs).
        """
        T = np.atleast_1d(np.asarray(outage_seconds, dtype=float)).copy()
        n = len(T)
        if n == 0:
            raise SimulationError("batch must contain at least one cell")
        if np.any(T <= 0):
            raise SimulationError("outage duration must be positive")
        if initial_state_of_charge is None:
            soc = np.ones(n)
        else:
            soc = np.atleast_1d(
                np.asarray(initial_state_of_charge, dtype=float)
            ).copy()
            if len(soc) == 1 and n > 1:
                soc = np.full(n, soc[0])
        if np.any((soc < 0.0) | (soc > 1.0)):
            raise SimulationError("state of charge must be in [0, 1]")
        if dg_starts is None:
            starts = np.ones(n, dtype=bool)
        else:
            starts = np.atleast_1d(np.asarray(dg_starts, dtype=bool)).copy()
            if len(starts) == 1 and n > 1:
                starts = np.full(n, starts[0])
        if len(soc) != n or len(starts) != n:
            raise SimulationError("batch inputs must have matching lengths")
        return _BatchRun(self, T, soc, starts, collect_traces).execute()


class _BatchRun:
    """Mutable per-batch state (the kernel itself stays reusable)."""

    def __init__(
        self,
        kernel: PlanKernel,
        T: np.ndarray,
        soc0: np.ndarray,
        dg_starts: np.ndarray,
        collect_traces: bool,
    ):
        self.k = kernel
        self.n = len(T)
        self.T = T
        self.soc0 = soc0.copy()

        n = self.n
        self.t = np.zeros(n)
        self.idx = np.zeros(n, dtype=np.int64)
        self.phase_remaining = np.empty(n)
        self.soc = soc0.copy()
        self.fuel = np.full(n, kernel.dg_fuel0)
        #: Monotone active set for server-level packs (strands charge).
        self.units = np.full(n, kernel.num_servers, dtype=np.int64)

        self.dg_usable = kernel.dg_provisioned & dg_starts
        self.t_dg = np.where(
            self.dg_usable, kernel.transfer_complete, math.inf
        )
        self.dg_full = self.dg_usable & kernel.dg_carries_normal

        self.crashed = np.zeros(n, dtype=bool)
        self.crash_time = np.full(n, math.nan)
        self.restored = np.zeros(n, dtype=bool)
        self.downtime_after = np.zeros(n)
        self.done = np.zeros(n, dtype=bool)

        # Trace accumulators: same addends in the same per-cell order as
        # the scalar PowerTrace integrals over [0, T].
        self.covered_total = np.zeros(n)
        self.covered_up = np.zeros(n)
        self.perf_integral = np.zeros(n)
        self.peak_power = np.zeros(n)
        self.ups_energy = np.zeros(n)

        self.traces: Optional[List[List[_Segment]]] = (
            [[] for _ in range(n)] if collect_traces else None
        )

    # -- trace accumulation -------------------------------------------------

    def _accumulate(
        self,
        mask: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        power,
        perf,
        source: str,
        label,
    ) -> None:
        """Replicates ``PowerTrace.record`` + the [0, T] integrals.

        ``power``/``perf`` may be scalars or arrays; ``label`` may be a
        string or a per-cell sequence (phase names).  Zero-length
        segments are dropped, exactly as ``record`` drops them.
        """
        power = np.broadcast_to(np.asarray(power, dtype=float), (self.n,))
        perf = np.broadcast_to(np.asarray(perf, dtype=float), (self.n,))
        live = mask & (end > start)
        if not live.any():
            return
        # peak_power_watts: max over recorded segments' raw power.
        self.peak_power[live] = np.maximum(
            self.peak_power[live], power[live]
        )
        # Window overlap with [0, T], clamped as the scalar integrals do.
        lo = np.maximum(start, 0.0)
        hi = np.minimum(end, self.T)
        overlap = live & (hi > lo)
        if overlap.any():
            width = hi[overlap] - lo[overlap]
            self.covered_total[overlap] += width
            up = overlap & (perf > 0)
            self.covered_up[up] += hi[up] - lo[up]
            self.perf_integral[overlap] += perf[overlap] * width
        if self.traces is not None:
            for i in np.flatnonzero(live):
                name = label if isinstance(label, str) else label[i]
                self.traces[i].append(
                    (
                        float(start[i]),
                        float(end[i]),
                        float(power[i]),
                        float(perf[i]),
                        source,
                        name,
                    )
                )

    def _phase_labels(self, pidx: np.ndarray, suffix: str = "") -> List[str]:
        names = self.k.names
        return [names[j] + suffix for j in pidx]

    # -- battery / DG kernels -----------------------------------------------

    def _ups_full_runtime(self, mask: np.ndarray) -> np.ndarray:
        """Full (SoC=1) runtime at each masked cell's current phase load,
        via the exact expressions of the scalar stores."""
        k = self.k
        full = np.full(self.n, math.inf)
        if not k.has_ups:
            return full
        pidx = self.idx
        if not k.server_placed:
            full[mask] = k.pooled_full_runtime[pidx[mask]]
            return full
        # Server placement: per_unit over the *monotone* active set, the
        # same expression ServerLevelBatteryBank.remaining_runtime_at and
        # .discharge evaluate.
        power = k.power[pidx]
        per_unit = np.empty(self.n)
        per_unit[mask] = power[mask] / self.units[mask]
        # A non-monotone plan can shrink the monotone set below the
        # phase's own active count, overloading the survivors even though
        # the store-level can_carry (phase count) passed.  The bank's
        # query path reports 0 s remaining for that, so the segment has
        # zero length and the discharge never happens — replicate by
        # giving those cells a zero "full runtime".
        over = mask & (per_unit > k.unit_cap * (1 + 1e-9))
        ok = mask & ~over
        ratio = np.empty(self.n)
        ratio[ok] = k.unit_cap / per_unit[ok]
        full[ok] = k.unit_runtime * ratio[ok] ** k.peukert_k
        full[over] = 0.0
        return full

    def _ups_exhausted(self) -> np.ndarray:
        k = self.k
        if not k.has_ups:
            return np.ones(self.n, dtype=bool)
        if k.server_placed:
            return (self.soc <= 1e-12) | (k.unit_runtime <= 0)
        return (self.soc <= 1e-12) | (k.ups_rated_runtime <= 0)

    def _apply_active(self, mask: np.ndarray) -> None:
        """Shrink the monotone active set on UPS *queries*, stranding the
        parked packs' charge — the bank's ``_apply_active`` semantics."""
        if not self.k.server_placed or not mask.any():
            return
        phase_units = self.k.active_units[self.idx]
        self.units[mask] = np.minimum(self.units[mask], phase_units[mask])

    def _ups_carry(self, mask: np.ndarray, full: np.ndarray) -> None:
        """Discharge masked cells for their just-recorded segment, using
        the scalar ``Battery.discharge`` expressions."""
        power = self.k.power[self.idx]
        duration = self.seg_end - self.t
        # Battery.discharge returns before touching state when the
        # requested duration is zero (zero-length segments happen when a
        # query reported 0 s remaining); skipping those cells also keeps
        # the 0/0 out of the soc update.
        mask = mask & (duration > 0)
        if not mask.any():
            return
        available = np.empty(self.n)
        available[mask] = self.soc[mask] * full[mask]
        sustained = np.zeros(self.n)
        sustained[mask] = np.minimum(duration[mask], available[mask])
        self.soc[mask] = np.maximum(
            0.0, self.soc[mask] - sustained[mask] / full[mask]
        )
        self.ups_energy[mask] += power[mask] * sustained[mask]

    def _dg_carry(
        self, mask: np.ndarray, load, wanted: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``DieselGenerator.carry``: returns seconds sustained
        (== ``wanted`` where load <= 0 or wanted == 0, fuel untouched)."""
        load = np.broadcast_to(np.asarray(load, dtype=float), (self.n,))
        sustained = np.zeros(self.n)
        if not mask.any():
            return sustained
        trivial = mask & ((load <= 0) | (wanted == 0))
        sustained[trivial] = wanted[trivial]
        burn = mask & ~trivial
        if burn.any():
            sustained[burn] = np.minimum(
                wanted[burn], self.fuel[burn] / load[burn]
            )
            self.fuel[burn] -= load[burn] * sustained[burn]
        return sustained

    # -- adaptive phases ----------------------------------------------------

    def _enter_phase(self, mask: np.ndarray) -> None:
        """Set ``phase_remaining`` for cells that just entered ``idx``
        (vectorized ``_phase_duration_on_entry``)."""
        if not mask.any():
            return
        k = self.k
        fixed = mask & ~k.is_adaptive[self.idx]
        self.phase_remaining[fixed] = k.fixed_duration[self.idx[fixed]]
        adaptive = mask & k.is_adaptive[self.idx]
        if not adaptive.any():
            return
        for a in np.unique(self.idx[adaptive]):
            cells = adaptive & (self.idx == a)
            self._adaptive_hold(cells, int(a))

    def _adaptive_hold(self, mask: np.ndarray, a: int) -> None:
        """Vectorized ``_OutageRun._adaptive_hold`` +
        :func:`~repro.sim.outage_sim.solve_hold_time` for phase ``a``."""
        k = self.k
        horizon = np.where(
            self.dg_full, np.minimum(self.T, self.t_dg), self.T
        )
        rw = horizon - self.t
        if not k.has_ups:
            # No battery to ration: hold to the horizon (clamped at 0).
            self.phase_remaining[mask] = np.where(
                rw[mask] <= 0, 0.0, rw[mask]
            )
            return
        consts = k.adaptive_consts.get(a)
        if consts is None:
            raise SimulationError("plan has multiple adaptive/terminal phases")
        rate_hold, rate_save, committed_soc, committed_time = consts
        soc = self.soc * (1.0 - _RESERVE_SLACK)
        # solve_hold_time as a branch-order-preserving where-cascade.
        if math.isinf(rate_hold):
            self.phase_remaining[mask] = np.where(rw[mask] <= 0, 0.0, 0.0)
            return
        ride = rate_hold * rw <= soc
        max_hold = np.maximum(0.0, rw - committed_time)
        if rate_hold <= rate_save + _EPS:
            tail = max_hold
        else:
            budget = soc - committed_soc - max_hold * rate_save
            hold = budget / (rate_hold - rate_save)
            # Python's min/max, not numpy's: max(0.0, nan) is 0.0 for the
            # builtin (the comparison fails, the first argument wins), and
            # a nan budget does occur when a committed phase pairs an
            # infinite drain rate with a zero duration.
            clipped = np.where(hold > 0.0, hold, 0.0)
            tail = np.where(max_hold < clipped, max_hold, clipped)
        result = np.where(rw <= 0, 0.0, np.where(ride, rw, tail))
        self.phase_remaining[mask] = result[mask]

    # -- terminal paths -----------------------------------------------------

    def _utility_restore(self, mask: np.ndarray) -> None:
        if not mask.any():
            return
        k = self.k
        pidx = self.idx
        cr = np.where(
            k.committed[pidx] & np.isfinite(self.phase_remaining),
            np.maximum(0.0, self.phase_remaining),
            0.0,
        )
        self.downtime_after[mask] = (
            cr[mask] * (1.0 - k.perf[pidx[mask]]) + k.resume[pidx[mask]]
        )
        self.done[mask] = True

    def _crash(self, mask: np.ndarray, when: np.ndarray) -> None:
        """Vectorized ``_OutageRun._crash`` (fault-free: no run limits)."""
        if not mask.any():
            return
        k = self.k
        pidx = self.idx
        cp = k.crash_perf[pidx]
        self.crashed[mask] = True
        self.crash_time[mask] = when[mask]
        power_return = np.where(
            self.dg_full, np.minimum(self.T, self.t_dg), self.T
        )
        power_return = np.maximum(power_return, when)
        recovery_end = power_return + k.recovery
        self._accumulate(
            mask & (cp > 0) & (power_return > when),
            when,
            power_return,
            0.0,
            cp,
            SourceKind.NONE.value,
            "degraded-after-local-loss",
        )
        on_dg = mask & (power_return < self.T)
        if on_dg.any():
            boot_end = np.minimum(recovery_end, self.T)
            self._accumulate(
                on_dg,
                power_return,
                boot_end,
                k.normal_power,
                cp,
                SourceKind.DG.value,
                "crash-recovery",
            )
            self._dg_carry(on_dg, k.normal_power, boot_end - power_return)
            serving = on_dg & (recovery_end < self.T)
            if serving.any():
                wanted = np.zeros(self.n)
                wanted[serving] = self.T[serving] - recovery_end[serving]
                sustained = self._dg_carry(serving, k.normal_power, wanted)
                self._accumulate(
                    serving,
                    recovery_end,
                    recovery_end + sustained,
                    k.normal_power,
                    1.0,
                    SourceKind.DG.value,
                    "full-service-on-dg",
                )
            self.downtime_after[on_dg] = np.maximum(
                0.0, recovery_end[on_dg] - self.T[on_dg]
            ) * (1.0 - cp[on_dg])
        off_dg = mask & ~on_dg
        self.downtime_after[off_dg] = k.recovery * (1.0 - cp[off_dg])
        self.t[mask] = self.T[mask]
        self.done[mask] = True

    def _dg_died(self, mask: np.ndarray, when: np.ndarray) -> None:
        """Vectorized ``_OutageRun._dg_died`` — fuel ran out while the DG
        carried the restored fleet."""
        if not mask.any():
            return
        k = self.k
        cp = k.crash_perf[self.idx]
        self.dg_full[mask] = False
        self.restored[mask] = False
        self.crashed[mask] = True
        self.crash_time[mask] = when[mask]
        self._accumulate(
            mask & (cp > 0) & (self.T > when),
            when,
            self.T,
            0.0,
            cp,
            SourceKind.NONE.value,
            "degraded-after-local-loss",
        )
        self.downtime_after[mask] = k.recovery * (1.0 - cp[mask])
        self.t[mask] = self.T[mask]
        self.done[mask] = True

    def _dg_restore(self, mask: np.ndarray) -> None:
        """Vectorized ``_OutageRun._internal_dg_restore``."""
        if not mask.any():
            return
        k = self.k
        pidx = self.idx
        cr = np.where(
            k.committed[pidx] & np.isfinite(self.phase_remaining),
            np.maximum(0.0, self.phase_remaining),
            0.0,
        )
        resume = k.resume[pidx]
        start = np.maximum(self.t, self.t_dg)
        commit_end = start + cr
        resume_end = commit_end + resume
        self.restored[mask] = True
        alive = mask.copy()

        # Committed-completion segment.
        seg = alive & (cr > 0)
        if seg.any():
            seg_end = np.minimum(commit_end, self.T)
            seg &= seg_end > start
            wanted = np.zeros(self.n)
            wanted[seg] = seg_end[seg] - start[seg]
            load = np.minimum(k.power[pidx], k.normal_power)
            sustained = self._dg_carry(seg, load, wanted)
            self._accumulate(
                seg & (sustained > 0),
                start,
                start + sustained,
                k.power[pidx],
                k.perf[pidx],
                SourceKind.DG.value,
                self._phase_labels(pidx, "-completing"),
            )
            died = seg & (sustained < wanted - _EPS)
            self._dg_died(died, start + sustained)
            alive &= ~died
        # Resume segment.
        seg = alive & (resume > 0)
        if seg.any():
            seg_start = np.minimum(commit_end, self.T)
            seg_end = np.minimum(resume_end, self.T)
            seg &= seg_end > seg_start
            wanted = np.zeros(self.n)
            wanted[seg] = seg_end[seg] - seg_start[seg]
            sustained = self._dg_carry(seg, k.normal_power, wanted)
            self._accumulate(
                seg & (sustained > 0),
                seg_start,
                seg_start + sustained,
                k.normal_power,
                0.0,
                SourceKind.DG.value,
                "resuming",
            )
            died = seg & (sustained < wanted - _EPS)
            self._dg_died(died, seg_start + sustained)
            alive &= ~died
        # Full service on DG until utility returns.
        seg = alive & (resume_end < self.T)
        if seg.any():
            wanted = np.zeros(self.n)
            wanted[seg] = self.T[seg] - resume_end[seg]
            sustained = self._dg_carry(seg, k.normal_power, wanted)
            self._accumulate(
                seg & (sustained > 0),
                resume_end,
                resume_end + sustained,
                k.normal_power,
                1.0,
                SourceKind.DG.value,
                "full-service-on-dg",
            )
            died = seg & (sustained < wanted - _EPS)
            self._dg_died(died, resume_end + sustained)
            alive &= ~died
        self.downtime_after[alive] = np.maximum(
            0.0, resume_end[alive] - self.T[alive]
        )
        self.t[alive] = self.T[alive]
        self.done[alive] = True

    # -- main loop ----------------------------------------------------------

    def execute(self) -> BatchOutcomes:
        k = self.k
        self._enter_phase(np.ones(self.n, dtype=bool))

        # Section 3's seamlessness precondition (no PSU faults here).
        if not k.seamless and k.power[0] > 0:
            self._crash(np.ones(self.n, dtype=bool), np.zeros(self.n))

        max_iter = _MAX_ITER_BASE + _MAX_ITER_PER_PHASE * k.num_phases
        iterations = 0
        while not self.done.all():
            iterations += 1
            if iterations > max_iter:
                raise SimulationError(
                    "batch kernel failed to converge (loop bound exceeded)"
                )
            live = ~self.done

            # Loop-condition exit -> utility restore.
            at_end = live & (self.t >= self.T - _EPS)
            self._utility_restore(at_end)
            live &= ~at_end
            if not live.any():
                continue

            # Full-capacity DG arrival at the top of the loop.
            arrive = live & self.dg_full & (self.t >= self.t_dg - _EPS)
            self._dg_restore(arrive)
            live &= ~self.done
            if not live.any():
                continue

            pidx = self.idx
            power = k.power[pidx]

            # Source selection, in the scalar engine's preference order.
            src = np.full(self.n, _SRC_CRASH, dtype=np.int8)
            src[live & (power <= 0)] = _SRC_NONE
            dg_ok = (
                live
                & (power > 0)
                & self.dg_usable
                & (self.t >= self.t_dg - _EPS)
                & k.dg_can_carry[pidx]
                & (self.fuel > 0)
            )
            src[dg_ok] = _SRC_DG
            ups_ok = (
                live
                & (power > 0)
                & ~dg_ok
                & k.ups_can_carry[pidx]
                & ~self._ups_exhausted()
            )
            src[ups_ok] = _SRC_UPS
            nobody = live & (src == _SRC_CRASH)
            self._crash(nobody, self.t.copy())
            live &= ~nobody
            if not live.any():
                continue

            is_ups = live & (src == _SRC_UPS)
            is_dg = live & (src == _SRC_DG)

            # Segment end: min over the scalar candidate list.
            self._apply_active(is_ups)  # store query strands charge first
            full = self._ups_full_runtime(is_ups)
            seg_end = self.T.copy()
            before_dg = live & self.dg_usable & (self.t < self.t_dg)
            seg_end[before_dg] = np.minimum(
                seg_end[before_dg], self.t_dg[before_dg]
            )
            finite_phase = live & np.isfinite(self.phase_remaining)
            seg_end[finite_phase] = np.minimum(
                seg_end[finite_phase],
                self.t[finite_phase] + self.phase_remaining[finite_phase],
            )
            if is_ups.any():
                remaining = np.zeros(self.n)
                remaining[is_ups] = self.soc[is_ups] * full[is_ups]
                seg_end[is_ups] = np.minimum(
                    seg_end[is_ups], self.t[is_ups] + remaining[is_ups]
                )
            if is_dg.any():
                seg_end[is_dg] = np.minimum(
                    seg_end[is_dg],
                    self.t[is_dg] + self.fuel[is_dg] / power[is_dg],
                )
            self.seg_end = seg_end
            if np.any(seg_end[live] < self.t[live]):
                raise SimulationError("segment moved backwards")

            # Advance: record the segment, then carry.  Sources differ per
            # cell; record per source bucket so the trace strings match.
            self._accumulate(
                is_ups, self.t, seg_end, power, k.perf[pidx],
                SourceKind.UPS.value, self._phase_labels(pidx),
            )
            self._accumulate(
                is_dg, self.t, seg_end, power, k.perf[pidx],
                SourceKind.DG.value, self._phase_labels(pidx),
            )
            none_m = live & (src == _SRC_NONE)
            self._accumulate(
                none_m, self.t, seg_end, power, k.perf[pidx],
                SourceKind.NONE.value, self._phase_labels(pidx),
            )
            self._ups_carry(is_ups, full)
            if is_dg.any():
                wanted = np.zeros(self.n)
                wanted[is_dg] = seg_end[is_dg] - self.t[is_dg]
                self._dg_carry(is_dg, power, wanted)
            self.phase_remaining[finite_phase] -= (
                seg_end[finite_phase] - self.t[finite_phase]
            )
            self.t[live] = seg_end[live]

            # Dispatch the boundary, preserving the scalar branch order.
            pending = live & (seg_end < self.T - _EPS)
            at_dg = (
                pending
                & self.dg_usable
                & (np.abs(seg_end - self.t_dg) <= _EPS)
            )
            self._dg_restore(at_dg & self.dg_full)
            # A not-yet-full-capacity DG arriving exactly on a phase
            # boundary must still let the phase advance (the scalar
            # engine's coincidence fix); only defer cells whose phase has
            # time left.
            defer = at_dg & ~self.dg_full & (self.phase_remaining > _EPS)
            pending &= ~(at_dg & self.dg_full) & ~defer
            phase_over = pending & (self.phase_remaining <= _EPS)
            dry = pending & ~phase_over
            # Battery/DG ran dry mid-phase: state-safe phases wait at 0 W,
            # everything else crashes now.
            safe = dry & k.state_safe[pidx]
            self.phase_remaining[safe] = math.inf
            self._crash(dry & ~safe, seg_end.copy())
            # Phase transitions last: idx advances, entry durations solve.
            if phase_over.any():
                self.idx[phase_over] += 1
                if np.any(self.idx[phase_over] >= k.num_phases):
                    raise SimulationError("ran past the terminal phase")
                self._enter_phase(phase_over)

        return self._outcomes()

    # -- outcome assembly ---------------------------------------------------

    def _outcomes(self) -> BatchOutcomes:
        k = self.k
        window = self.T
        downtime_during = (window - self.covered_total) + (
            self.covered_total - self.covered_up
        )
        mean_perf = self.perf_integral / window
        if k.has_ups:
            soc_end = self.soc
            charge_used = self.soc0 - soc_end
            ups_energy = self.ups_energy
        else:
            soc_end = np.zeros(self.n)
            charge_used = np.zeros(self.n)
            ups_energy = np.zeros(self.n)
        return BatchOutcomes(
            technique_name=k.plan.technique_name,
            outage_seconds=self.T,
            crashed=self.crashed,
            crash_time_seconds=self.crash_time,
            downtime_during_outage_seconds=downtime_during,
            downtime_after_restore_seconds=self.downtime_after,
            mean_performance=mean_perf,
            ups_charge_consumed=charge_used,
            ups_state_of_charge_end=soc_end,
            ups_energy_joules=ups_energy,
            dg_energy_joules=k.dg_fuel0 - self.fuel,
            peak_backup_power_watts=self.peak_power,
            restored_by_dg=self.restored,
            traces=self.traces,
        )


def simulate_outages_batch(
    datacenter: Datacenter,
    plan: OutagePlan,
    outage_seconds,
    initial_state_of_charge=None,
    dg_starts=None,
    lost_work_seconds: Optional[float] = None,
    collect_traces: bool = False,
) -> BatchOutcomes:
    """Functional convenience wrapper over :class:`PlanKernel`."""
    kernel = PlanKernel(datacenter, plan, lost_work_seconds=lost_work_seconds)
    return kernel.run(
        outage_seconds,
        initial_state_of_charge=initial_state_of_charge,
        dg_starts=dg_starts,
        collect_traces=collect_traces,
    )
