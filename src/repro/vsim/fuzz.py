"""Scalar↔batch differential fuzzing.

The equivalence grid (:mod:`repro.vsim.equivalence`) certifies the
curated Table-3 surface; this module hunts the corners it cannot reach:
random configurations off the Table-3 grid (fractional capacities,
zero-runtime strings), adversarial outage durations snapped onto the
boundaries where engine disagreements live (the DG transfer instant,
phase-commit edges, ±epsilon perturbations of both), random initial
charges, failed DG starts, and whole random *years* compared through the
two yearly paths.

Every case is an independent :mod:`repro.runner` job seeded by case
index, so any divergence is reproducible in isolation and can be pinned
as a regression test (see ``tests/sim/test_vsim_regressions.py`` for the
divergences this fuzzer has already caught and killed — notably the
scalar dispatcher's infinite loop when a DG arrival coincides with a
phase boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.checks.fuzz import FUZZ_TECHNIQUES, random_configuration
from repro.core.performability import make_datacenter, plan_power_budget_watts
from repro.errors import TechniqueError
from repro.runner import BaseExecutor, SerialExecutor, make_jobs
from repro.sim.outage_sim import simulate_outage
from repro.techniques.base import TechniqueContext
from repro.techniques.registry import get_technique
from repro.units import minutes
from repro.vsim.equivalence import _field_diffs
from repro.vsim.kernel import PlanKernel
from repro.vsim.yearly import simulate_year_block
from repro.workloads.registry import get_workload, workload_names

Record = Dict[str, Any]

#: Single-outage cells sampled per fuzz case.
CELLS_PER_CASE = 12

#: Random years compared through the two yearly paths per fuzz case.
YEARS_PER_CASE = 2


@dataclass(frozen=True)
class DiffReport:
    """Outcome of one differential fuzz run."""

    records: Sequence[Record]

    @property
    def mismatches(self) -> List[str]:
        found: List[str] = []
        for record in self.records:
            found.extend(record.get("mismatches", ()))
        return found

    @property
    def cases_run(self) -> int:
        return len(self.records)

    @property
    def cells_compared(self) -> int:
        return sum(int(r.get("cells", 0)) for r in self.records)

    @property
    def ok(self) -> bool:
        return not self.mismatches and self.cells_compared > 0

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        return (
            f"differential fuzz {status}: {self.cases_run} cases, "
            f"{self.cells_compared} cells compared, "
            f"{len(self.mismatches)} mismatch"
            f"{'es' if len(self.mismatches) != 1 else ''}"
        )


def _boundary_durations(
    rng: np.random.Generator, datacenter, plan
) -> List[float]:
    """Adversarial outage durations for this (datacenter, plan) pair.

    Random log-uniform draws cover the bulk; the rest snap onto the exact
    boundaries the engines must agree about — the DG transfer instant and
    cumulative phase-commit edges — plus ±1e-7 s perturbations to probe
    the ``_EPS`` tolerance band from both sides.
    """
    anchors: List[float] = []
    if datacenter.generator.is_provisioned:
        anchors.append(datacenter.generator.transfer_complete_seconds)
    cumulative = 0.0
    for phase in plan.phases:
        if phase.duration_seconds is None or not np.isfinite(
            phase.duration_seconds
        ):
            break
        cumulative += phase.duration_seconds
        if cumulative > 0:
            anchors.append(cumulative)
    durations: List[float] = [
        float(np.exp(rng.uniform(np.log(15.0), np.log(6 * 3600.0))))
        for _ in range(CELLS_PER_CASE // 2)
    ]
    while len(durations) < CELLS_PER_CASE and anchors:
        anchor = float(rng.choice(anchors))
        jitter = float(rng.choice([0.0, 1e-7, -1e-7, 0.05, -0.05]))
        if anchor + jitter > 0:
            durations.append(anchor + jitter)
        else:
            durations.append(anchor)
    while len(durations) < CELLS_PER_CASE:
        durations.append(float(rng.uniform(30.0, 3600.0)))
    return durations


def differential_case(spec: Mapping[str, Any], seed=None) -> Record:
    """Runner job: one random (config, plan) pair, fuzzed on both engines.

    The random stream is derived from the spec alone (``base_seed``,
    ``case``), never from the runner-supplied ``seed``, so a failing case
    replays identically via ``differential_case({"case": i})``.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence((int(spec.get("base_seed", 0)), int(spec["case"])))
    )
    mismatches: List[str] = []

    configuration = random_configuration(rng)
    workload = get_workload(str(rng.choice(workload_names())))
    technique_name = str(rng.choice(FUZZ_TECHNIQUES))
    num_servers = int(rng.choice([4, 8, 16]))
    record: Record = {
        "case": int(spec["case"]),
        "configuration": (
            configuration.dg_power_fraction,
            configuration.ups_power_fraction,
            configuration.ups_runtime_seconds,
        ),
        "workload": workload.name,
        "technique": technique_name,
        "cells": 0,
        "skipped": False,
        "mismatches": mismatches,
    }

    datacenter = make_datacenter(workload, configuration, num_servers=num_servers)
    context = TechniqueContext(
        cluster=datacenter.cluster,
        workload=workload,
        power_budget_watts=plan_power_budget_watts(datacenter),
    )
    plan = None
    for candidate in (technique_name, "throttle+sleep-l", "sleep-l", "full-service"):
        try:
            plan = get_technique(candidate).compile_plan(context)
        except TechniqueError:
            continue
        if candidate != technique_name:
            record["technique"] = f"{technique_name}->{candidate}"
        break
    if plan is None:
        record["skipped"] = True
        return record

    kernel = PlanKernel(datacenter, plan)

    # -- single outages: adversarial durations x random charge/DG draws ---
    durations = _boundary_durations(rng, datacenter, plan)
    socs = [float(rng.choice([1.0, 0.0, rng.uniform(0.0, 1.0)])) for _ in durations]
    dgs = [bool(rng.random() < 0.7) for _ in durations]
    batch = kernel.run(
        durations,
        initial_state_of_charge=socs,
        dg_starts=dgs,
        collect_traces=True,
    )
    for i, (duration, soc, dg) in enumerate(zip(durations, socs, dgs)):
        scalar = simulate_outage(
            datacenter,
            plan,
            duration,
            initial_state_of_charge=soc,
            dg_starts=dg,
        )
        diffs = _field_diffs(scalar, batch.outcome(i))
        record["cells"] += 1
        if diffs:
            mismatches.append(
                f"case {spec['case']} cell {i} "
                f"({record['workload']}/{record['technique']} "
                f"T={duration!r} soc={soc!r} dg={dg}): " + "; ".join(diffs)
            )

    # -- whole years through both yearly paths ----------------------------
    from repro.analysis.availability import _simulate_year

    base_seed = int(spec["case"]) * 1_000_003 + 17
    recharge = float(rng.choice([minutes(30), 8 * 3600.0, 24 * 3600.0]))
    year_spec = {
        "datacenter": datacenter,
        "plan": plan,
        "recharge_seconds": recharge,
    }
    year_seeds = np.random.SeedSequence(base_seed).spawn(YEARS_PER_CASE)
    scalar_years = [
        _simulate_year(year_spec, year_seed) for year_seed in year_seeds
    ]
    batch_years = simulate_year_block(
        {
            **year_spec,
            "base_seed": base_seed,
            "start": 0,
            "count": YEARS_PER_CASE,
            "total_years": YEARS_PER_CASE,
        }
    )
    for y, (a, b) in enumerate(zip(scalar_years, batch_years)):
        record["cells"] += 1
        if a != b:
            mismatches.append(
                f"case {spec['case']} year {y} "
                f"({record['workload']}/{record['technique']} "
                f"recharge={recharge:g}): scalar={a!r} batch={b!r}"
            )
    return record


def run_diff_fuzz(
    cases: int = 100,
    base_seed: int = 0,
    executor: Optional[BaseExecutor] = None,
) -> DiffReport:
    """Run ``cases`` independent differential fuzz cases.

    Each case's stream is a function of ``(base_seed, case)`` only, so
    runs are reproducible at any worker count and any failing case
    replays alone via ``differential_case({"base_seed": s, "case": i})``.
    """
    if cases <= 0:
        raise ValueError("cases must be positive")
    if executor is None:
        executor = SerialExecutor()
    jobs = make_jobs(
        differential_case,
        [{"case": i, "base_seed": base_seed} for i in range(cases)],
        labels=[f"case={i}" for i in range(cases)],
    )
    return DiffReport(records=list(executor.run(jobs).values))
