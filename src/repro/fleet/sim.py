"""Monte-Carlo fleet years: every site simulated, every shock shared.

One :func:`simulate_fleet_year` job runs the whole fleet through one
year: each site draws its own Figure 1 outage schedule and DG start
rolls *exactly* as the certified single-site path does, the regional
shock layer merges correlated events in, the per-site simulator runs
each (possibly extended) schedule, and the routing layer integrates
where displaced load went.

**Seed discipline** (the property the independence regression pins):
the per-year seed spawns one child per site, in fleet order, and the
shock stream's child strictly *after* them — SeedSequence children are
positional, so a site's randomness depends only on (year seed, site
position), never on the shock layer, the routing flag, or any other
site.  Each site child then spawns ``(schedule_seed, dg_seed)`` exactly
as :func:`repro.analysis.availability._simulate_year` does, and with
shocks disabled the merged schedule *is* the base schedule object — so
a fleet of uncorrelated sites reproduces the single-site yearly
aggregates bit-identically, and the fleet layer can never perturb the
certified single-site path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.performability import make_datacenter, plan_power_budget_watts
from repro.errors import RunnerError, TechniqueError
from repro.fleet.correlation import RegionalShockSampler, merge_outage_events
from repro.fleet.routing import OutageWindow, SiteTimeline, route_fleet_year
from repro.fleet.spec import FleetSpec, SiteSpec
from repro.obs import current_metrics, current_tracer
from repro.outages.generator import OutageGenerator
from repro.power.ups import DEFAULT_RECHARGE_SECONDS
from repro.runner.cache import ResultCache
from repro.runner.executor import BaseExecutor, make_executor
from repro.runner.jobs import Job, make_jobs
from repro.runner.progress import ProgressListener
from repro.sim.yearly import YearlyRunner
from repro.techniques.base import TechniqueContext
from repro.units import SECONDS_PER_YEAR, to_minutes


def _site_plant(site: SiteSpec):
    """Materialise a site's (datacenter, plan), availability-style.

    Mirrors :meth:`repro.analysis.availability.AvailabilityAnalyzer.prepare`:
    an uncompilable technique degrades to the full-service crash-through
    rather than failing the year.
    """
    from repro.techniques.registry import get_technique
    from repro.workloads.registry import get_workload

    workload = get_workload(site.workload)
    from repro.core.configurations import get_configuration

    datacenter = make_datacenter(
        workload, get_configuration(site.configuration), site.servers
    )
    context = TechniqueContext(
        cluster=datacenter.cluster,
        workload=workload,
        power_budget_watts=plan_power_budget_watts(datacenter),
    )
    try:
        plan = get_technique(site.technique).compile_plan(context)
    except TechniqueError:
        from repro.techniques.nop import FullService

        plan = FullService().compile_plan(
            TechniqueContext(cluster=datacenter.cluster, workload=workload)
        )
    return datacenter, plan


def simulate_fleet_year(
    spec: Mapping[str, Any], seed: Optional[np.random.SeedSequence]
) -> Dict[str, Any]:
    """Runner job: one fleet year, reduced to per-site and fleet aggregates.

    The spec carries ``fleet`` (a :class:`~repro.fleet.spec.FleetSpec`)
    and ``routing`` (whether displaced load fails over).  The per-site
    blocks use the exact field names of the single-site year job, so
    the independence regression can compare dicts with ``==``.
    """
    if seed is None:
        raise RunnerError("simulate_fleet_year requires a seeded job")
    fleet: FleetSpec = spec["fleet"]
    routing: bool = bool(spec["routing"])

    site_seeds = seed.spawn(len(fleet.sites))
    (shock_seed,) = seed.spawn(1)
    shocks = RegionalShockSampler(fleet).sample_year(
        np.random.default_rng(shock_seed)
    )
    shock_site_hits = sum(len(events) for events in shocks.values())

    tracer = current_tracer()
    metrics = current_metrics()

    sites: Dict[str, Dict[str, float]] = {}
    timelines: List[SiteTimeline] = []
    for site, site_seed in zip(fleet.sites, site_seeds):
        schedule_seed, dg_seed = site_seed.spawn(2)
        generator = OutageGenerator(seed=schedule_seed)
        schedule = merge_outage_events(
            generator.sample_year(), shocks[site.name]
        )
        datacenter, plan = _site_plant(site)
        runner = YearlyRunner(
            datacenter,
            plan,
            recharge_seconds=DEFAULT_RECHARGE_SECONDS,
            rng=np.random.default_rng(dg_seed),
        )
        result = runner.run_schedule(schedule)
        perf_sum = 0.0
        perf_weight = 0.0
        windows = []
        for event, outcome in zip(result.events, result.outcomes):
            perf_sum += outcome.mean_performance * event.duration_seconds
            perf_weight += event.duration_seconds
            windows.append(
                OutageWindow(
                    start_seconds=event.start_seconds,
                    end_seconds=event.end_seconds,
                    performance=min(1.0, max(0.0, outcome.mean_performance)),
                )
            )
        sites[site.name] = {
            "downtime_seconds": result.total_downtime_seconds,
            "crashes": float(result.crashes),
            "outages": float(len(result.outcomes)),
            "perf_sum": perf_sum,
            "perf_weight": perf_weight,
            "dg_start_failures": float(result.dg_start_failures),
        }
        timelines.append(
            SiteTimeline(
                name=site.name,
                capacity=site.capacity,
                load=site.load,
                power_region=site.power_region,
                rtt_seconds=site.rtt_seconds,
                windows=tuple(windows),
            )
        )

    totals = route_fleet_year(
        timelines,
        SECONDS_PER_YEAR,
        fleet.redirect_seconds,
        routing=routing,
    )
    totals["shock_site_hits"] = float(shock_site_hits)

    if metrics is not None:
        metrics.counter("fleet.years").inc()
        if shock_site_hits:
            metrics.counter("fleet.shock_site_hits").inc(shock_site_hits)
        if totals["max_simultaneous_outages"] >= 2:
            metrics.counter("fleet.multi_site_years").inc()
    if tracer is not None:
        tracer.event(
            "fleet-year",
            fleet=fleet.name,
            routing=routing,
            shock_site_hits=shock_site_hits,
            max_simultaneous=totals["max_simultaneous_outages"],
        )
    return {"sites": sites, "fleet": totals}


def reduce_fleet_years(
    values: Sequence[Mapping[str, Any]],
    fleet: FleetSpec,
    routing: bool,
) -> Dict[str, Any]:
    """Fold fleet-year job values into the fleet report payload.

    Plain JSON-able dict, deterministic in input order — serve and CLI
    fold identical lists identically.
    """
    if not values:
        raise RunnerError("cannot reduce zero fleet years")
    years = len(values)
    demand = sum(v["fleet"]["demand"] for v in values)
    served = sum(v["fleet"]["served"] for v in values)
    remote = sum(v["fleet"]["remote_served"] for v in values)
    total_load = fleet.total_load
    unserved_eq = np.array(
        [
            (v["fleet"]["demand"] - v["fleet"]["served"]) / total_load
            if total_load > 0
            else 0.0
            for v in values
        ]
    )
    fully_served = np.array(
        [v["fleet"]["fully_served_seconds"] for v in values]
    )
    simultaneous = np.array(
        [v["fleet"]["simultaneous_outage_seconds"] for v in values]
    )
    multi_years = sum(
        1 for v in values if v["fleet"]["max_simultaneous_outages"] >= 2
    )

    per_site: Dict[str, Dict[str, float]] = {}
    for site in fleet.sites:
        downtime = np.array(
            [v["sites"][site.name]["downtime_seconds"] for v in values]
        )
        outages = sum(v["sites"][site.name]["outages"] for v in values)
        crashes = sum(v["sites"][site.name]["crashes"] for v in values)
        per_site[site.name] = {
            "mean_downtime_minutes_per_year": to_minutes(float(downtime.mean())),
            "availability": 1.0 - float(downtime.mean()) / SECONDS_PER_YEAR,
            "outages": float(outages),
            "crash_fraction": crashes / outages if outages else 0.0,
            "dg_start_failures": float(
                sum(v["sites"][site.name]["dg_start_failures"] for v in values)
            ),
        }

    return {
        "fleet": fleet.name,
        "routing": routing,
        "years_simulated": years,
        "sites": [site.name for site in fleet.sites],
        "performability": served / demand if demand > 0 else 1.0,
        "availability": float(fully_served.mean()) / SECONDS_PER_YEAR,
        # unserved_eq is already seconds: (load x seconds) / load.
        "mean_unserved_seconds_per_year": float(unserved_eq.mean()),
        "p95_unserved_seconds_per_year": float(np.percentile(unserved_eq, 95)),
        "remote_served_fraction": remote / demand if demand > 0 else 0.0,
        "multi_site_outage_probability": multi_years / years,
        "mean_simultaneous_outage_seconds": float(simultaneous.mean()),
        "mean_shock_site_hits": float(
            np.mean([v["fleet"]["shock_site_hits"] for v in values])
        ),
        "per_site": per_site,
    }


class FleetAnalyzer:
    """Monte-Carlo fleet study over one :class:`FleetSpec`.

    Per-year jobs follow the runner contract — fingerprinted specs,
    positional seeds — so results are bit-identical at any worker count
    and cacheable across runs, exactly like the single-site
    :class:`~repro.analysis.availability.AvailabilityAnalyzer`.
    """

    def __init__(self, fleet: FleetSpec, seed: int = 0, routing: bool = True):
        self.fleet = fleet
        self.seed = seed
        self.routing = routing

    def prepare(
        self, years: int = 100
    ) -> Tuple[List[Job], Callable[[Sequence[Any]], Dict[str, Any]]]:
        """The study as ``(jobs, reduce)`` — batcher-composable."""
        if years <= 0:
            raise RunnerError("years must be positive")
        year_spec = {"fleet": self.fleet, "routing": self.routing}
        jobs = make_jobs(
            simulate_fleet_year,
            [year_spec] * years,
            base_seed=self.seed,
            labels=[f"fleet-year={i}" for i in range(years)],
        )

        def reduce(values: Sequence[Any]) -> Dict[str, Any]:
            return reduce_fleet_years(values, self.fleet, self.routing)

        return jobs, reduce

    def analyze(
        self,
        years: int = 100,
        jobs: int = 1,
        executor: Optional[BaseExecutor] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressListener] = None,
    ) -> Dict[str, Any]:
        """Simulate ``years`` fleet years; identical for every ``jobs``."""
        job_list, reduce = self.prepare(years=years)
        if executor is None:
            executor = make_executor(jobs=jobs, cache=cache, progress=progress)
        report = executor.run(job_list)
        return reduce(report.values)
