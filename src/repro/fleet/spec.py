"""Fleet specifications: many sites, one scenario, canonical encoding.

A :class:`FleetSpec` is the *input* language of the fleet engine: a tuple
of :class:`SiteSpec` rows (each naming a workload, a Table-3 backup
configuration, a technique and a slice of serving capacity) plus the
regional-shock knobs of :mod:`repro.fleet.correlation`.  Everything is a
frozen dataclass of primitives, so a spec drops straight into
:func:`repro.runner.jobs.canonical_encode` — fleet jobs fingerprint and
cache exactly like single-site jobs do.

Capacity and load are in *server-equivalents of delivered work*, the same
normalisation :mod:`repro.geo.site` uses, so a :class:`FleetSpec` lowers
onto a :class:`~repro.geo.replication.GeoReplicationModel` without unit
conversion (see :meth:`FleetSpec.replication_model`).

A small registry of named fleets gives the CLI/serve layers stable,
fingerprintable handles (``us-triad``, ``coastal-pair``, ``regional-quad``,
``cloud-hybrid``) — a request carries the *name*, never the object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.geo.replication import DEFAULT_REDIRECT_SECONDS, GeoReplicationModel
from repro.geo.site import Site


@dataclass(frozen=True)
class SiteSpec:
    """One datacenter in a fleet scenario.

    Attributes:
        name: Site identifier (unique within the fleet).
        workload: Registered workload name driving the site.
        configuration: Table-3 backup configuration name.
        technique: Registered outage-technique name for local handling.
        servers: Cluster size for the site's simulator instance.
        capacity: Serving capacity in server-equivalents of work.
        load: Normal-operation load (<= capacity); the headroom is what
            absorbs other sites' failover traffic.
        power_region: Utility correlation group — shocks are regional,
            and sites sharing a region cannot back each other up.
        rtt_seconds: Client round-trip when this site serves redirected
            traffic (feeds the latency penalty of the routing model).
    """

    name: str
    workload: str = "websearch"
    configuration: str = "LargeEUPS"
    technique: str = "full-service"
    servers: int = 16
    capacity: float = 1.0
    load: float = 0.6
    power_region: str = "default"
    rtt_seconds: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("site name must be non-empty")
        if self.servers < 1:
            raise ConfigurationError(f"{self.name}: servers must be >= 1")
        if self.capacity <= 0:
            raise ConfigurationError(f"{self.name}: capacity must be positive")
        if not 0 <= self.load <= self.capacity:
            raise ConfigurationError(
                f"{self.name}: load must be within [0, capacity]"
            )
        if self.rtt_seconds < 0:
            raise ConfigurationError(f"{self.name}: rtt must be >= 0")

    @property
    def spare_capacity(self) -> float:
        return self.capacity - self.load

    def to_site(self) -> Site:
        """The :mod:`repro.geo` view of this spec (capacity geometry only)."""
        return Site(
            name=self.name,
            capacity=self.capacity,
            load=self.load,
            power_region=self.power_region,
            rtt_seconds=self.rtt_seconds,
        )


@dataclass(frozen=True)
class FleetSpec:
    """A fleet scenario: sites plus the correlated-shock model.

    Attributes:
        name: Scenario identifier.
        sites: The fleet, in a fixed order (seed streams are positional).
        shock_rate_per_year: Poisson rate of regional shock events
            (storms, grid collapses) laid *on top of* each site's own
            Figure 1 outage process.
        correlation: Probability a shock strikes each site in its
            epicenter power region; 0 turns the shock layer into a
            no-op on every schedule (the independence anchor).
        spillover: Fraction of ``correlation`` applied to sites *outside*
            the epicenter region — shocks have soft edges.
        redirect_seconds: Traffic-shift convergence time before a dark
            site's load serves remotely.
    """

    name: str
    sites: Tuple[SiteSpec, ...] = field(default_factory=tuple)
    shock_rate_per_year: float = 0.0
    correlation: float = 0.0
    spillover: float = 0.25
    redirect_seconds: float = DEFAULT_REDIRECT_SECONDS

    def __post_init__(self) -> None:
        if not self.sites:
            raise ConfigurationError("fleet needs at least one site")
        names = [site.name for site in self.sites]
        if len(set(names)) != len(names):
            raise ConfigurationError("site names must be unique")
        if self.shock_rate_per_year < 0:
            raise ConfigurationError("shock rate must be >= 0")
        if not 0 <= self.correlation <= 1:
            raise ConfigurationError("correlation must be in [0, 1]")
        if not 0 <= self.spillover <= 1:
            raise ConfigurationError("spillover must be in [0, 1]")
        if self.redirect_seconds < 0:
            raise ConfigurationError("redirect_seconds must be >= 0")

    @property
    def total_load(self) -> float:
        return sum(site.load for site in self.sites)

    @property
    def total_capacity(self) -> float:
        return sum(site.capacity for site in self.sites)

    @property
    def power_regions(self) -> Tuple[str, ...]:
        """Distinct power regions, first-appearance order (seeded shock
        epicenter draws index into this tuple, so order must be stable)."""
        seen: List[str] = []
        for site in self.sites:
            if site.power_region not in seen:
                seen.append(site.power_region)
        return tuple(seen)

    def site(self, name: str) -> SiteSpec:
        for candidate in self.sites:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(f"unknown site {name!r} in fleet {self.name!r}")

    def replication_model(self) -> GeoReplicationModel:
        """Lower to the :mod:`repro.geo` static failover model."""
        return GeoReplicationModel(
            [site.to_site() for site in self.sites],
            redirect_seconds=self.redirect_seconds,
        )

    # -- derivation helpers ---------------------------------------------------

    def with_uniform(
        self,
        configuration: Optional[str] = None,
        technique: Optional[str] = None,
        workload: Optional[str] = None,
    ) -> "FleetSpec":
        """Every site re-provisioned to the same configuration/technique —
        the per-cell transform of the fleet frontier sweep."""
        sites = []
        for site in self.sites:
            changes: Dict[str, str] = {}
            if configuration is not None:
                changes["configuration"] = configuration
            if technique is not None:
                changes["technique"] = technique
            if workload is not None:
                changes["workload"] = workload
            sites.append(replace(site, **changes) if changes else site)
        return replace(self, sites=tuple(sites))

    def with_shocks(
        self, shock_rate_per_year: float, correlation: float
    ) -> "FleetSpec":
        return replace(
            self,
            shock_rate_per_year=shock_rate_per_year,
            correlation=correlation,
        )


def _named_fleets() -> Dict[str, FleetSpec]:
    fleets = [
        # Three equal sites in three power regions with identical client
        # RTTs: the cleanest "the fleet is the backup" geometry (0.4 spare
        # at each survivor covers a 0.6 dark load with no latency penalty).
        FleetSpec(
            name="us-triad",
            sites=(
                SiteSpec(name="east", power_region="pjm", rtt_seconds=0.05),
                SiteSpec(name="central", power_region="miso", rtt_seconds=0.05),
                SiteSpec(name="west", power_region="wecc", rtt_seconds=0.05),
            ),
        ),
        # Two sites, asymmetric RTTs: failover pays the Table-7 latency
        # penalty, and N-1 leaves no redundancy at all.
        FleetSpec(
            name="coastal-pair",
            sites=(
                SiteSpec(
                    name="virginia",
                    capacity=1.0,
                    load=0.5,
                    power_region="pjm",
                    rtt_seconds=0.04,
                ),
                SiteSpec(
                    name="oregon",
                    capacity=1.0,
                    load=0.5,
                    power_region="wecc",
                    rtt_seconds=0.09,
                ),
            ),
        ),
        # Four sites, two sharing a gulf-coast grid: a regional shock can
        # darken both at once, and neither may absorb the other's load.
        FleetSpec(
            name="regional-quad",
            sites=(
                SiteSpec(
                    name="houston",
                    load=0.55,
                    power_region="ercot",
                    rtt_seconds=0.05,
                ),
                SiteSpec(
                    name="dallas",
                    load=0.55,
                    power_region="ercot",
                    rtt_seconds=0.05,
                ),
                SiteSpec(
                    name="atlanta",
                    load=0.55,
                    power_region="serc",
                    rtt_seconds=0.06,
                ),
                SiteSpec(
                    name="denver",
                    load=0.55,
                    power_region="wecc",
                    rtt_seconds=0.07,
                ),
            ),
        ),
        # One owned site plus rented cloud headroom: the Section 7
        # cloud-burst story (the "cloud" site carries no load of its own).
        FleetSpec(
            name="cloud-hybrid",
            sites=(
                SiteSpec(
                    name="onprem",
                    capacity=1.0,
                    load=0.7,
                    power_region="local",
                    rtt_seconds=0.05,
                ),
                SiteSpec(
                    name="cloud",
                    capacity=4.0,
                    load=0.0,
                    power_region="cloud",
                    rtt_seconds=0.12,
                ),
            ),
        ),
    ]
    return {fleet.name: fleet for fleet in fleets}


_FLEETS = _named_fleets()

#: The default fleet for CLI/serve requests that name none.
DEFAULT_FLEET = "us-triad"


def fleet_names() -> List[str]:
    """Registered fleet scenario names."""
    return list(_FLEETS)


def get_fleet(name: str) -> FleetSpec:
    """Look up a named fleet scenario."""
    fleet = _FLEETS.get(name.lower())
    if fleet is None:
        raise ConfigurationError(
            f"unknown fleet {name!r}; known: {', '.join(fleet_names())}"
        )
    return fleet
