"""Correlated regional shocks layered on the per-site outage processes.

Figure 1's statistics describe *one* datacenter's utility.  At fleet
scale the dangerous events are the correlated ones — an ice storm or a
grid collapse that darkens several sites in the same interconnect at
once, exactly when failover capacity is scarcest (the scenario framing
of the stochastic-optimization backup literature).

The sampler is a seeded shared-shock (one-factor copula) construction:

* shock *events* arrive as a Poisson process at ``shock_rate_per_year``,
  each with a uniform start and a duration drawn from the same
  Figure 1(b) empirical distribution single-site outages use;
* each shock picks an epicenter power region uniformly at random and
  then strikes every site with an independent Bernoulli whose success
  probability is ``correlation`` inside the epicenter region and
  ``correlation * spillover`` outside it.

``correlation = 0`` (or a zero rate) makes the layer a strict no-op:
no site is ever struck, and :func:`merge_outage_events` returns each
site's base schedule *object* unchanged — the bit-identical anchor the
independence regression pins.  Raising ``correlation`` strictly raises
every site's shock-hit probability simultaneously, which is what makes
the probability of multi-site simultaneous outages monotone in it (the
smoke certification's gate 3).

The per-site hit draws happen in fleet site order for *every* shock
regardless of outcome, so the stream a given site consumes depends only
on (seed, shock index, site position) — never on which other sites were
hit.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.spec import FleetSpec
from repro.outages.distributions import (
    OUTAGE_DURATION_DISTRIBUTION,
    EmpiricalDistribution,
)
from repro.outages.events import OutageEvent, OutageSchedule
from repro.units import SECONDS_PER_YEAR


class RegionalShockSampler:
    """Seeded sampler of per-site shock outage events for one year.

    Args:
        fleet: The scenario (rate, correlation, spillover, regions).
        duration_distribution: Shock-duration distribution (defaults to
            Figure 1(b) — regional events are drawn from the same
            empirical tail as local ones).
        horizon_seconds: Year length.
    """

    def __init__(
        self,
        fleet: FleetSpec,
        duration_distribution: EmpiricalDistribution = OUTAGE_DURATION_DISTRIBUTION,
        horizon_seconds: float = SECONDS_PER_YEAR,
    ):
        if horizon_seconds <= 0:
            raise ConfigurationError("horizon must be positive")
        self.fleet = fleet
        self._durations = duration_distribution
        self._horizon = float(horizon_seconds)

    def sample_year(
        self, rng: np.random.Generator
    ) -> Dict[str, List[OutageEvent]]:
        """Per-site shock events for one year (site name -> events).

        Events are clipped to the horizon; sites never struck map to an
        empty list.  The dict covers every site, in fleet order.
        """
        fleet = self.fleet
        hits: Dict[str, List[OutageEvent]] = {
            site.name: [] for site in fleet.sites
        }
        if fleet.shock_rate_per_year <= 0 or fleet.correlation <= 0:
            return hits
        regions = fleet.power_regions
        count = int(rng.poisson(fleet.shock_rate_per_year))
        for _ in range(count):
            start = float(rng.uniform(0.0, self._horizon))
            duration = float(self._durations.sample(rng, size=1)[0])
            duration = min(duration, self._horizon - start)
            epicenter = regions[int(rng.integers(0, len(regions)))]
            # One Bernoulli per site per shock, fleet order, drawn
            # unconditionally: site streams are position-stable.
            draws = rng.random(len(fleet.sites))
            if duration <= 0:
                continue
            for site, draw in zip(fleet.sites, draws):
                probability = fleet.correlation * (
                    1.0 if site.power_region == epicenter else fleet.spillover
                )
                if draw < probability:
                    hits[site.name].append(
                        OutageEvent(
                            start_seconds=start, duration_seconds=duration
                        )
                    )
        return hits


def merge_outage_events(
    base: OutageSchedule, shocks: Sequence[OutageEvent]
) -> OutageSchedule:
    """Union a site's base schedule with its shock events.

    Overlapping intervals coalesce (a shock striking mid-outage extends
    the outage; the site does not fail twice at once) and the result is
    clipped to the base horizon.  With no shocks the *same schedule
    object* is returned — the fleet layer adds exactly nothing to the
    certified single-site path, not even a float round-trip.
    """
    if not shocks:
        return base
    intervals = sorted(
        [(e.start_seconds, e.end_seconds) for e in base.events]
        + [(e.start_seconds, min(e.end_seconds, base.horizon_seconds))
           for e in shocks],
    )
    merged: List[List[float]] = []
    for start, end in intervals:
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return OutageSchedule(
        events=tuple(
            OutageEvent(start_seconds=start, duration_seconds=end - start)
            for start, end in merged
        ),
        horizon_seconds=base.horizon_seconds,
    )
