"""The fleet frontier: how much backup can every site shed when the
fleet is the backup?

Each cell provisions *every* site of a named fleet with the same
Table-3 backup configuration and local technique, then Monte-Carlos the
fleet twice — once with geo-routing off (each site on its own, the
paper's single-site world) and once with routing on (the fleet is the
backup).  The reduce draws the Pareto frontier over (normalized per-site
backup cost, fleet performability) and reports every routed cell that
*dominates* an unrouted cell: cheaper backup at equal-or-better fleet
service is exactly the paper's underprovisioning bet restated at fleet
scale.

Cells are fingerprinted runner jobs carrying names only, with seeds
spawned by cell position — bit-identical at any worker count, cacheable,
and batcher-composable through ``(jobs, reduce)`` like the sweep and
policy-frontier analyses before it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.frontier import dominates, pareto_frontier
from repro.core.configurations import get_configuration
from repro.errors import RunnerError
from repro.fleet.sim import reduce_fleet_years, simulate_fleet_year
from repro.fleet.spec import get_fleet
from repro.runner.cache import ResultCache
from repro.runner.executor import BaseExecutor, make_executor
from repro.runner.jobs import Job, make_jobs
from repro.runner.progress import ProgressListener

#: Default per-cell sample size: enough years that every Table-3 config
#: sees multi-outage tails without making the smoke run minutes long.
DEFAULT_FLEET_YEARS = 40


def fleet_cell(
    spec: Mapping[str, Any], seed: Optional[np.random.SeedSequence]
) -> Dict[str, Any]:
    """Runner job: one (configuration, routing) cell of the fleet frontier.

    The spec carries names only — ``fleet``, ``configuration``,
    ``technique``, ``routing``, ``years`` — so the job fingerprints on
    primitives.  The cell's seed spawns one child per year; the same
    (cell spec, seed) always replays the same years.
    """
    if seed is None:
        raise RunnerError("fleet_cell requires a seeded job")
    fleet = get_fleet(spec["fleet"]).with_uniform(
        configuration=spec["configuration"], technique=spec["technique"]
    )
    routing = bool(spec["routing"])
    years = int(spec["years"])
    year_spec = {"fleet": fleet, "routing": routing}
    values = [
        simulate_fleet_year(year_spec, year_seed)
        for year_seed in seed.spawn(years)
    ]
    report = reduce_fleet_years(values, fleet, routing)
    return {
        "fleet": spec["fleet"],
        "configuration": spec["configuration"],
        "technique": spec["technique"],
        "routing": routing,
        "years": years,
        "normalized_cost": get_configuration(
            spec["configuration"]
        ).normalized_cost(),
        "availability": report["availability"],
        "performability": report["performability"],
        "mean_unserved_seconds_per_year": report[
            "mean_unserved_seconds_per_year"
        ],
        "multi_site_outage_probability": report[
            "multi_site_outage_probability"
        ],
        "remote_served_fraction": report["remote_served_fraction"],
    }


def fleet_frontier_jobs(
    fleet_name: str,
    configuration_names: Sequence[str],
    technique: str = "full-service",
    years: int = DEFAULT_FLEET_YEARS,
    seed: int = 0,
) -> List[Job]:
    """Fingerprinted cell jobs: every configuration, routed and unrouted."""
    if years <= 0:
        raise RunnerError("years must be positive")
    if not configuration_names:
        raise RunnerError("fleet frontier needs at least one configuration")
    get_fleet(fleet_name)  # fail fast on unknown fleets
    specs = []
    labels = []
    for configuration in configuration_names:
        for routing in (False, True):
            specs.append(
                {
                    "fleet": fleet_name,
                    "configuration": configuration,
                    "technique": technique,
                    "routing": routing,
                    "years": years,
                }
            )
            labels.append(
                f"fleet:{fleet_name}/{configuration}/"
                f"{'routed' if routing else 'solo'}"
            )
    return make_jobs(fleet_cell, specs, base_seed=seed, labels=labels)


def _objectives(record: Mapping[str, Any]) -> Tuple[float, float]:
    """Minimise backup cost, maximise fleet performability."""
    return (record["normalized_cost"], -record["performability"])


def reduce_fleet_frontier(
    records: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Fold cell records into the frontier payload.

    ``dominations`` pairs every routed cell with each *unrouted* cell it
    Pareto-dominates on (cost, performability); the headline verdict
    ``fleet_dominates_single_site`` holds when a routed cell beats a
    cell on the unrouted (single-site) frontier with strictly cheaper
    backup — the fleet bought availability that Table 3 alone had to buy
    with diesel.
    """
    records = list(records)
    if not records:
        raise RunnerError("cannot reduce zero fleet-frontier cells")
    frontier = pareto_frontier(records, _objectives)
    frontier_keys = {id(record) for record in frontier}
    unrouted = [record for record in records if not record["routing"]]
    unrouted_frontier = pareto_frontier(unrouted, _objectives)
    unrouted_frontier_keys = {id(record) for record in unrouted_frontier}

    dominations: List[Dict[str, Any]] = []
    for routed in records:
        if not routed["routing"]:
            continue
        for single in unrouted:
            if dominates(_objectives(routed), _objectives(single)):
                dominations.append(
                    {
                        "routed": dict(routed),
                        "single_site": dict(single),
                        "single_site_on_frontier": id(single)
                        in unrouted_frontier_keys,
                        "cost_saving": single["normalized_cost"]
                        - routed["normalized_cost"],
                    }
                )
    verdict = any(
        d["single_site_on_frontier"] and d["cost_saving"] > 0
        for d in dominations
    )
    return {
        "cells": [dict(record) for record in records],
        "frontier": [
            {
                "configuration": record["configuration"],
                "routing": record["routing"],
                "normalized_cost": record["normalized_cost"],
                "performability": record["performability"],
                "availability": record["availability"],
            }
            for record in frontier
        ],
        "single_site_frontier": [
            {
                "configuration": record["configuration"],
                "normalized_cost": record["normalized_cost"],
                "performability": record["performability"],
            }
            for record in unrouted_frontier
        ],
        "dominations": dominations,
        "fleet_dominates_single_site": verdict,
        "on_frontier_count": len(frontier_keys),
    }


def fleet_frontier(
    fleet_name: str,
    configuration_names: Sequence[str],
    technique: str = "full-service",
    years: int = DEFAULT_FLEET_YEARS,
    seed: int = 0,
    jobs: int = 1,
    executor: Optional[BaseExecutor] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
) -> Dict[str, Any]:
    """Run the full sweep and reduce — identical at any worker count."""
    job_list = fleet_frontier_jobs(
        fleet_name, configuration_names, technique=technique, years=years,
        seed=seed,
    )
    if executor is None:
        executor = make_executor(jobs=jobs, cache=cache, progress=progress)
    report = executor.run(job_list)
    return reduce_fleet_frontier(report.values)


def prepare_fleet_frontier(
    fleet_name: str,
    configuration_names: Sequence[str],
    technique: str = "full-service",
    years: int = DEFAULT_FLEET_YEARS,
    seed: int = 0,
) -> Tuple[List[Job], Callable[[Sequence[Any]], Dict[str, Any]]]:
    """The sweep as ``(jobs, reduce)`` — serve/batcher composable."""
    job_list = fleet_frontier_jobs(
        fleet_name, configuration_names, technique=technique, years=years,
        seed=seed,
    )
    return job_list, reduce_fleet_frontier
