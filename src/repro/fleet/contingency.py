"""Deterministic N-1/N-2 contingency analysis for a fleet.

Power-systems planning asks the contingency question before the
Monte-Carlo one: *if any one site (N-1) or any pair of sites (N-2) goes
completely dark, can the survivors carry the displaced load?*  The
answer is a pure function of the fleet geometry — loads, spares, power
regions, RTTs — evaluated through the same :func:`serve_instant`
pricing the Monte-Carlo routing layer uses, so the two layers can never
disagree about what a blackout costs.

Dark sites are modeled at performance 0 with the redirect window
already elapsed: contingency analysis rates the steady state, not the
transient.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Dict, List

from repro.errors import ConfigurationError
from repro.fleet.routing import SiteState, serve_instant
from repro.fleet.spec import FleetSpec

#: Delivered-fraction slack below which a scenario counts as fully served.
_FULLY_SERVED_EPS = 1e-9


def contingency_scenarios(
    fleet: FleetSpec, depth: int = 2
) -> List[Dict[str, Any]]:
    """Evaluate every loss of up to ``depth`` sites.

    Returns one record per scenario, ordered by (order, site position) —
    deterministic for fingerprinting and table output.
    """
    if depth < 1:
        raise ConfigurationError("contingency depth must be >= 1")
    depth = min(depth, len(fleet.sites))
    records: List[Dict[str, Any]] = []
    for order in range(1, depth + 1):
        for lost in combinations(fleet.sites, order):
            lost_names = {site.name for site in lost}
            states = [
                SiteState(
                    name=site.name,
                    capacity=site.capacity,
                    load=site.load,
                    power_region=site.power_region,
                    rtt_seconds=site.rtt_seconds,
                    performance=0.0 if site.name in lost_names else 1.0,
                    in_outage=site.name in lost_names,
                    remote_ready=True,
                )
                for site in fleet.sites
            ]
            instant = serve_instant(states, routing=True)
            displaced = sum(site.load for site in lost)
            delivered_fraction = (
                instant.served / instant.demand if instant.demand > 0 else 1.0
            )
            records.append(
                {
                    "order": order,
                    "lost_sites": sorted(lost_names),
                    "displaced_load": displaced,
                    "absorbed_load": instant.absorbed_load,
                    "remote_served": instant.remote_served,
                    "delivered_fraction": delivered_fraction,
                    "unserved_load": instant.demand - instant.served,
                    "degraded_sites": sorted(instant.degraded_sites),
                    "fully_served": delivered_fraction
                    >= 1.0 - _FULLY_SERVED_EPS,
                }
            )
    return records


def contingency_report(fleet: FleetSpec, depth: int = 2) -> Dict[str, Any]:
    """The fleet's contingency verdicts plus the per-scenario table.

    ``n1_safe``/``n2_safe`` hold when *every* scenario of that order is
    fully served; ``worst`` points at the scenario with the lowest
    delivered fraction.
    """
    scenarios = contingency_scenarios(fleet, depth=depth)
    verdicts: Dict[str, Any] = {
        "fleet": fleet.name,
        "sites": [site.name for site in fleet.sites],
        "depth": min(depth, len(fleet.sites)),
        "scenarios": scenarios,
    }
    for order in range(1, verdicts["depth"] + 1):
        at_order = [s for s in scenarios if s["order"] == order]
        verdicts[f"n{order}_safe"] = all(s["fully_served"] for s in at_order)
    verdicts["worst"] = min(scenarios, key=lambda s: s["delivered_fraction"])
    return verdicts
