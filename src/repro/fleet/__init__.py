"""repro.fleet — multi-site fleet simulation with correlated regional
outages and geo-failover.

The fleet layer answers the paper's question at the scale the paper
gestures toward in Section 7: when traffic can shift to surviving
sites, *the fleet itself is the backup*, and per-site DG/battery
provisioning can be cut below any single-site Table-3 point.

Modules:
    spec: :class:`FleetSpec`/:class:`SiteSpec` scenarios + named registry.
    correlation: seeded regional-shock sampler and schedule merging.
    routing: instant pricing and yearly integration of geo-failover.
    sim: the per-year Monte-Carlo job and :class:`FleetAnalyzer`.
    contingency: deterministic N-1/N-2 analysis.
    frontier: the ``fleet_frontier`` sweep and its domination verdict.
"""

from repro.fleet.contingency import contingency_report, contingency_scenarios
from repro.fleet.correlation import RegionalShockSampler, merge_outage_events
from repro.fleet.frontier import (
    DEFAULT_FLEET_YEARS,
    fleet_cell,
    fleet_frontier,
    fleet_frontier_jobs,
    prepare_fleet_frontier,
    reduce_fleet_frontier,
)
from repro.fleet.routing import (
    DEGRADED_UTILIZATION,
    SURVIVOR_DEGRADED_FACTOR,
    InstantService,
    OutageWindow,
    SiteState,
    SiteTimeline,
    latency_factor,
    route_fleet_year,
    serve_instant,
)
from repro.fleet.sim import FleetAnalyzer, reduce_fleet_years, simulate_fleet_year
from repro.fleet.spec import (
    DEFAULT_FLEET,
    FleetSpec,
    SiteSpec,
    fleet_names,
    get_fleet,
)

__all__ = [
    "DEFAULT_FLEET",
    "DEFAULT_FLEET_YEARS",
    "DEGRADED_UTILIZATION",
    "SURVIVOR_DEGRADED_FACTOR",
    "FleetAnalyzer",
    "FleetSpec",
    "InstantService",
    "OutageWindow",
    "RegionalShockSampler",
    "SiteSpec",
    "SiteState",
    "SiteTimeline",
    "contingency_report",
    "contingency_scenarios",
    "fleet_cell",
    "fleet_frontier",
    "fleet_frontier_jobs",
    "fleet_names",
    "get_fleet",
    "latency_factor",
    "merge_outage_events",
    "prepare_fleet_frontier",
    "reduce_fleet_frontier",
    "reduce_fleet_years",
    "route_fleet_year",
    "serve_instant",
    "simulate_fleet_year",
]
