"""Traffic routing during outages: where dark sites' load goes, minute by minute.

The static :meth:`~repro.geo.replication.GeoReplicationModel.fail_over`
answers "if this one site died, who absorbs it?".  A Monte-Carlo fleet
year needs the *dynamic* version: several sites can be dark at once (a
regional shock), survivors serve their own load first, failover traffic
pays a redirect delay before it lands, and a survivor pushed near its
capacity ceiling enters a degraded mode — the paper's warning that
"power outages can cause load increase at failed-over site" made into a
timeline model.

:func:`serve_instant` prices one instant of the fleet:

* a site in outage serves ``load * performance`` locally, where
  ``performance`` is its simulator outcome's mean performance (the
  technique's doing — a throttled site still serves most of its load, a
  sleeping one serves none);
* the shortfall (``load * (1 - performance)``) is displaced and, once
  the redirect window has elapsed, routed to surviving sites in *other*
  power regions, proportionally to their remaining spare capacity;
* absorbed traffic pays the Table-7 latency penalty for the extra RTT
  and — when absorption pushes a survivor past
  :data:`DEGRADED_UTILIZATION` — a degraded-survivor factor: the host's
  own throttling/admission control kicking in under failover load.

:func:`route_fleet_year` integrates that pricing over the elementary
intervals induced by every site's outage windows.  The decomposition is
exact for the piecewise-constant state model (breakpoints at every
outage start, redirect expiry and outage end), so the result is a pure
deterministic function of the per-site schedules — identical serial or
parallel, and cacheable under the runner's fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.geo.replication import LATENCY_PENALTY_PER_100MS

#: Utilization above which an absorbing survivor serves failover traffic
#: in degraded mode (its own overload controls engage).
DEGRADED_UTILIZATION = 0.95

#: Throughput factor on absorbed traffic at a degraded survivor.
SURVIVOR_DEGRADED_FACTOR = 0.85

#: Served-vs-demand slack below which an instant counts as fully served.
_FULL_SERVICE_EPS = 1e-9


@dataclass(frozen=True)
class OutageWindow:
    """One outage on a site's yearly timeline, with its delivered level.

    ``performance`` is the simulator outcome's mean performance over the
    window — the phase structure (throttle, then sleep, then crash)
    smeared uniformly across the outage, which keeps the routing layer
    piecewise-constant without re-simulating phases.
    """

    start_seconds: float
    end_seconds: float
    performance: float

    def __post_init__(self) -> None:
        if self.end_seconds <= self.start_seconds:
            raise ConfigurationError("outage window must have positive length")
        if not 0.0 <= self.performance <= 1.0:
            raise ConfigurationError("window performance must be in [0, 1]")


@dataclass(frozen=True)
class SiteTimeline:
    """A site's year as the routing layer sees it."""

    name: str
    capacity: float
    load: float
    power_region: str
    rtt_seconds: float
    windows: Tuple[OutageWindow, ...]


@dataclass(frozen=True)
class SiteState:
    """One site at one instant."""

    name: str
    capacity: float
    load: float
    power_region: str
    rtt_seconds: float
    performance: float = 1.0
    in_outage: bool = False
    remote_ready: bool = True  # redirect window elapsed


@dataclass(frozen=True)
class InstantService:
    """What the fleet delivers at one instant (server-equivalents).

    Attributes:
        demand: Total fleet load.
        served: Delivered work (local + absorbed failover traffic).
        local_served: Work served where it normally lives.
        remote_served: Failover traffic delivered by survivors (after
            latency and degradation factors).
        absorbed_load: Failover traffic *placed* on survivors (before
            delivery factors) — the capacity actually occupied.
        per_site_absorption: survivor name -> failover load placed there.
        degraded_sites: Survivors pushed past the degradation threshold.
    """

    demand: float
    served: float
    local_served: float
    remote_served: float
    absorbed_load: float
    per_site_absorption: Dict[str, float]
    degraded_sites: Tuple[str, ...]


def latency_factor(source_rtt: float, host_rtt: float) -> float:
    """Throughput factor for traffic served ``host_rtt`` away from home."""
    extra = max(0.0, host_rtt - source_rtt)
    return max(0.0, 1.0 - LATENCY_PENALTY_PER_100MS * (extra / 0.100))


def serve_instant(
    states: Sequence[SiteState], routing: bool = True
) -> InstantService:
    """Price one instant of the fleet under the failover policy.

    Dark sites are processed in fleet order, each routing its shortfall
    across the remaining spare of up sites in *other* power regions,
    proportionally to that spare.  Deterministic in input order.
    """
    demand = sum(s.load for s in states)
    local = sum(
        (s.load * s.performance) if s.in_outage else s.load for s in states
    )
    spare: Dict[str, float] = {
        s.name: s.capacity - s.load for s in states if not s.in_outage
    }
    placements: List[Tuple[SiteState, SiteState, float]] = []
    if routing:
        for source in states:
            if not source.in_outage or not source.remote_ready:
                continue
            displaced = source.load * (1.0 - source.performance)
            if displaced <= 0:
                continue
            hosts = [
                s
                for s in states
                if not s.in_outage
                and s.power_region != source.power_region
                and spare[s.name] > 0
            ]
            total_spare = sum(spare[h.name] for h in hosts)
            if total_spare <= 0:
                continue
            take = min(displaced, total_spare)
            shares = [(h, spare[h.name] / total_spare) for h in hosts]
            for host, share in shares:
                amount = take * share
                spare[host.name] -= amount
                placements.append((source, host, amount))

    absorbed: Dict[str, float] = {}
    for _, host, amount in placements:
        absorbed[host.name] = absorbed.get(host.name, 0.0) + amount
    degraded = tuple(
        s.name
        for s in states
        if s.name in absorbed
        and (s.load + absorbed[s.name]) > DEGRADED_UTILIZATION * s.capacity
    )
    degraded_set = set(degraded)
    remote = sum(
        amount
        * latency_factor(source.rtt_seconds, host.rtt_seconds)
        * (SURVIVOR_DEGRADED_FACTOR if host.name in degraded_set else 1.0)
        for source, host, amount in placements
    )
    return InstantService(
        demand=demand,
        served=local + remote,
        local_served=local,
        remote_served=remote,
        absorbed_load=sum(absorbed.values()),
        per_site_absorption=absorbed,
        degraded_sites=degraded,
    )


def _window_at(
    timeline: SiteTimeline, instant: float
) -> "OutageWindow | None":
    for window in timeline.windows:
        if window.start_seconds <= instant < window.end_seconds:
            return window
    return None


def route_fleet_year(
    timelines: Sequence[SiteTimeline],
    horizon_seconds: float,
    redirect_seconds: float,
    routing: bool = True,
) -> Dict[str, float]:
    """Integrate :func:`serve_instant` over one fleet year.

    Returns a plain-dict summary (server-equivalent-seconds and plain
    counts — JSON-able, reduction-friendly):

    ``demand``/``served``: integrals of offered and delivered work;
    ``remote_served``: the failover traffic's delivered integral;
    ``fully_served_seconds``: time with no unserved demand anywhere;
    ``simultaneous_outage_seconds``: time with >= 2 sites in outage;
    ``max_simultaneous_outages``: peak concurrent dark-site count.
    """
    if horizon_seconds <= 0:
        raise ConfigurationError("horizon must be positive")
    breakpoints = {0.0, horizon_seconds}
    for timeline in timelines:
        for window in timeline.windows:
            breakpoints.add(window.start_seconds)
            breakpoints.add(min(window.end_seconds, horizon_seconds))
            breakpoints.add(
                min(window.start_seconds + redirect_seconds, window.end_seconds)
            )
    cuts = sorted(b for b in breakpoints if 0.0 <= b <= horizon_seconds)

    totals = {
        "demand": 0.0,
        "served": 0.0,
        "remote_served": 0.0,
        "fully_served_seconds": 0.0,
        "simultaneous_outage_seconds": 0.0,
        "max_simultaneous_outages": 0.0,
    }
    for start, end in zip(cuts, cuts[1:]):
        dt = end - start
        if dt <= 0:
            continue
        midpoint = (start + end) / 2.0
        states = []
        dark = 0
        for timeline in timelines:
            window = _window_at(timeline, midpoint)
            if window is None:
                states.append(
                    SiteState(
                        name=timeline.name,
                        capacity=timeline.capacity,
                        load=timeline.load,
                        power_region=timeline.power_region,
                        rtt_seconds=timeline.rtt_seconds,
                    )
                )
            else:
                dark += 1
                states.append(
                    SiteState(
                        name=timeline.name,
                        capacity=timeline.capacity,
                        load=timeline.load,
                        power_region=timeline.power_region,
                        rtt_seconds=timeline.rtt_seconds,
                        performance=window.performance,
                        in_outage=True,
                        remote_ready=(
                            midpoint
                            >= window.start_seconds + redirect_seconds
                        ),
                    )
                )
        instant = serve_instant(states, routing=routing)
        totals["demand"] += instant.demand * dt
        totals["served"] += instant.served * dt
        totals["remote_served"] += instant.remote_served * dt
        if instant.served >= instant.demand - _FULL_SERVICE_EPS:
            totals["fully_served_seconds"] += dt
        if dark >= 2:
            totals["simultaneous_outage_seconds"] += dt
        totals["max_simultaneous_outages"] = max(
            totals["max_simultaneous_outages"], float(dark)
        )
    return totals
