"""The technique abstraction: outage plans of piecewise-constant phases.

Table 4 describes every technique by what it does in four operational
windows (normal operation, start of outage, during outage, after restore).
We compile the middle two into an :class:`OutagePlan` — an ordered list of
:class:`PlanPhase` segments, each with a constant aggregate power draw and
a constant normalised performance — and the last into per-phase resume
annotations.  The outage simulator then executes the plan against a concrete
backup infrastructure (UPS battery with Peukert accounting, DG with start-up
delay), which is where feasibility, battery exhaustion and crash semantics
are decided.

Phase semantics:

* ``duration_seconds`` — a fixed length, ``inf`` for the terminal steady
  state, or ``None`` for *adaptive* phases whose length the simulator
  stretches as far as battery energy allows while reserving enough charge
  to complete the remaining phases (this is how Throttle+Sleep-L decides
  when to give up throttling and go to sleep).
* ``committed`` — once entered, the phase runs to completion even if power
  returns mid-way (a hibernation image write cannot be abandoned half-way).
* ``state_safe`` — if backup energy dies *during* this phase, volatile
  state survives (true only once state rests on disk; S3 self-refresh dies
  with the battery).
* ``resume_downtime_seconds`` — down time to return to full service when
  power returns while sitting in this phase (S3 exit, hibernation image
  restore, zero for throttling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import TechniqueError
from repro.obs import current_tracer
from repro.servers.cluster import Cluster
from repro.servers.server import ServerSpec
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class PlanPhase:
    """One piecewise-constant segment of an outage plan.

    Attributes:
        name: Phase label used in traces and reports.
        power_watts: Aggregate draw the backup must source in this phase.
        performance: Normalised delivered throughput (0 when not serving).
        duration_seconds: Fixed length, ``inf`` (terminal), or ``None``
            (adaptive — see module docstring).
        committed: Phase must complete even if utility power returns.
        state_safe: Volatile state survives backup exhaustion in this phase.
        resume_downtime_seconds: Down time to restore full service when
            power returns during this phase.
        crash_performance: Throughput still delivered if the backup dies
            during this phase — non-zero only when something *other* than
            the local servers is serving (geo-failover's remote sites keep
            answering after the parked local fleet loses its battery).
        active_servers: How many servers the phase powers (None = all).
            Irrelevant for pooled rack-level batteries, but server-level
            packs strand the parked servers' charge and concentrate load on
            the survivors' private packs.
    """

    name: str
    power_watts: float
    performance: float
    duration_seconds: Optional[float]
    committed: bool = False
    state_safe: bool = False
    resume_downtime_seconds: float = 0.0
    crash_performance: float = 0.0
    active_servers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.power_watts < 0:
            raise TechniqueError(f"{self.name}: power must be >= 0")
        if not 0 <= self.performance <= 1:
            raise TechniqueError(f"{self.name}: performance must be in [0, 1]")
        if self.duration_seconds is not None and self.duration_seconds < 0:
            raise TechniqueError(f"{self.name}: duration must be >= 0 or None")
        if self.resume_downtime_seconds < 0:
            raise TechniqueError(f"{self.name}: resume downtime must be >= 0")
        if not 0 <= self.crash_performance <= self.performance + 1e-12:
            raise TechniqueError(
                f"{self.name}: crash_performance must be in [0, performance]"
            )
        if self.active_servers is not None and self.active_servers <= 0:
            raise TechniqueError(f"{self.name}: active_servers must be positive")

    @property
    def is_terminal(self) -> bool:
        return self.duration_seconds is not None and math.isinf(self.duration_seconds)

    @property
    def is_adaptive(self) -> bool:
        return self.duration_seconds is None


@dataclass(frozen=True)
class OutagePlan:
    """An ordered phase list ending in a terminal (infinite) phase.

    Attributes:
        technique_name: Name of the compiling technique.
        phases: The segments, executed in order from outage start.
        peak_power_watts: Largest phase draw — the power capacity the
            backup must be rated for (what the cost model prices).
    """

    technique_name: str
    phases: Sequence[PlanPhase]

    def __post_init__(self) -> None:
        if not self.phases:
            raise TechniqueError("plan needs at least one phase")
        *body, tail = self.phases
        if not tail.is_terminal:
            raise TechniqueError("last phase must have infinite duration")
        for phase in body:
            if phase.is_terminal:
                raise TechniqueError("only the last phase may be infinite")

    @property
    def peak_power_watts(self) -> float:
        return max(phase.power_watts for phase in self.phases)

    @property
    def terminal_phase(self) -> PlanPhase:
        return self.phases[-1]

    def fixed_prefix_seconds(self) -> float:
        """Total length of the non-terminal, non-adaptive phases."""
        total = 0.0
        for phase in self.phases[:-1]:
            if phase.duration_seconds is not None:
                total += phase.duration_seconds
        return total


@dataclass(frozen=True)
class TechniqueContext:
    """Everything a technique needs to compile its plan.

    Attributes:
        cluster: The server fleet under the outage.
        workload: The application running on it.
        power_budget_watts: Power capacity ceiling the plan's phases must
            respect (the UPS or DG rating); ``inf`` for unconstrained.
        holding_servers: Servers currently holding application state; fewer
            than ``cluster.num_servers`` after a consolidation stage has
            packed state onto a subset (used when hybrids chain save-state
            phases behind Migration).  ``None`` means all servers.
    """

    cluster: Cluster
    workload: WorkloadSpec
    power_budget_watts: float = float("inf")
    holding_servers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.power_budget_watts < 0:
            raise TechniqueError("power budget must be >= 0")
        if self.holding_servers is not None and not (
            0 < self.holding_servers <= self.cluster.num_servers
        ):
            raise TechniqueError(
                "holding_servers must be in (0, cluster.num_servers]"
            )

    @property
    def server(self) -> ServerSpec:
        return self.cluster.spec

    @property
    def active_servers(self) -> int:
        """Servers currently holding state (all, unless consolidated)."""
        if self.holding_servers is not None:
            return self.holding_servers
        return self.cluster.num_servers

    @property
    def state_concentration(self) -> float:
        """How much per-server state has grown through consolidation (the
        consolidated survivors hold ``num_servers / active`` workloads)."""
        return self.cluster.num_servers / self.active_servers

    @property
    def normal_power_watts(self) -> float:
        """Draw at the workload's normal operating point."""
        return self.cluster.power_watts(utilization=self.workload.utilization)


class OutageTechnique:
    """Base class for all outage-handling techniques.

    Subclasses implement :meth:`plan`.  A technique is stateless and
    reusable across contexts; per-outage state lives in the simulator.
    """

    #: Short stable identifier, set by subclasses.
    name: str = "abstract"

    def plan(self, context: TechniqueContext) -> OutagePlan:
        """Compile the outage plan for ``context``.

        Raises:
            TechniqueError: The technique cannot fit the power budget (e.g.
                no P-state deep enough) — callers treat this as an
                infeasible operating point, not a crash.
        """
        raise NotImplementedError

    def compile_plan(self, context: TechniqueContext) -> OutagePlan:
        """:meth:`plan`, wrapped in a ``technique.plan`` span when tracing.

        The analysis layers call this entry point so a trace attributes
        plan-compilation time (and infeasibility) to the technique; with
        no ambient tracer it is exactly :meth:`plan`.
        """
        tracer = current_tracer()
        if tracer is None:
            return self.plan(context)
        with tracer.span(
            "technique.plan", "technique", technique=self.name
        ) as span:
            plan = self.plan(context)
            span.set("phases", len(plan.phases))
            span.set("peak_power_watts", plan.peak_power_watts)
            return plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def check_budget(phases: List[PlanPhase], budget_watts: float, technique: str) -> None:
    """Raise :class:`TechniqueError` if any phase exceeds the power budget."""
    for phase in phases:
        if phase.power_watts > budget_watts * (1 + 1e-9):
            raise TechniqueError(
                f"{technique}: phase {phase.name!r} draws "
                f"{phase.power_watts:.0f} W, over the {budget_watts:.0f} W budget"
            )
