"""NVDIMM whole-memory persistence (Section 7, "Promising Enhancements").

NVDIMMs pair each DRAM DIMM with NAND flash and a super-capacitor: on a
power failure, an on-DIMM controller streams DRAM contents to flash with
*no external backup power at all*.  The paper highlights two consequences
we model:

* the save draws nothing from the UPS/DG — the plan's failure phase is a
  zero-power, state-safe wait (the super-capacitor is part of the DIMM);
* saving is "procrastinated" and local, so the backup infrastructure can be
  underprovisioned aggressively — combined with other options exactly like
  the Table 3 configurations.

Restore streams flash back to DRAM at memory-class bandwidth, so resume
is far faster than disk hibernation and footprint-dependent only weakly.
"""

from __future__ import annotations

from repro.errors import TechniqueError
from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
)
from repro.units import gigabytes

#: DRAM -> on-DIMM flash dump bandwidth per server (parallel across DIMMs;
#: contemporary NVDIMM-N controllers stream ~1 GB/s per module).
DEFAULT_SAVE_BANDWIDTH_BYTES_PER_SECOND = gigabytes(8)

#: Flash -> DRAM restore bandwidth per server.
DEFAULT_RESTORE_BANDWIDTH_BYTES_PER_SECOND = gigabytes(8)

#: Firmware handoff + controller arming latency.
FIXED_SAVE_SECONDS = 2.0
FIXED_RESTORE_SECONDS = 10.0


class NVDIMMPersistence(OutageTechnique):
    """Persist volatile state to on-DIMM flash with zero backup draw.

    Args:
        save_bandwidth_bytes_per_second: Aggregate per-server DRAM->flash
            stream rate.
        restore_bandwidth_bytes_per_second: Aggregate flash->DRAM rate.
    """

    name = "nvdimm"

    def __init__(
        self,
        save_bandwidth_bytes_per_second: float = DEFAULT_SAVE_BANDWIDTH_BYTES_PER_SECOND,
        restore_bandwidth_bytes_per_second: float = DEFAULT_RESTORE_BANDWIDTH_BYTES_PER_SECOND,
    ):
        if save_bandwidth_bytes_per_second <= 0:
            raise TechniqueError("save bandwidth must be positive")
        if restore_bandwidth_bytes_per_second <= 0:
            raise TechniqueError("restore bandwidth must be positive")
        self.save_bandwidth = save_bandwidth_bytes_per_second
        self.restore_bandwidth = restore_bandwidth_bytes_per_second

    def save_seconds(self, context: TechniqueContext) -> float:
        state = context.workload.memory_state_bytes * context.state_concentration
        return FIXED_SAVE_SECONDS + state / self.save_bandwidth

    def restore_seconds(self, context: TechniqueContext) -> float:
        state = context.workload.memory_state_bytes * context.state_concentration
        return FIXED_RESTORE_SECONDS + state / self.restore_bandwidth

    def plan(self, context: TechniqueContext) -> OutagePlan:
        resume = self.restore_seconds(context)
        persist = PlanPhase(
            name="nvdimm-persist",
            power_watts=0.0,  # super-capacitor on the DIMM, not the UPS
            performance=0.0,
            duration_seconds=self.save_seconds(context),
            committed=True,
            state_safe=True,  # the controller finishes on stored charge
            resume_downtime_seconds=resume,
        )
        off = PlanPhase(
            name="nvdimm-parked",
            power_watts=0.0,
            performance=0.0,
            duration_seconds=float("inf"),
            state_safe=True,
            resume_downtime_seconds=resume,
        )
        return OutagePlan(technique_name=self.name, phases=[persist, off])
