"""The do-nothing technique: run at full service and hope the backup holds.

This single plan realises both endpoints of Table 3/4:

* **MaxPerf** — full DG + UPS backup executes it seamlessly for the whole
  outage.
* **MinCost** — with no backup provisioned, the simulator crashes the plan
  at the first instant (the PSU's 30 ms hold-up cannot bridge an outage),
  reproducing the "Server/App crash -> no service -> restart" row of
  Table 4.
"""

from __future__ import annotations

from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
    check_budget,
)


class FullService(OutageTechnique):
    """Continue normal operation unchanged during the outage."""

    name = "full-service"

    def plan(self, context: TechniqueContext) -> OutagePlan:
        phases = [
            PlanPhase(
                name="full-service",
                power_watts=context.normal_power_watts,
                performance=1.0,
                duration_seconds=float("inf"),
                state_safe=False,
                resume_downtime_seconds=0.0,
            )
        ]
        check_budget(phases, context.power_budget_watts, self.name)
        return OutagePlan(technique_name=self.name, phases=phases)
