"""Outage-handling system techniques (Section 5, Tables 4-6).

Two families plus hybrids:

* **sustain-execution** — keep serving at reduced power: Throttling,
  Migration (consolidate + shutdown), Proactive Migration;
* **save-state** — preserve volatile state at near-zero power: Sleep (S3),
  Hibernation (S4), Proactive Hibernation;
* **hybrids** — save-state entered under throttled power ("-L" variants) and
  sustain-then-save ladders such as Throttle+Sleep-L.

A technique compiles, for a given cluster/workload and power budget, an
:class:`~repro.techniques.base.OutagePlan`: an ordered list of
piecewise-constant (power, performance) phases with commitment, state-safety
and resume annotations.  The simulator executes plans against the backup
infrastructure.
"""

from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
)
from repro.techniques.hibernation import Hibernation
from repro.techniques.hybrid import SustainThenSave
from repro.techniques.migration import Migration
from repro.techniques.nop import FullService
from repro.techniques.registry import (
    PAPER_TECHNIQUES,
    get_technique,
    technique_names,
)
from repro.techniques.sleep import Sleep
from repro.techniques.throttling import Throttling

__all__ = [
    "FullService",
    "Hibernation",
    "Migration",
    "OutagePlan",
    "OutageTechnique",
    "PAPER_TECHNIQUES",
    "PlanPhase",
    "Sleep",
    "SustainThenSave",
    "TechniqueContext",
    "Throttling",
    "get_technique",
    "technique_names",
]
