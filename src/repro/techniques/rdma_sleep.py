"""RDMA over Sleep: barely-alive memory serving (Section 7).

"The low cost sleep technique used in this paper does not offer any
performance.  But it can be combined with RDMA capability to access the
memory state (on demand) from a remote server while keeping the server
processors shutdown with only the memory controller active, similar to the
recently proposed barely-alive memory servers."

We model the barely-alive state as S3-plus: DRAM in self-refresh *and* the
memory controller + NIC powered (a few extra watts per server), with remote
peers serving requests against the exported memory.  Delivered throughput
is bounded by the RDMA path — a fraction of normal performance that is only
meaningful for read-mostly workloads (Web-search, Memcached); write-heavy
services cannot run their compute remotely, so the technique degrades to
plain sleep for them.
"""

from __future__ import annotations

from repro.errors import TechniqueError
from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
    check_budget,
)
from repro.techniques.sleep import throttled_save_stretch

#: Extra per-server draw to keep the memory controller, root port and a
#: low-power NIC alive on top of DRAM self-refresh.
BARELY_ALIVE_EXTRA_WATTS = 10.0

#: Fraction of normal throughput a remote peer extracts over the RDMA path
#: for read-mostly state (network-bound remote gets against local DRAM).
DEFAULT_REMOTE_SERVICE_FRACTION = 0.30


class RDMASleep(OutageTechnique):
    """Suspend locally, export memory over RDMA, serve read paths remotely.

    Args:
        remote_service_fraction: Throughput delivered by remote peers
            against the exported memory, for read-mostly workloads.
    """

    name = "rdma-sleep"

    def __init__(
        self, remote_service_fraction: float = DEFAULT_REMOTE_SERVICE_FRACTION
    ):
        if not 0 <= remote_service_fraction <= 1:
            raise TechniqueError("remote_service_fraction must be in [0, 1]")
        self.remote_service_fraction = remote_service_fraction

    def served_fraction(self, context: TechniqueContext) -> float:
        """Remote throughput for this workload (0 unless read-mostly)."""
        if context.workload.read_mostly:
            return self.remote_service_fraction
        return 0.0

    def plan(self, context: TechniqueContext) -> OutagePlan:
        server = context.server
        cluster = context.cluster
        workload = context.workload
        active = context.active_servers

        pstate = server.pstates.slowest
        stretch = throttled_save_stretch(pstate.frequency_ratio)
        suspend = PlanPhase(
            name="suspend-to-barely-alive",
            power_watts=cluster.power_watts(
                active_servers=active,
                utilization=workload.utilization,
                pstate=pstate,
            ),
            performance=0.0,
            duration_seconds=server.sleep.s3_enter_seconds * stretch,
            committed=True,
            state_safe=False,
            resume_downtime_seconds=server.sleep.s3_exit_seconds,
            active_servers=active,
        )
        barely_alive = PlanPhase(
            name="barely-alive-rdma",
            power_watts=active
            * (server.sleep.s3_power_watts + BARELY_ALIVE_EXTRA_WATTS),
            performance=self.served_fraction(context),
            duration_seconds=float("inf"),
            state_safe=False,  # DRAM still dies with the battery
            resume_downtime_seconds=server.sleep.s3_exit_seconds,
            active_servers=active,
        )
        phases = [suspend, barely_alive]
        check_budget(phases, context.power_budget_watts, self.name)
        return OutagePlan(technique_name=self.name, phases=phases)
