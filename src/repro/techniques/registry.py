"""Name-based construction of the paper's techniques (Tables 4 and 6).

Names accepted (case-insensitive):

=====================  =====================================================
name                   technique
=====================  =====================================================
``full-service``       run unchanged (MaxPerf / MinCost endpoint)
``throttling``         DVFS throttle (optionally ``throttling-p<k>``)
``sleep``              suspend to RAM
``sleep-l``            suspend under deepest P-state
``hibernate``          persist to disk, power off
``hibernate-l``        persist under deepest P-state
``proactive-hibernate``  periodic flush + residual persist
``migration``          consolidate + shutdown (optionally ``migration-p<k>``)
``proactive-migration``  Remus-style flush + residual migrate
``throttle+sleep-l``   Table 6 hybrid
``throttle+hibernate`` Table 6 hybrid
``migration+sleep-l``  Table 6 hybrid
``geo-failover``       redirect load to surviving fleet sites
``cloud-burst``        redirect load to rented cloud capacity
=====================  =====================================================
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from repro.errors import TechniqueError
from repro.techniques.base import OutageTechnique
from repro.techniques.hibernation import Hibernation
from repro.techniques.hybrid import SustainThenSave
from repro.techniques.migration import Migration
from repro.techniques.nop import FullService
from repro.techniques.nvdimm import NVDIMMPersistence
from repro.techniques.proactive import ProactiveHibernation, ProactiveMigration
from repro.techniques.rdma_sleep import RDMASleep
from repro.techniques.sleep import Sleep
from repro.techniques.throttling import Throttling

_FACTORIES: Dict[str, Callable[[], OutageTechnique]] = {
    "full-service": FullService,
    "throttling": Throttling,
    "sleep": Sleep,
    "sleep-l": lambda: Sleep(low_power=True),
    "hibernate": Hibernation,
    "hibernate-l": lambda: Hibernation(low_power=True),
    "proactive-hibernate": ProactiveHibernation,
    "migration": Migration,
    "proactive-migration": ProactiveMigration,
    "throttle+sleep-l": lambda: SustainThenSave(
        Throttling(), Sleep(low_power=True), name="throttle+sleep-l"
    ),
    "throttle+hibernate": lambda: SustainThenSave(
        Throttling(), Hibernation(low_power=True), name="throttle+hibernate"
    ),
    "migration+sleep-l": lambda: SustainThenSave(
        Migration(), Sleep(low_power=True), name="migration+sleep-l"
    ),
    "nvdimm": NVDIMMPersistence,
    "rdma-sleep": RDMASleep,
    "geo-failover": lambda: _geo_failover(),
    "cloud-burst": lambda: _cloud_burst(),
}


def _geo_failover() -> OutageTechnique:
    """Geo-failover on the reference ``us-triad`` fleet, local site first.

    Imported lazily: :mod:`repro.fleet` depends on this registry for its
    per-site plans, so the fleet-backed techniques must not import it at
    module load.
    """
    from repro.geo.failover import GeoFailoverTechnique
    from repro.fleet.spec import get_fleet

    fleet = get_fleet("us-triad")
    return GeoFailoverTechnique(fleet.replication_model(), fleet.sites[0].name)


def _cloud_burst() -> OutageTechnique:
    """Cloud burst on the reference ``cloud-hybrid`` fleet."""
    from repro.geo.failover import CloudBurstTechnique
    from repro.fleet.spec import get_fleet

    fleet = get_fleet("cloud-hybrid")
    return CloudBurstTechnique(fleet.replication_model(), "onprem")

_PSTATE_SUFFIX = re.compile(
    r"^(throttling|migration|proactive-migration)-p(\d+)(?:t(\d+))?$"
)


def technique_names() -> List[str]:
    """Canonical technique names, basic techniques first."""
    return list(_FACTORIES)


def get_technique(name: str) -> OutageTechnique:
    """Instantiate a technique by name (supports ``-p<k>`` P-state pins)."""
    key = name.lower()
    factory = _FACTORIES.get(key)
    if factory is not None:
        return factory()
    match = _PSTATE_SUFFIX.match(key)
    if match:
        base, index = match.group(1), int(match.group(2))
        tstate = int(match.group(3)) if match.group(3) is not None else None
        if base == "throttling":
            return Throttling(pstate_index=index, tstate_index=tstate)
        if tstate is not None:
            raise TechniqueError(f"{base} does not take a T-state suffix")
        if base == "migration":
            return Migration(pstate_index=index)
        return ProactiveMigration(pstate_index=index)
    raise TechniqueError(
        f"unknown technique {name!r}; known: {', '.join(technique_names())}"
    )


#: The techniques compared in Figures 6-9 (MinCost is a *configuration*;
#: its technique is full-service with no backup).
PAPER_TECHNIQUES = (
    "throttling",
    "sleep",
    "sleep-l",
    "hibernate",
    "hibernate-l",
    "proactive-hibernate",
    "migration",
    "proactive-migration",
    "throttle+sleep-l",
    "throttle+hibernate",
    "migration+sleep-l",
)
