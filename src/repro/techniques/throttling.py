"""Throttling: sustain execution in a lower P/T state (Section 5).

Transitioning to a P/T state takes tens of microseconds — comfortably inside
the 30 ms PSU hold-up — so throttling is the only technique *guaranteed* to
cut the peak power the backup must be rated for (Table 5).  The cost is
throughput: a workload with CPU-bound fraction ``c`` throttled to an
effective frequency ratio ``r`` delivers ``1 / (c/r + (1-c))`` of its normal
performance, which is why memory-stalled Memcached throttles almost for free
while Specjbb pays full freight.

The paper's servers expose two ladders (Section 6): 7 DVFS **P-states**
(frequency and voltage drop together — the efficient knob) and 8 clock
**T-states** (duty-cycle gating at constant voltage — less efficient, but
composable below the P-state floor).  ``Throttling()`` picks the fastest
P-state fitting the power budget, engaging T-states only when even the
deepest P-state is too hot; explicit indices pin either ladder:

* ``Throttling(pstate_index=k)`` — state ``Pk``, no duty cycling;
* ``Throttling(pstate_index=k, tstate_index=j)`` — ``Pk`` + ``Tj``.

The evaluation's (Min, Max) bars sweep these.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigurationError, TechniqueError
from repro.servers.pstates import DEFAULT_TSTATE_TABLE, PState, TState
from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
    check_budget,
)


class Throttling(OutageTechnique):
    """Run the whole outage in a throttled active state.

    Args:
        pstate_index: Index into the server's P-state ladder (0 = fastest).
            ``None`` selects the fastest state fitting the power budget.
        tstate_index: Index into the T-state ladder (0 = no gating).
            ``None`` engages duty cycling only as a last resort when the
            budget is below the deepest P-state's draw.
    """

    name = "throttling"

    def __init__(
        self,
        pstate_index: Optional[int] = None,
        tstate_index: Optional[int] = None,
    ):
        if pstate_index is not None and pstate_index < 0:
            raise TechniqueError("pstate_index must be >= 0 or None")
        if tstate_index is not None and tstate_index < 0:
            raise TechniqueError("tstate_index must be >= 0 or None")
        self.pstate_index = pstate_index
        self.tstate_index = tstate_index
        if pstate_index is not None:
            self.name = f"throttling-p{pstate_index}"
            if tstate_index:
                self.name += f"t{tstate_index}"

    # -- state selection ---------------------------------------------------------

    def _pinned_tstate(self, context: TechniqueContext) -> Optional[TState]:
        if self.tstate_index is None:
            return None
        if self.tstate_index >= len(DEFAULT_TSTATE_TABLE):
            raise TechniqueError(
                f"T-state index {self.tstate_index} out of range "
                f"(ladder has {len(DEFAULT_TSTATE_TABLE)})"
            )
        return DEFAULT_TSTATE_TABLE[self.tstate_index]

    def select_states(
        self, context: TechniqueContext
    ) -> Tuple[PState, Optional[TState]]:
        """The (P-state, T-state) this plan will run in."""
        server = context.server
        tstate = self._pinned_tstate(context)
        if self.pstate_index is not None:
            if self.pstate_index >= len(server.pstates):
                raise TechniqueError(
                    f"P-state index {self.pstate_index} out of range "
                    f"(ladder has {len(server.pstates)})"
                )
            return server.pstates[self.pstate_index], tstate

        per_server_budget = context.power_budget_watts / context.cluster.num_servers
        utilization = context.workload.utilization
        try:
            return (
                server.pstate_for_power_budget(per_server_budget, utilization),
                tstate,
            )
        except ConfigurationError:
            pass
        # Even the deepest P-state is too hot: gate the clock on top of it.
        deepest = server.pstates.slowest
        for candidate in DEFAULT_TSTATE_TABLE:
            power = server.power_watts(utilization, deepest, candidate)
            if power <= per_server_budget + 1e-9:
                return deepest, candidate
        raise TechniqueError(
            f"throttling cannot fit budget {context.power_budget_watts:.0f} W "
            "even at the deepest P+T combination"
        )

    def select_pstate(self, context: TechniqueContext) -> PState:
        """The P-state alone (legacy helper used by policy code)."""
        return self.select_states(context)[0]

    # -- plan -------------------------------------------------------------------------

    def plan(self, context: TechniqueContext) -> OutagePlan:
        pstate, tstate = self.select_states(context)
        power = context.cluster.power_watts(
            utilization=context.workload.utilization, pstate=pstate, tstate=tstate
        )
        effective_ratio = pstate.frequency_ratio * (
            tstate.duty_cycle if tstate is not None else 1.0
        )
        performance = context.workload.throttled_performance(effective_ratio)
        label = f"throttled@{pstate.name}"
        if tstate is not None and tstate.duty_cycle < 1.0:
            label += f"+{tstate.name}"
        phases = [
            PlanPhase(
                name=label,
                power_watts=power,
                performance=performance,
                duration_seconds=float("inf"),
                state_safe=False,
                resume_downtime_seconds=0.0,
            )
        ]
        check_budget(phases, context.power_budget_watts, self.name)
        return OutagePlan(technique_name=self.name, phases=phases)
