"""Hibernation (S4) and its proactive / low-power variants (Section 5).

The application state is persisted to local disk, after which the servers
power down completely (0 W) — the only technique whose parked state survives
battery exhaustion.  The price is the image write/read time, which scales
with the workload's hibernation image (Table 8: Specjbb's 18 GB takes 230 s
to save and 157 s to resume on the testbed's disks) and becomes pathological
for slab-heavy caches like Memcached.

**Proactive Hibernation** periodically flushes modified state to disk during
normal operation, shrinking the post-failure write to the recently-dirtied
residual.  The paper measured a 22 % save-time reduction for Specjbb —
noticeably less than proactive *migration* achieves, because disk flushes
are throttled to stay imperceptible, leaving a larger residual.  We model
the residual as ``PROACTIVE_DISK_RESIDUAL_FACTOR * hot_dirty_bytes``.

**Hibernate-L** throttles to the deepest P-state while writing the image:
half the peak draw, ~1.6x the save time (Table 8: 385 s vs 230 s).
"""

from __future__ import annotations

from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
    check_budget,
)
from repro.techniques.sleep import throttled_save_stretch

#: The disk-flush cadence is limited to avoid perceivable overhead during
#: normal operation, so the un-retired residual exceeds the instantaneous
#: hot dirty set.  1.4 calibrates Specjbb's proactive save to the paper's
#: 22 % reduction (179 s vs 230 s).
PROACTIVE_DISK_RESIDUAL_FACTOR = 1.4


class Hibernation(OutageTechnique):
    """Persist state to local disk, power down, resume after restore.

    Args:
        low_power: Write the image in the deepest P-state (Hibernate-L).
        proactive: Periodically flush dirty state during normal operation so
            only the residual is written after the failure (Proactive
            Hibernation).
    """

    name = "hibernate"

    def __init__(self, low_power: bool = False, proactive: bool = False):
        self.low_power = low_power
        self.proactive = proactive
        parts = ["proactive-"] if proactive else []
        parts.append("hibernate")
        if low_power:
            parts.append("-l")
        self.name = "".join(parts)

    def save_image_bytes(self, context: TechniqueContext) -> float:
        """Bytes written per server after the failure."""
        workload = context.workload
        full = workload.effective_hibernate_image_bytes
        if self.proactive:
            residual = PROACTIVE_DISK_RESIDUAL_FACTOR * workload.hot_dirty_bytes
            image = min(full, residual)
        else:
            image = full
        return image * context.state_concentration

    def resume_image_bytes(self, context: TechniqueContext) -> float:
        """Bytes read per server on resume — always the *full* image (the
        proactive base image plus the residual were both persisted)."""
        return context.workload.effective_hibernate_image_bytes * context.state_concentration

    def plan(self, context: TechniqueContext) -> OutagePlan:
        cluster = context.cluster
        server = context.server
        workload = context.workload
        active = context.active_servers

        if self.low_power:
            pstate = server.pstates.slowest
            stretch = throttled_save_stretch(pstate.frequency_ratio)
        else:
            pstate = server.pstates.fastest
            stretch = 1.0

        save_seconds = (
            workload.hibernate_save_seconds(
                server, image_bytes=self.save_image_bytes(context)
            )
            * stretch
        )
        resume_seconds = workload.hibernate_resume_seconds(
            server, image_bytes=self.resume_image_bytes(context)
        )

        persist_power = cluster.power_watts(
            active_servers=active,
            utilization=workload.utilization,
            pstate=pstate,
            parked_power_watts=0.0,
        )
        persist = PlanPhase(
            name="persist" + ("-throttled" if self.low_power else ""),
            power_watts=persist_power,
            performance=0.0,
            duration_seconds=save_seconds,
            committed=True,
            state_safe=False,
            resume_downtime_seconds=resume_seconds,
            active_servers=active,
        )
        off = PlanPhase(
            name="hibernated",
            power_watts=0.0,
            performance=0.0,
            duration_seconds=float("inf"),
            state_safe=True,  # state rests on disk; battery death is harmless
            resume_downtime_seconds=resume_seconds,
        )
        phases = [persist, off]
        check_budget(phases, context.power_budget_watts, self.name)
        return OutagePlan(technique_name=self.name, phases=phases)
