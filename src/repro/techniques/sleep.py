"""Sleep (S3) and its low-power entry variant Sleep-L (Tables 5, 6, 8).

The application and OS stack suspend to RAM; DRAM self-refresh holds state
at ~5 W per server while everything else powers off.  No service is offered
during the outage, but resume is fast (Table 8: Specjbb suspends in 6 s and
resumes in 8 s, independent of footprint) — which is why Sleep-L's down time
for a 30 s outage is just ~38 s versus MinCost's ~400 s.

Caveat the simulator enforces: S3 is *not* state-safe — if the battery dies
while asleep, self-refresh stops and volatile state is lost.  The extremely
low draw makes that rare (UPS runtimes stretch enormously at light load via
the Peukert effect), which is exactly the paper's Throttle+Sleep-L story for
multi-hour outages.

The "-L" variant throttles to the deepest P-state while suspending, halving
the peak draw the backup must be rated for at the cost of a slower suspend
(Table 8: 8 s instead of 6 s).
"""

from __future__ import annotations

from repro.servers.pstates import throttled_performance
from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
    check_budget,
)

#: CPU-bound fraction of the suspend/persist path itself: state movement is
#: roughly half compute (page-table walks, compression) and half I/O, so
#: throttled "-L" save operations stretch by 1 / perf(0.5, r).
SAVE_PATH_CPU_BOUND_FRACTION = 0.5


def throttled_save_stretch(frequency_ratio: float) -> float:
    """Multiplier on save-path durations when throttled to ``frequency_ratio``."""
    return 1.0 / throttled_performance(SAVE_PATH_CPU_BOUND_FRACTION, frequency_ratio)


class Sleep(OutageTechnique):
    """Suspend-to-RAM for the outage duration.

    Args:
        low_power: Enter the suspend path in the deepest P-state (Sleep-L),
            halving suspend-phase power at the cost of a slower suspend.
    """

    name = "sleep"

    def __init__(self, low_power: bool = False):
        self.low_power = low_power
        self.name = "sleep-l" if low_power else "sleep"

    def plan(self, context: TechniqueContext) -> OutagePlan:
        cluster = context.cluster
        server = context.server
        workload = context.workload
        active = context.active_servers

        if self.low_power:
            pstate = server.pstates.slowest
            stretch = throttled_save_stretch(pstate.frequency_ratio)
        else:
            pstate = server.pstates.fastest
            stretch = 1.0

        suspend_power = cluster.power_watts(
            active_servers=active,
            utilization=workload.utilization,
            pstate=pstate,
            parked_power_watts=0.0,
        )
        suspend = PlanPhase(
            name="suspend" + ("-throttled" if self.low_power else ""),
            power_watts=suspend_power,
            performance=0.0,
            duration_seconds=server.sleep.s3_enter_seconds * stretch,
            committed=True,
            state_safe=False,
            resume_downtime_seconds=server.sleep.s3_exit_seconds,
            active_servers=active,
        )
        asleep = PlanPhase(
            name="asleep-s3",
            power_watts=active * server.sleep.s3_power_watts,
            performance=0.0,
            duration_seconds=float("inf"),
            state_safe=False,  # self-refresh dies with the battery
            resume_downtime_seconds=server.sleep.s3_exit_seconds,
            active_servers=active,
        )
        phases = [suspend, asleep]
        check_budget(phases, context.power_budget_watts, self.name)
        return OutagePlan(technique_name=self.name, phases=phases)
