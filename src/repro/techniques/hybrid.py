"""Hybrid sustain-execution + save-state techniques (Table 6).

The sustain family keeps serving but drains the battery; the save family
preserves state at near-zero draw but serves nothing.  A hybrid runs the
sustain technique *as long as the battery can afford it* — reserving exactly
enough charge to then execute the save technique for the rest of the outage
— and parks.  The reservation arithmetic is Peukert-aware and is solved by
the simulator when it reaches the adaptive phase; this module only compiles
the phase structure:

    [sustain phases..., terminal -> adaptive] + [save phases...]

Table 6 instances (see :mod:`repro.techniques.registry`):

* ``Throttle+Sleep-L``   — throttle, then suspend (throttled) to RAM.
* ``Throttle+Hibernate`` — throttle, then persist (throttled) to disk.
* ``Migration+Sleep-L``  — consolidate, serve consolidated, then suspend
  the surviving half (the emptied half is already off).

When the sustain stage is a :class:`~repro.techniques.migration.Migration`,
the save stage is compiled in the *consolidated* context: only the surviving
servers hold (doubled) state, so sleep power halves and hibernate images
double per survivor.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import TechniqueError
from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
    check_budget,
)
from repro.techniques.migration import Migration


class SustainThenSave(OutageTechnique):
    """Run ``sustain`` while battery allows, then fall back to ``save``.

    Args:
        sustain: A sustain-execution technique (Throttling or Migration).
        save: A save-state technique (Sleep or Hibernation variants).
        name: Optional explicit display name.
    """

    def __init__(
        self,
        sustain: OutageTechnique,
        save: OutageTechnique,
        name: "str | None" = None,
    ):
        self.sustain = sustain
        self.save = save
        self.name = name if name is not None else f"{sustain.name}+{save.name}"

    def plan(self, context: TechniqueContext) -> OutagePlan:
        sustain_plan = self.sustain.plan(context)

        if isinstance(self.sustain, Migration):
            save_context = self.sustain.consolidated_context(context)
        else:
            save_context = context
        save_plan = self.save.plan(save_context)

        *sustain_body, sustain_tail = sustain_plan.phases
        if any(phase.is_adaptive for phase in sustain_plan.phases):
            raise TechniqueError(
                f"{self.name}: sustain stage already contains an adaptive "
                "phase (hybrids cannot be nested)"
            )
        adaptive_tail = replace(sustain_tail, duration_seconds=None)

        phases: "list[PlanPhase]" = [*sustain_body, adaptive_tail, *save_plan.phases]
        check_budget(phases, context.power_budget_watts, self.name)
        return OutagePlan(technique_name=self.name, phases=phases)
