"""Migration (consolidation and shutdown) and Proactive Migration.

Immediately after the failure, the volatile state of half the servers is
live-migrated (Xen-style pre-copy) to the other half; the emptied servers
power down and the survivors serve consolidated load.  Because today's
servers are far from energy-proportional (80 W idle vs 250 W peak), half the
servers at doubled utilisation draw much less than all servers throttled to
half throughput — the paper's reason migration beats throttling for long
outages.

**Pre-copy model.**  Iterative copy at NIC bandwidth ``B`` races the dirty
rate ``d``; the total moved converges like ``S / (B - d)`` when ``d < B``
(we cap the effective dirty rate at 80 % of ``B`` so the model degrades
gracefully for write-heavy workloads, mirroring how real migrations bound
iterations and stop-and-copy).  For Specjbb — 18 GB dirtied at ~95 MB/s over
1 Gbps — this yields the paper's measured ~10 minutes.

**Proactive Migration** (Remus-style periodic flush to remote memory during
normal operation, Section 5) leaves only the hot dirty residual to move
after the failure: 10 GB -> ~5 minutes for Specjbb, as measured.

An optional P-state throttles the migration and the consolidated phase —
the paper combines the two because the copy's "momentary spike" must be
suppressed when the backup's power rating is below the normal draw.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TechniqueError
from repro.servers.pstates import PState
from repro.techniques.base import (
    OutagePlan,
    OutageTechnique,
    PlanPhase,
    TechniqueContext,
    check_budget,
)

#: Effective dirty-rate cap as a fraction of copy bandwidth (bounded
#: iterations + stop-and-copy keep real migrations convergent).
DIRTY_RATE_CONVERGENCE_CAP = 0.8

#: Throughput delivered while a live migration is in flight (tracking dirty
#: pages and copying steals cycles and memory bandwidth).
MIGRATION_SERVICE_FACTOR = 0.85

#: Power overhead of the copy itself on source and destination, as a
#: fraction of normal draw — the "momentary spike" of Section 6.2.
MIGRATION_POWER_OVERHEAD = 0.05


def precopy_migration_seconds(
    state_bytes: float,
    dirty_bytes_per_second: float,
    bandwidth_bytes_per_second: float,
) -> float:
    """Wall-clock time of an iterative pre-copy migration."""
    if state_bytes <= 0:
        return 0.0
    if bandwidth_bytes_per_second <= 0:
        raise TechniqueError("migration bandwidth must be positive")
    effective_dirty = min(
        dirty_bytes_per_second, DIRTY_RATE_CONVERGENCE_CAP * bandwidth_bytes_per_second
    )
    return state_bytes / (bandwidth_bytes_per_second - effective_dirty)


class Migration(OutageTechnique):
    """Consolidate onto a fraction of the servers and power down the rest.

    Args:
        proactive: Only the hot dirty residual moves after the failure
            (Proactive Migration; the periodic flush runs during normal,
            utility-powered operation at imperceptible overhead).
        shrink_factor: Fraction of servers that survive consolidation
            (paper default: half, "powering down every alternate server").
        pstate_index: Optional P-state for the migration and consolidated
            phases (suppresses the copy spike / fits small UPS ratings).
    """

    name = "migration"

    def __init__(
        self,
        proactive: bool = False,
        shrink_factor: float = 0.5,
        pstate_index: Optional[int] = None,
    ):
        self.proactive = proactive
        self.shrink_factor = shrink_factor
        self.pstate_index = pstate_index
        self.name = "proactive-migration" if proactive else "migration"
        if pstate_index is not None:
            self.name += f"-p{pstate_index}"

    def _pstate(self, context: TechniqueContext) -> Optional[PState]:
        if self.pstate_index is None:
            return None
        ladder = context.server.pstates
        if self.pstate_index >= len(ladder):
            raise TechniqueError(
                f"P-state index {self.pstate_index} out of range"
            )
        return ladder[self.pstate_index]

    def moved_bytes_per_server(self, context: TechniqueContext) -> float:
        workload = context.workload
        if self.proactive:
            return workload.proactive_residual_bytes()
        return workload.memory_state_bytes

    def migration_seconds(self, context: TechniqueContext) -> float:
        """Time to evacuate each source server (sources copy in parallel)."""
        return precopy_migration_seconds(
            state_bytes=self.moved_bytes_per_server(context),
            dirty_bytes_per_second=context.workload.dirty_bytes_per_second,
            bandwidth_bytes_per_second=context.server.nic_bandwidth_bytes_per_second,
        )

    def plan(self, context: TechniqueContext) -> OutagePlan:
        cluster = context.cluster
        workload = context.workload
        pstate = self._pstate(context)
        targets = cluster.consolidation_targets(self.shrink_factor)

        freq = pstate.frequency_ratio if pstate is not None else 1.0
        throttle_perf = workload.throttled_performance(freq)

        migrate_power = (
            cluster.power_watts(utilization=workload.utilization, pstate=pstate)
            * (1.0 + MIGRATION_POWER_OVERHEAD)
        )
        migrate = PlanPhase(
            name="migrating",
            power_watts=migrate_power,
            performance=MIGRATION_SERVICE_FACTOR * throttle_perf,
            duration_seconds=self.migration_seconds(context),
            committed=False,  # an aborted migration just resumes in place
            state_safe=False,
            resume_downtime_seconds=0.0,
        )
        consolidated_perf = cluster.consolidated_performance(targets) * throttle_perf
        consolidated = PlanPhase(
            name=f"consolidated@{targets}",
            power_watts=cluster.consolidated_power_watts(targets, pstate=pstate),
            performance=consolidated_perf,
            duration_seconds=float("inf"),
            state_safe=False,
            resume_downtime_seconds=0.0,  # migrate back while serving
            active_servers=targets,
        )
        phases = [migrate, consolidated]
        check_budget(phases, context.power_budget_watts, self.name)
        return OutagePlan(technique_name=self.name, phases=phases)

    def consolidated_context(self, context: TechniqueContext) -> TechniqueContext:
        """The context seen by techniques chained *after* consolidation
        (fewer holders, concentrated state)."""
        targets = context.cluster.consolidation_targets(self.shrink_factor)
        return TechniqueContext(
            cluster=context.cluster,
            workload=context.workload,
            power_budget_watts=context.power_budget_watts,
            holding_servers=targets,
        )
