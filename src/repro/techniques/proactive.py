"""Named aliases for the proactive techniques (Section 5).

Proactive Migration and Proactive Hibernation differ from their reactive
parents only in how much state remains to move after the failure — the
periodic flushing happens during normal, utility-powered operation, at a
cadence bounded to stay imperceptible.  The mechanics live in
:mod:`repro.techniques.migration` and :mod:`repro.techniques.hibernation`;
these subclasses fix the ``proactive`` flag and exist so the registry, the
benchmarks and user code can name the paper's techniques directly.
"""

from __future__ import annotations

from typing import Optional

from repro.techniques.hibernation import Hibernation
from repro.techniques.migration import Migration


class ProactiveMigration(Migration):
    """Remus-style periodic flush to remote memory; only the hot dirty
    residual migrates after a failure (Specjbb: 18 GB -> 10 GB, 10 min ->
    5 min)."""

    def __init__(
        self, shrink_factor: float = 0.5, pstate_index: Optional[int] = None
    ):
        super().__init__(
            proactive=True, shrink_factor=shrink_factor, pstate_index=pstate_index
        )


class ProactiveHibernation(Hibernation):
    """Periodic flush of dirty state to local disk; only the residual is
    written after a failure (Specjbb: 230 s -> ~179 s save)."""

    def __init__(self, low_power: bool = False):
        super().__init__(low_power=low_power, proactive=True)
