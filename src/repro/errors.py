"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch domain failures without also swallowing programming errors.  Input
validation failures additionally derive from ``ValueError`` so that the
library behaves like idiomatic Python for callers who do not know about the
domain hierarchy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid backup infrastructure configuration was supplied."""


class CapacityError(ReproError, ValueError):
    """A power or energy capacity constraint is violated.

    Raised, for example, when a load larger than the UPS power rating is
    switched onto its battery, or when a plan requires more battery energy
    than is provisioned.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class InvariantViolation(SimulationError):
    """A runtime invariant guard caught an inconsistent simulation state.

    Raised by :class:`repro.checks.InvariantGuard` when strict checking is
    enabled and a physical invariant (state of charge in ``[0, 1]``, energy
    conservation, monotone discharge, non-negative downtime, ordered
    schedules) is violated mid-run.  Deriving from :class:`SimulationError`
    keeps existing ``except SimulationError`` handlers working.
    """


class WorkloadError(ReproError, ValueError):
    """An invalid workload description or parameter was supplied."""


class TechniqueError(ReproError, ValueError):
    """An outage-handling technique was misconfigured or misapplied."""


class InfeasibleError(ReproError):
    """A requested operating point cannot be met by any provisioning.

    Unlike :class:`CapacityError`, which flags a violated constraint inside a
    concrete simulation, this signals that a *search* (e.g. the provisioning
    planner) proved no feasible answer exists.
    """


class ObsError(ReproError, RuntimeError):
    """The observability subsystem was misused or fed malformed data.

    Raised for double activation of an ambient session, ending a span on
    the wrong thread, metric type mismatches (a counter re-registered as a
    gauge), and trace/event files that fail schema validation.  Never
    raised from a disabled-path hook — observability off cannot fail.
    """


class RunnerError(ReproError, RuntimeError):
    """The experiment-execution subsystem failed.

    Raised for malformed job lists (duplicate indices, unpicklable
    callables), invalid executor/cache parameters, and — under
    ``strict=True`` — when any job in a run fails.
    """


class PolicyError(ReproError, ValueError):
    """An outage-dispatch policy was misconfigured or misbehaved.

    Raised by :func:`repro.policy.parse_policy` for unknown policy names
    and out-of-range parameters, and by the policy engine when a
    controller returns a malformed :class:`~repro.policy.PolicyDecision`
    (no mode and no program, an unknown mode name, a program without a
    terminal phase).  Never raised on the plan path — simulations with no
    policy configured cannot see it.
    """


class FaultInjectionError(ReproError, ValueError):
    """A fault-injection plan or spec string is malformed.

    Raised by :meth:`repro.faults.FaultPlan.parse` for unknown keys and
    out-of-range probabilities, and by :class:`repro.faults.FaultInjector`
    for invalid seeding.  Never raised while a simulation is running —
    fault *activations* are legitimate simulated events, not errors.
    """


class ServeError(ReproError, RuntimeError):
    """The evaluation service failed or was misused.

    Base class for everything :mod:`repro.serve` raises; the HTTP front
    end maps subclasses onto status codes (400 / 429 / 504) and never
    lets one escape a request handler.
    """


class ProtocolError(ServeError, ValueError):
    """A request does not conform to the serve protocol.

    Raised for unknown analyses, missing or unknown parameters,
    out-of-range values and version mismatches.  Maps to HTTP 400.
    """


class QueueFullError(ServeError):
    """The admission queue is at its bound; the request was shed.

    Load shedding is a feature, not a failure: the HTTP front end maps
    this to 429 with a ``Retry-After`` hint instead of letting the queue
    (and every queued request's latency) grow without bound.
    """


class DeadlineError(ServeError):
    """A request's deadline expired before its evaluation finished.

    Raised for requests that were still queued when their deadline
    passed.  Maps to HTTP 504.
    """


class PoisonedRequestError(ServeError):
    """A request fingerprint is quarantined after repeated worker deaths.

    The supervisor's circuit breaker trips when the same fingerprint is
    in flight across ``threshold`` worker deaths; further identical
    requests are refused with a diagnostic 503 instead of being allowed
    to crash-loop the pool.  The attributes feed the response body.
    """

    def __init__(
        self,
        message: str,
        fingerprint: str = "",
        analysis: str = "",
        deaths: int = 0,
    ) -> None:
        super().__init__(message)
        self.fingerprint = fingerprint
        self.analysis = analysis
        self.deaths = deaths


class RetryExhaustedError(RunnerError):
    """A job kept failing with retryable errors until attempts ran out.

    Raised by executors under ``strict=True`` when a
    :class:`repro.runner.RetryPolicy` re-ran a failing job
    ``max_attempts`` times without success.  Deriving from
    :class:`RunnerError` keeps existing ``except RunnerError`` handlers
    working.
    """
