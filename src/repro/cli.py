"""Command-line interface: run the paper's analyses without writing code.

Subcommands::

    python -m repro configs                      # Table 3
    python -m repro techniques                   # registered techniques
    python -m repro workloads                    # Table 7
    python -m repro evaluate  -w specjbb -c LargeEUPS -t sleep-l -m 30
    python -m repro plan      -w websearch -m 30 --min-perf 0.9 --max-down 0
    python -m repro rank      -w memcached -m 30
    python -m repro availability -w specjbb -c LargeEUPS -t throttle+sleep-l
    python -m repro whatif    -w memcached -c NoDG -t sleep-l
    python -m repro sweep     -w memcached --kind techniques -m 5 30
    python -m repro serve     --port 8321 --cache .cache
    python -m repro loadgen   --url http://127.0.0.1:8321 --duration 10
    python -m repro cache     .cache --max-bytes 100000000
    python -m repro selfcheck --fast
    python -m repro tco

``availability``, ``rank``, ``whatif`` and ``sweep`` accept ``--json``:
the canonical JSON payload printed is byte-identical to the ``result``
field a running ``repro serve`` returns for the same query (see
docs/SERVE.md for the protocol and the certification that enforces it).

The ``availability``, ``rank`` and ``reproduce`` subcommands run on the
:mod:`repro.runner` subsystem and accept ``--jobs N`` (worker processes;
results are bit-identical at every worker count), ``--cache DIR`` (an
on-disk result cache — reruns skip already-computed jobs and report the
hits), ``--seed S`` (root of the per-job RNG tree), ``--retries N``
(re-run transiently failed jobs with deterministic backoff),
``--checkpoint FILE`` (crash-safe JSONL progress manifest) and
``--resume`` (skip work the checkpoint records, served from the cache).
Each prints a ``[runner] ...`` telemetry line after its table and exits
non-zero if any job ultimately failed.

``evaluate`` and ``availability`` accept ``--faults SPEC`` — a comma list
like ``dg_start=0.01,dg_mtbf_h=100,batt_fade=0.2,ats_fail=0.01`` injecting
backup-component failures into the simulation (see docs/FAULTS.md) — and
``repro chaos`` breaks the runner itself on purpose (worker kills,
transient failures, cache corruption) and certifies that every recovery
path reproduces baseline-identical results.

Every subcommand additionally accepts the :mod:`repro.obs` flags:
``--trace FILE`` writes a Chrome/Perfetto ``trace_event`` JSON of the run
(open it at https://ui.perfetto.dev) and ``--metrics FILE`` writes a JSONL
event log (spans + metrics snapshot) that ``repro stats FILE`` renders as
a human summary.  With neither flag, observability stays off and costs
nothing.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.availability import AvailabilityAnalyzer
from repro.analysis.report import format_table
from repro.core.configurations import PAPER_CONFIGURATIONS, get_configuration
from repro.core.performability import evaluate_point
from repro.core.planner import ProvisioningPlanner
from repro.core.selection import rank_techniques
from repro.core.tco import TCOModel
from repro.errors import InfeasibleError, ReproError, RunnerError
from repro.faults import FaultInjector, FaultPlan
from repro.runner import ResultCache, RetryPolicy, SweepCheckpoint, make_executor
from repro.techniques.registry import get_technique, technique_names
from repro.units import minutes, to_minutes
from repro.workloads.registry import get_workload, workload_names


def _cmd_configs(_args: argparse.Namespace) -> int:
    rows = [
        (
            c.name,
            c.dg_power_fraction,
            c.ups_power_fraction,
            f"{to_minutes(c.ups_runtime_seconds):.0f} min",
            c.normalized_cost(),
        )
        for c in PAPER_CONFIGURATIONS
    ]
    print(
        format_table(
            ("configuration", "DG", "UPS power", "UPS energy", "cost"),
            rows,
            title="Table 3 configurations (cost normalised to MaxPerf)",
        )
    )
    return 0


def _cmd_techniques(_args: argparse.Namespace) -> int:
    for name in technique_names():
        print(name)
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = []
    for name in workload_names():
        workload = get_workload(name)
        rows.append(
            (
                name,
                f"{workload.memory_state_bytes / 1e9:.0f} GB",
                workload.cpu_bound_fraction,
                workload.metric.value,
            )
        )
    print(
        format_table(
            ("workload", "memory", "cpu-bound", "metric"),
            rows,
            title="Table 7 workloads",
        )
    )
    return 0


def _parse_faults(args: argparse.Namespace) -> Optional[FaultPlan]:
    """The ``--faults`` spec as a :class:`FaultPlan`, or None when absent."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    return FaultPlan.parse(spec)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    plan = _parse_faults(args)
    draw = None
    if plan is not None and not plan.is_null:
        draw = FaultInjector(plan, seed=args.fault_seed).draw()
    point = evaluate_point(
        get_configuration(args.configuration),
        get_technique(args.technique),
        get_workload(args.workload),
        minutes(args.outage_minutes),
        num_servers=args.servers,
        faults=draw,
    )
    rows = [
        ("configuration", point.configuration_name),
        ("technique", point.technique_name),
        ("workload", point.workload_name),
        ("outage (min)", args.outage_minutes),
        ("normalized cost", point.normalized_cost),
        ("feasible", point.feasible),
        ("performance", point.performance),
        ("down time (min)", point.downtime_minutes),
        ("crashed", point.crashed),
    ]
    if draw is not None:
        rows.append(("faults", args.faults))
    print(format_table(("quantity", "value"), rows))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    planner = ProvisioningPlanner(get_workload(args.workload), num_servers=args.servers)
    max_down = float("inf") if args.max_down_minutes is None else minutes(
        args.max_down_minutes
    )
    try:
        result = planner.plan(
            outage_seconds=minutes(args.outage_minutes),
            min_performance=args.min_performance,
            max_downtime_seconds=max_down,
        )
    except InfeasibleError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    config = result.configuration
    rows = [
        ("technique", result.technique_name),
        ("normalized cost", result.normalized_cost),
        ("UPS power fraction", config.ups_power_fraction),
        ("UPS runtime (min)", to_minutes(config.ups_runtime_seconds)),
        ("performance", result.point.performance),
        ("down time (min)", result.point.downtime_minutes),
    ]
    print(format_table(("quantity", "value"), rows, title="cheapest plan"))
    return 0


def _make_executor(args: argparse.Namespace):
    """Build the runner executor the ``--jobs/--cache/--retries/--checkpoint``
    flags describe."""
    cache = ResultCache(args.cache) if getattr(args, "cache", None) else None
    retry = None
    retries = getattr(args, "retries", 0) or 0
    if retries:
        retry = RetryPolicy(
            max_attempts=retries + 1, seed=getattr(args, "seed", 0) or 0
        )
    checkpoint = None
    checkpoint_path = getattr(args, "checkpoint", None)
    resume = bool(getattr(args, "resume", False))
    if resume and not checkpoint_path:
        raise RunnerError("--resume requires --checkpoint FILE")
    if resume and cache is None:
        raise RunnerError(
            "--resume requires --cache DIR (checkpointed results are "
            "served from the cache)"
        )
    if checkpoint_path:
        checkpoint = SweepCheckpoint(checkpoint_path, resume=resume)
    return make_executor(
        jobs=getattr(args, "jobs", 1),
        cache=cache,
        retry=retry,
        checkpoint=checkpoint,
    )


def _print_run_stats(executor) -> None:
    checkpoint = getattr(executor, "checkpoint", None)
    if checkpoint is not None:
        checkpoint.close()
    report = getattr(executor, "last_report", None)
    if report is not None:
        print(f"[runner] {report.stats.summary()}")


def _runner_exit(executor, code: int = 0) -> int:
    """Fold harness-level job failures into the exit code: non-zero with a
    one-line summary on stderr whenever the last run report is not ok."""
    report = getattr(executor, "last_report", None)
    if report is not None and not report.ok:
        first = report.failures[0]
        print(
            f"error: {len(report.failures)} of {report.stats.jobs_total} runner "
            f"jobs failed; first: {first.label}: {first.error}",
            file=sys.stderr,
        )
        return code or 1
    return code


def _emit_canonical(
    args: argparse.Namespace, analysis: str, params: dict
) -> int:
    """Evaluate through the serve protocol and print the canonical payload.

    This is the CLI half of the bit-identical contract: the body is
    validated by the same ``parse_request``, evaluated by the same job
    builders, and serialised by the same ``canonical_json`` as an HTTP
    response's ``result`` field — so diffing the two is a pure string
    comparison (the serve-smoke certification does exactly that).
    """
    from repro.serve.analyses import evaluate_request
    from repro.serve.protocol import PROTOCOL_VERSION, canonical_json, parse_request

    request = parse_request(
        {
            "v": PROTOCOL_VERSION,
            "analysis": analysis,
            "params": {k: v for k, v in params.items() if v is not None},
        }
    )
    executor = _make_executor(args)
    result = evaluate_request(request, executor=executor)
    print(canonical_json(result))
    return _runner_exit(executor)


def _cmd_rank(args: argparse.Namespace) -> int:
    technique_list = (
        args.techniques.split(",") if getattr(args, "techniques", None) else None
    )
    if getattr(args, "json", False):
        return _emit_canonical(
            args,
            "rank",
            {
                "workload": args.workload,
                "outage_minutes": args.outage_minutes,
                "servers": args.servers,
                "techniques": technique_list,
            },
        )
    executor = _make_executor(args)
    rank_kwargs = {}
    if technique_list is not None:
        rank_kwargs["technique_names"] = technique_list
    ranking = rank_techniques(
        get_workload(args.workload),
        minutes(args.outage_minutes),
        num_servers=args.servers,
        executor=executor,
        engine=getattr(args, "engine", "scalar"),
        **rank_kwargs,
    )
    rows = [
        (
            sized.point.technique_name,
            sized.normalized_cost,
            sized.point.performance,
            sized.point.downtime_minutes,
        )
        for sized in ranking
    ]
    print(
        format_table(
            ("technique", "cost", "perf", "down (min)"),
            rows,
            title=f"{args.workload}, {args.outage_minutes} min outage "
            "(each at its lowest-cost UPS)",
        )
    )
    _print_run_stats(executor)
    return _runner_exit(executor)


def _cmd_availability(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        return _emit_canonical(
            args,
            "availability",
            {
                "workload": args.workload,
                "configuration": args.configuration,
                "technique": args.technique,
                "years": args.years,
                "servers": args.servers,
                "seed": args.seed,
                "faults": getattr(args, "faults", None),
            },
        )
    analyzer = AvailabilityAnalyzer(
        get_workload(args.workload), num_servers=args.servers, seed=args.seed
    )
    executor = _make_executor(args)
    report = analyzer.analyze(
        get_configuration(args.configuration),
        get_technique(args.technique),
        years=args.years,
        executor=executor,
        faults=_parse_faults(args),
        engine=getattr(args, "engine", "scalar"),
    )
    rows = [
        ("years simulated", report.years_simulated),
        ("outages simulated", report.outages_simulated),
        ("mean down (min/yr)", report.mean_downtime_minutes_per_year),
        ("p95 down (min/yr)", report.p95_downtime_minutes_per_year),
        ("availability", report.availability),
        ("nines", report.nines),
        ("crash fraction", report.crash_fraction),
        ("expected loss ($/KW/yr)", report.expected_loss_dollars_per_kw_year),
    ]
    print(format_table(("quantity", "value"), rows, title="availability"))
    _print_run_stats(executor)
    return _runner_exit(executor)


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, run_all, run_experiment

    quick = not args.full
    executor = _make_executor(args)
    if args.experiment:
        results = [run_experiment(args.experiment, quick=quick)]
    else:
        results = run_all(quick=quick, executor=executor)
    for result in results:
        print(result.rendered)
        print()
    if args.csv_dir:
        import os

        from repro.analysis.export import to_csv

        os.makedirs(args.csv_dir, exist_ok=True)
        for result in results:
            to_csv(
                list(result.records),
                path=os.path.join(args.csv_dir, f"{result.experiment_id}.csv"),
            )
        print(f"wrote {len(results)} CSV files to {args.csv_dir}")
    if not args.experiment:
        missing = set(EXPERIMENTS) - {r.experiment_id for r in results}
        if missing:  # pragma: no cover - registry bookkeeping
            print(f"warning: experiments not run: {sorted(missing)}")
        _print_run_stats(executor)
    return _runner_exit(executor)


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.checks.fuzz import run_fuzz
    from repro.checks.selfcheck import run_selfcheck

    executor = _make_executor(args)
    report = run_selfcheck(
        fast=args.fast, workload=args.workload, executor=executor
    )
    by_check = Counter(r["check"] for r in report.records)
    failed_by_check = Counter(r["check"] for r in report.failures)
    rows = [
        (check, total, failed_by_check.get(check, 0))
        for check, total in sorted(by_check.items())
    ]
    print(
        format_table(
            ("check", "run", "failed"),
            rows,
            title="selfcheck: closed forms vs numeric oracles (Table 3 sweep)",
        )
    )
    for failure in report.failures:
        print(f"FAIL {failure['check']} {failure['subject']}: {failure['detail']}")
    _print_run_stats(executor)

    fuzz_cases = args.fuzz if args.fuzz is not None else (10 if args.fast else 40)
    fuzz_report = None
    if fuzz_cases > 0:
        fuzz_report = run_fuzz(cases=fuzz_cases, seed=args.seed, executor=executor)
        print(f"[fuzz] {fuzz_report.summary()}")
        for violation in fuzz_report.violations:
            print(f"FAIL fuzz: {violation}")
        _print_run_stats(executor)

    ok = report.ok and (fuzz_report is None or fuzz_report.ok)
    print(f"selfcheck: {'OK' if ok else 'FAILED'} ({report.summary()})")
    return _runner_exit(executor, 0 if ok else 1)


def _cmd_tiers(_args: argparse.Namespace) -> int:
    from repro.power.redundancy import ALL_TIERS
    from repro.units import megawatts

    peak = megawatts(1)
    rows = []
    for tier in ALL_TIERS:
        rows.append(
            (
                tier.name,
                tier.redundancy.value,
                tier.backup_cost(peak) / 1e3,
                tier.backup_delivery_probability(),
                tier.allowed_downtime_minutes_per_year,
            )
        )
    print(
        format_table(
            (
                "tier",
                "scheme",
                "backup k$/yr (1 MW)",
                "DG delivery prob",
                "allowed down (min/yr)",
            ),
            rows,
            title="Tier classification comparator",
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.events.startswith(("http://", "https://")):
        # Live-server mode: one dashboard frame from /healthz, /stats
        # and /slo — the SLO report rides along with the counters.
        from repro.serve.top import gather, render_dashboard

        snapshot = gather(args.events)
        print(render_dashboard(snapshot), end="")
        return 0 if snapshot.get("health") is not None else 1

    from repro.obs.export import read_events_jsonl, render_summary

    spans, metrics = read_events_jsonl(args.events)
    print(render_summary(spans, metrics))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import run_top

    return run_top(
        args.url.rstrip("/"), interval_s=args.interval, once=args.once
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import bench as benchmod

    history_path = args.history
    if args.bench_command == "record":
        entries = benchmod.record(root=args.root, history_path=history_path)
        if not entries:
            print("[bench] no known BENCH_*.json artifacts found")
            return 1
        for entry in entries:
            print(
                f"[bench] recorded {entry['bench']} from {entry['source']}: "
                + ", ".join(
                    f"{k}={v:g}" for k, v in sorted(entry["metrics"].items())
                )
            )
        return 0

    path = history_path or benchmod.HISTORY_FILENAME
    entries = benchmod.load_history(path)
    if args.bench_command == "show":
        for entry in entries:
            print(_json.dumps(entry, sort_keys=True))
        if not entries:
            print(f"[bench] no history at {path}", file=sys.stderr)
        return 0

    # check
    if not entries:
        print(f"[bench] no history at {path}; run 'repro bench record' first")
        return 1
    report = benchmod.check(entries, tolerance=args.tolerance)
    print(benchmod.format_report(report))
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.runner.chaos import run_chaos

    report = run_chaos(
        get_workload(args.workload),
        get_configuration(args.configuration),
        get_technique(args.technique),
        years=args.years,
        jobs=args.jobs,
        kills=args.kills,
        flaky=args.flaky,
        corrupt=args.corrupt,
        faults=_parse_faults(args),
        seed=args.seed,
        workdir=args.workdir,
        num_servers=args.servers,
    )
    print(report.summary())
    if not report.ok:
        print(
            "error: chaos certification FAILED — a recovery path diverged "
            "from the undisturbed baseline",
            file=sys.stderr,
        )
        return 1
    print("chaos: OK (every recovery path reproduced the baseline bit-for-bit)")
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    params = {
        "workload": args.workload,
        "configuration": args.configuration,
        "technique": args.technique,
        "nodes_per_bucket": args.nodes_per_bucket,
        "servers": args.servers,
    }
    if args.json:
        return _emit_canonical(args, "whatif", params)
    from repro.serve.analyses import evaluate_request
    from repro.serve.protocol import PROTOCOL_VERSION, parse_request

    executor = _make_executor(args)
    record = evaluate_request(
        parse_request(
            {"v": PROTOCOL_VERSION, "analysis": "whatif", "params": params}
        ),
        executor=executor,
    )
    rows = [
        ("configuration", record["configuration_name"]),
        ("technique", record["technique_name"]),
        ("E[downtime] (min)", record["expected_downtime_minutes"]),
        ("E[performance]", record["expected_performance"]),
        ("P[crash]", record["crash_probability"]),
        ("E[UPS charge]", record["expected_ups_charge"]),
        ("quadrature nodes", len(record["nodes"])),
    ]
    print(
        format_table(
            ("quantity", "value"),
            rows,
            title="expected per-outage behaviour (Figure 1(b) weighting)",
        )
    )
    _print_run_stats(executor)
    return _runner_exit(executor)


def _cmd_sweep(args: argparse.Namespace) -> int:
    params = {
        "workload": args.workload,
        "kind": args.kind,
        "rows": args.rows.split(",") if args.rows else None,
        "outage_minutes": args.outage_minutes,
        "servers": args.servers,
    }
    if args.json:
        return _emit_canonical(args, "sweep", params)
    from repro.serve.analyses import evaluate_request
    from repro.serve.protocol import PROTOCOL_VERSION, parse_request

    executor = _make_executor(args)
    records = evaluate_request(
        parse_request(
            {
                "v": PROTOCOL_VERSION,
                "analysis": "sweep",
                "params": {k: v for k, v in params.items() if v is not None},
            }
        ),
        executor=executor,
    )
    rows = [
        (
            record["row_key"],
            record["outage_seconds"] / 60.0,
            record["normalized_cost"],
            record["performance"],
            record["downtime_minutes"],
        )
        for record in records
    ]
    print(
        format_table(
            ("row", "outage (min)", "cost", "perf", "down (min)"),
            rows,
            title=f"{args.workload} {args.kind} sweep",
        )
    )
    _print_run_stats(executor)
    return _runner_exit(executor)


def _cmd_policy(args: argparse.Namespace) -> int:
    params = {
        "workload": args.workload,
        "configurations": (
            args.configurations.split(",") if args.configurations else None
        ),
        "policies": args.policies if args.policies else None,
        "nodes_per_bucket": args.nodes_per_bucket,
        "servers": args.servers,
    }
    if args.json:
        return _emit_canonical(args, "policy_frontier", params)
    from repro.serve.analyses import evaluate_request
    from repro.serve.protocol import PROTOCOL_VERSION, parse_request

    executor = _make_executor(args)
    payload = evaluate_request(
        parse_request(
            {
                "v": PROTOCOL_VERSION,
                "analysis": "policy_frontier",
                "params": {k: v for k, v in params.items() if v is not None},
            }
        ),
        executor=executor,
    )
    rows = [
        (
            point["configuration"],
            point["policy"],
            point["normalized_cost"],
            point["expected_score"] if point["feasible"] else "-",
            point["expected_performance"] if point["feasible"] else "-",
            (
                point["expected_downtime_seconds"] / 60.0
                if point["feasible"]
                else "inf"
            ),
            "*" if point["on_frontier"] else "",
        )
        for point in payload["points"]
    ]
    print(
        format_table(
            (
                "configuration",
                "policy",
                "cost",
                "E[score]",
                "E[perf]",
                "E[down] (min)",
                "frontier",
            ),
            rows,
            title=f"{args.workload} policy frontier "
            "(Figure 1(b) duration weighting)",
        )
    )
    bound = payload["hindsight_is_upper_bound"]
    dominations = payload["adaptive_dominations"]
    print(f"hindsight upper bound holds: {'yes' if bound else 'NO'}")
    print(f"adaptive-over-static dominations: {len(dominations)}")
    _print_run_stats(executor)
    if not bound:
        print(
            "error: an online policy outscored the hindsight baseline",
            file=sys.stderr,
        )
        return _runner_exit(executor) or 1
    return _runner_exit(executor)


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.contingency:
        from repro.fleet.contingency import contingency_report
        from repro.fleet.spec import get_fleet

        report = contingency_report(get_fleet(args.fleet), depth=args.depth)
        if args.json:
            from repro.runner.jobs import canonical_json

            print(canonical_json(report))
            return 0
        rows = [
            (
                f"N-{s['order']}",
                "+".join(s["lost_sites"]),
                s["displaced_load"],
                s["absorbed_load"],
                s["delivered_fraction"],
                "+".join(s["degraded_sites"]) or "-",
                "yes" if s["fully_served"] else "NO",
            )
            for s in report["scenarios"]
        ]
        print(
            format_table(
                ("loss", "sites", "displaced", "absorbed", "delivered",
                 "degraded", "served"),
                rows,
                title=f"{args.fleet} contingency analysis",
            )
        )
        for order in range(1, report["depth"] + 1):
            safe = report[f"n{order}_safe"]
            print(f"N-{order} safe: {'yes' if safe else 'NO'}")
        worst = report["worst"]
        print(
            f"worst case: lose {'+'.join(worst['lost_sites'])} -> "
            f"{worst['delivered_fraction']:.3f} of demand served"
        )
        return 0

    params = {
        "fleet": args.fleet,
        "configurations": (
            args.configurations.split(",") if args.configurations else None
        ),
        "technique": args.technique,
        "years": args.years,
        "seed": args.seed,
    }
    if args.json:
        return _emit_canonical(args, "fleet_frontier", params)
    from repro.serve.analyses import evaluate_request
    from repro.serve.protocol import PROTOCOL_VERSION, parse_request

    executor = _make_executor(args)
    payload = evaluate_request(
        parse_request(
            {
                "v": PROTOCOL_VERSION,
                "analysis": "fleet_frontier",
                "params": {k: v for k, v in params.items() if v is not None},
            }
        ),
        executor=executor,
    )
    frontier_keys = {
        (point["configuration"], point["routing"])
        for point in payload["frontier"]
    }
    rows = [
        (
            cell["configuration"],
            "fleet" if cell["routing"] else "solo",
            cell["normalized_cost"],
            cell["performability"],
            cell["availability"],
            cell["multi_site_outage_probability"],
            "*"
            if (cell["configuration"], cell["routing"]) in frontier_keys
            else "",
        )
        for cell in payload["cells"]
    ]
    print(
        format_table(
            ("configuration", "mode", "cost", "performability",
             "availability", "P(multi-site)", "frontier"),
            rows,
            title=f"{args.fleet} fleet frontier ({args.years} years/cell, "
            f"technique {args.technique})",
        )
    )
    dominations = [d for d in payload["dominations"] if d["cost_saving"] > 0]
    print(f"routed-over-solo dominations: {len(dominations)}")
    for d in dominations:
        print(
            f"  fleet {d['routed']['configuration']} "
            f"(cost {d['routed']['normalized_cost']:.2f}) dominates "
            f"solo {d['single_site']['configuration']} "
            f"(cost {d['single_site']['normalized_cost']:.2f}), "
            f"saving {d['cost_saving']:.2f}"
        )
    verdict = payload["fleet_dominates_single_site"]
    print(
        "fleet provisioning dominates the single-site frontier: "
        f"{'yes' if verdict else 'no'}"
    )
    _print_run_stats(executor)
    return _runner_exit(executor)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.app import ServeConfig, run_server

    slos = None
    if args.slo:
        from repro.obs.slo import parse_slo

        slos = tuple(parse_slo(spec) for spec in args.slo)
    return run_server(
        ServeConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            cache_dir=args.cache,
            queue_bound=args.queue_bound,
            max_batch=args.max_batch,
            batch_wait_s=args.batch_wait_s,
            timeout_s=args.timeout_s,
            cache_max_bytes=args.cache_max_bytes,
            cache_max_age_s=args.cache_max_age_s,
            telemetry=not args.no_telemetry,
            telemetry_window_s=args.telemetry_window_s,
            trace_capacity=args.trace_capacity,
            slos=slos,
            workers=args.workers,
            poison_threshold=args.poison_threshold,
            brownout=not args.no_brownout,
        )
    )


def _cmd_drill(args: argparse.Namespace) -> int:
    import json

    from repro.serve.drill import DrillConfig, run_drill

    bench_workers = tuple(
        int(part) for part in args.bench_workers.split(",") if part.strip()
    )
    report = run_drill(
        DrillConfig(
            workers=args.workers,
            seed=args.seed,
            kills=args.kills,
            corrupt=args.corrupt,
            chaos_duration_s=args.duration,
            poison_threshold=args.poison_threshold,
            bench_workers=bench_workers,
        ),
        emit=print,
    )
    print(report.summary())
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[drill] wrote {args.report}")
    if args.bench:
        artifact = report.bench_artifact()
        if artifact is not None:
            with open(args.bench, "w") as handle:
                json.dump(artifact, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"[drill] wrote {args.bench}")
    return 0 if report.ok else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.serve.loadgen import LoadgenConfig, parse_mix, run_loadgen

    report = run_loadgen(
        LoadgenConfig(
            base_url=args.url.rstrip("/"),
            concurrency=args.concurrency,
            duration_s=args.duration,
            mix=parse_mix(args.mix),
            seed=args.seed,
            deadline_s=args.deadline_s,
            timeout_s=args.timeout,
            net_retries=args.net_retries,
        )
    )
    print(f"[loadgen] {report.summary()}")
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[loadgen] wrote {args.output}")
    return 0 if report.errors == 0 else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.dir)
    if args.max_bytes is not None or args.max_age_s is not None:
        report = cache.prune(max_bytes=args.max_bytes, max_age_s=args.max_age_s)
        print(f"[cache] {report.summary()}")
    stats = cache.stats()
    rows = [
        ("root", str(cache.root)),
        ("active version", cache.version),
        ("live entries", stats.entries),
        ("live bytes", stats.bytes),
        ("corrupt entries", stats.corrupt_entries),
        ("corrupt bytes", stats.corrupt_bytes),
        ("total bytes", stats.total_bytes),
    ]
    for version, (count, size) in stats.versions.items():
        rows.append((f"namespace {version}", f"{count} entries, {size} B"))
    print(format_table(("quantity", "value"), rows, title="result cache"))
    return 0


def _cmd_tco(_args: argparse.Namespace) -> int:
    model = TCOModel()
    rows = [
        ("loss rate ($/KW/min)", model.loss_per_kw_minute),
        ("DG savings ($/KW/yr)", model.dg_savings_per_kw_year),
        ("crossover (min/yr)", model.crossover_minutes_per_year()),
        ("crossover (h/yr)", model.crossover_minutes_per_year() / 60),
    ]
    print(format_table(("quantity", "value"), rows, title="Figure 10 TCO"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Underprovisioning backup power for datacenters (ASPLOS'14)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("configs", help="list Table 3 configurations").set_defaults(
        func=_cmd_configs
    )
    sub.add_parser("techniques", help="list techniques").set_defaults(
        func=_cmd_techniques
    )
    sub.add_parser("workloads", help="list Table 7 workloads").set_defaults(
        func=_cmd_workloads
    )

    def add_common(p: argparse.ArgumentParser, needs_config=False, needs_tech=False):
        p.add_argument("-w", "--workload", required=True, choices=workload_names())
        if needs_config:
            p.add_argument("-c", "--configuration", required=True)
        if needs_tech:
            p.add_argument("-t", "--technique", required=True)
        p.add_argument("-m", "--outage-minutes", type=float, default=30.0)
        p.add_argument("--servers", type=int, default=16)

    def add_fault_flags(p: argparse.ArgumentParser, with_fault_seed=False):
        p.add_argument(
            "--faults",
            default=None,
            metavar="SPEC",
            help="inject backup-power faults, e.g. "
            "'dg_start=0.05,dg_mtbf_h=100,batt_fade=0.2,ats_fail=0.01,"
            "ats_delay=30,psu=0.001' (see docs/FAULTS.md)",
        )
        if with_fault_seed:
            p.add_argument(
                "--fault-seed",
                type=int,
                default=0,
                help="seed for the single fault draw applied to this point",
            )

    p_eval = sub.add_parser("evaluate", help="evaluate one operating point")
    add_common(p_eval, needs_config=True, needs_tech=True)
    add_fault_flags(p_eval, with_fault_seed=True)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_plan = sub.add_parser("plan", help="cheapest backup for targets")
    add_common(p_plan)
    p_plan.add_argument("--min-performance", type=float, default=0.0)
    p_plan.add_argument("--max-down-minutes", type=float, default=None)
    p_plan.set_defaults(func=_cmd_plan)

    def add_runner_flags(p: argparse.ArgumentParser, with_seed: bool = True):
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes (1 = serial; results identical either way)",
        )
        p.add_argument(
            "--cache",
            default=None,
            metavar="DIR",
            help="on-disk result cache directory (reruns skip computed jobs)",
        )
        if with_seed:
            p.add_argument(
                "--seed",
                type=int,
                default=0,
                help="root RNG seed for stochastic stages (deterministic "
                "analyses ignore it)",
            )
        p.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="N",
            help="re-run each transiently failed job up to N times with "
            "deterministic seeded backoff",
        )
        p.add_argument(
            "--checkpoint",
            default=None,
            metavar="FILE",
            help="crash-safe JSONL progress manifest recording finished jobs",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="skip jobs the --checkpoint records (served from --cache); "
            "resumed sweeps are bit-identical to uninterrupted ones",
        )

    def add_json_flag(p: argparse.ArgumentParser):
        p.add_argument(
            "--json",
            action="store_true",
            help="print the canonical JSON payload (byte-identical to the "
            "`repro serve` response body's `result` field for the same query)",
        )

    def add_engine_flag(p: argparse.ArgumentParser):
        p.add_argument(
            "--engine",
            choices=("scalar", "batch"),
            default="scalar",
            help="simulation engine: per-outage scalar loop or the "
            "vectorized repro.vsim kernel (bit-identical results; "
            "see docs/BATCH.md)",
        )

    p_rank = sub.add_parser("rank", help="rank techniques by sized cost")
    add_common(p_rank)
    p_rank.add_argument(
        "--techniques",
        default=None,
        metavar="A,B",
        help="comma-separated technique names to rank (default: the paper "
        "roster; add geo-failover/cloud-burst to pit the fleet against "
        "local techniques)",
    )
    add_runner_flags(p_rank)
    add_json_flag(p_rank)
    add_engine_flag(p_rank)
    p_rank.set_defaults(func=_cmd_rank)

    p_avail = sub.add_parser("availability", help="Monte-Carlo yearly study")
    add_common(p_avail, needs_config=True, needs_tech=True)
    p_avail.add_argument("--years", type=int, default=100)
    add_runner_flags(p_avail)
    add_fault_flags(p_avail)
    add_json_flag(p_avail)
    add_engine_flag(p_avail)
    p_avail.set_defaults(func=_cmd_availability)

    p_whatif = sub.add_parser(
        "whatif", help="expected per-outage behaviour (duration-weighted)"
    )
    add_common(p_whatif, needs_config=True, needs_tech=True)
    p_whatif.add_argument(
        "--nodes-per-bucket",
        type=int,
        default=3,
        help="quadrature nodes per duration bucket",
    )
    add_runner_flags(p_whatif, with_seed=False)
    add_json_flag(p_whatif)
    p_whatif.set_defaults(func=_cmd_whatif)

    p_policy = sub.add_parser(
        "policy",
        help="online-policy cost/performability frontier vs. static plans",
    )
    p_policy.add_argument(
        "-w", "--workload", required=True, choices=workload_names()
    )
    p_policy.add_argument(
        "--configurations",
        default=None,
        metavar="A,B",
        help="comma-separated Table 3 configurations (default: all nine)",
    )
    p_policy.add_argument(
        "--policy",
        action="append",
        default=None,
        dest="policies",
        metavar="SPEC",
        help="policy spec, repeatable: static:<technique>, "
        "greedy[:serve=..,save=..,floor=..,margin=..], "
        "lyapunov[:v=..,epoch=..,floor=..,horizon=..], hindsight "
        "(default: the standard roster, see docs/POLICY.md)",
    )
    p_policy.add_argument(
        "--nodes-per-bucket",
        type=int,
        default=2,
        help="quadrature nodes per duration bucket",
    )
    p_policy.add_argument("--servers", type=int, default=16)
    add_runner_flags(p_policy, with_seed=False)
    add_json_flag(p_policy)
    p_policy.set_defaults(func=_cmd_policy)

    p_fleet = sub.add_parser(
        "fleet",
        help="multi-site fleet frontier and N-1/N-2 contingency analysis",
    )
    from repro.fleet.spec import DEFAULT_FLEET, fleet_names

    p_fleet.add_argument(
        "--fleet",
        default=DEFAULT_FLEET,
        choices=fleet_names(),
        help="named fleet scenario",
    )
    p_fleet.add_argument(
        "-c",
        "--configurations",
        default=None,
        metavar="A,B",
        help="comma-separated Table 3 configurations applied uniformly to "
        "every site (default: all nine)",
    )
    p_fleet.add_argument(
        "-t",
        "--technique",
        default="full-service",
        help="local outage technique at every site",
    )
    p_fleet.add_argument(
        "--years",
        type=int,
        default=40,
        help="Monte-Carlo fleet years per frontier cell",
    )
    p_fleet.add_argument(
        "--contingency",
        action="store_true",
        help="print the deterministic N-1/N-2 contingency table instead of "
        "the Monte-Carlo frontier",
    )
    p_fleet.add_argument(
        "--depth",
        type=int,
        default=2,
        help="contingency order (1 = N-1 only, 2 = N-1 and N-2)",
    )
    add_runner_flags(p_fleet)
    add_json_flag(p_fleet)
    p_fleet.set_defaults(func=_cmd_fleet)

    p_sweep = sub.add_parser(
        "sweep", help="technique or configuration grid over outage durations"
    )
    p_sweep.add_argument(
        "-w", "--workload", required=True, choices=workload_names()
    )
    p_sweep.add_argument(
        "--kind",
        choices=("techniques", "configurations"),
        default="techniques",
        help="what the grid rows are",
    )
    p_sweep.add_argument(
        "--rows",
        default=None,
        metavar="A,B,...",
        help="comma list of technique/configuration names (default: paper set)",
    )
    p_sweep.add_argument(
        "-m",
        "--outage-minutes",
        type=float,
        nargs="+",
        default=[5.0, 30.0, 60.0],
        help="outage durations (minutes) forming the grid columns",
    )
    p_sweep.add_argument("--servers", type=int, default=16)
    add_runner_flags(p_sweep, with_seed=False)
    add_json_flag(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_check = sub.add_parser(
        "selfcheck",
        help="cross-check closed forms against numeric oracles + fuzz invariants",
    )
    p_check.add_argument(
        "--fast",
        action="store_true",
        help="coarser oracle grids and fewer cells (the CI smoke setting)",
    )
    p_check.add_argument(
        "-w",
        "--workload",
        default="specjbb",
        choices=workload_names(),
        help="workload driving the strict-simulation cells",
    )
    p_check.add_argument(
        "--fuzz",
        type=int,
        default=None,
        metavar="N",
        help="fuzz case count (default: 10 fast / 40 full; 0 disables)",
    )
    add_runner_flags(p_check)
    p_check.set_defaults(func=_cmd_selfcheck)

    sub.add_parser("tco", help="Figure 10 crossover").set_defaults(func=_cmd_tco)
    sub.add_parser("tiers", help="Tier classification comparator").set_defaults(
        func=_cmd_tiers
    )

    p_repro = sub.add_parser(
        "reproduce", help="regenerate the paper's tables and figures"
    )
    p_repro.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="one experiment id (figure5, table3, ...); default: all",
    )
    p_repro.add_argument(
        "--full", action="store_true", help="full duration grids (slower)"
    )
    p_repro.add_argument(
        "--csv-dir", default=None, help="also write each experiment as CSV here"
    )
    add_runner_flags(p_repro)
    p_repro.set_defaults(func=_cmd_reproduce)

    p_stats = sub.add_parser(
        "stats",
        help="render a --metrics JSONL event log as summary tables, or a "
        "live server's /stats+/slo when given an http(s) URL",
    )
    p_stats.add_argument(
        "events",
        help="events JSONL file written by --metrics, or a server base URL",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over a running server"
    )
    p_top.add_argument(
        "--url", default="http://127.0.0.1:8321", help="server base URL"
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period (seconds)"
    )
    p_top.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    p_top.set_defaults(func=_cmd_top)

    p_bench = sub.add_parser(
        "bench",
        help="record BENCH_*.json artifacts into the history ledger and "
        "gate regressions",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bench_record = bench_sub.add_parser(
        "record", help="append current BENCH_*.json metrics to the ledger"
    )
    p_bench_record.add_argument(
        "--root", default=".", help="directory holding the BENCH_*.json files"
    )
    p_bench_record.add_argument(
        "--history", default=None, metavar="FILE",
        help="ledger path (default: BENCH_history.jsonl under --root)",
    )
    p_bench_record.set_defaults(func=_cmd_bench)
    p_bench_check = bench_sub.add_parser(
        "check",
        help="fail when the newest entry regresses past tolerance vs the "
        "median of prior runs",
    )
    p_bench_check.add_argument(
        "--history", default=None, metavar="FILE",
        help="ledger path (default: ./BENCH_history.jsonl)",
    )
    p_bench_check.add_argument(
        "--tolerance", type=float, default=0.15,
        help="fractional bad-direction slack before failing (default 0.15)",
    )
    p_bench_check.set_defaults(func=_cmd_bench)
    p_bench_show = bench_sub.add_parser(
        "show", help="print the ledger entries as JSONL"
    )
    p_bench_show.add_argument(
        "--history", default=None, metavar="FILE",
        help="ledger path (default: ./BENCH_history.jsonl)",
    )
    p_bench_show.set_defaults(func=_cmd_bench)

    p_chaos = sub.add_parser(
        "chaos",
        help="break the runner on purpose and certify bit-identical recovery",
    )
    p_chaos.add_argument(
        "-w", "--workload", default="websearch", choices=workload_names()
    )
    p_chaos.add_argument("-c", "--configuration", default="MaxPerf")
    p_chaos.add_argument("-t", "--technique", default="full-service")
    p_chaos.add_argument("--servers", type=int, default=16)
    p_chaos.add_argument(
        "--years", type=int, default=8, help="year-cells in the chaos sweep"
    )
    p_chaos.add_argument(
        "--jobs", type=int, default=2, help="worker processes for the chaos run"
    )
    p_chaos.add_argument(
        "--kills", type=int, default=1, help="worker hard-kills to inject"
    )
    p_chaos.add_argument(
        "--flaky", type=int, default=1, help="transient job failures to inject"
    )
    p_chaos.add_argument(
        "--corrupt", type=int, default=1, help="cache entries to corrupt mid-run"
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="root seed shared by all passes"
    )
    p_chaos.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="scratch dir for cache/checkpoint/markers (default: a tempdir)",
    )
    add_fault_flags(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="run the batched, backpressured HTTP evaluation service",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321)
    p_serve.add_argument(
        "--jobs", type=int, default=1, help="runner worker processes per batch"
    )
    p_serve.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="shared result cache; point the CLI at the same DIR for "
        "byte-identical responses served from the same entries",
    )
    p_serve.add_argument(
        "--queue-bound",
        type=int,
        default=64,
        help="admitted requests waiting before arrivals are shed with 429",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="most requests dispatched in one runner submission",
    )
    p_serve.add_argument(
        "--batch-wait-s",
        type=float,
        default=0.005,
        help="micro-batch accumulation window after the first arrival",
    )
    p_serve.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="default per-job runner timeout for undeadlined batches",
    )
    p_serve.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="prune the cache to this size between batches",
    )
    p_serve.add_argument(
        "--cache-max-age-s",
        type=float,
        default=None,
        help="prune cache entries older than this between batches",
    )
    p_serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable request tracing, rolling windows and SLO tracking "
        "(every hook reverts to its single is-None check)",
    )
    p_serve.add_argument(
        "--telemetry-window-s",
        type=float,
        default=60.0,
        help="rolling-window width for /healthz and Prometheus summaries",
    )
    p_serve.add_argument(
        "--trace-capacity",
        type=int,
        default=256,
        help="finished request traces kept for /trace/<id> lookup",
    )
    p_serve.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="override the SLO roster; repeatable. SPECs: "
        "'latency:<ms>:<objective>', 'shed_rate:<objective>', "
        "'error_rate:<objective>', optionally '@win1,win2' seconds",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="supervised worker processes behind the batcher "
        "(0 = in-process execution; >=1 adds crash supervision, "
        "fingerprint sharding and poison quarantine)",
    )
    p_serve.add_argument(
        "--poison-threshold",
        type=int,
        default=3,
        help="worker deaths on one fingerprint before it is quarantined",
    )
    p_serve.add_argument(
        "--no-brownout",
        action="store_true",
        help="disable the graded-degradation controller (never refuse "
        "for pressure, always linger the full batch window)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_drill = sub.add_parser(
        "drill",
        help="chaos-certify the serve tier: SIGKILL workers, corrupt the "
        "cache, flood into brownout, and assert every 2xx is "
        "bit-identical to a clean run",
    )
    p_drill.add_argument(
        "--workers", type=int, default=2, help="pool size under chaos"
    )
    p_drill.add_argument(
        "--kills", type=int, default=3, help="worker SIGKILLs to deliver"
    )
    p_drill.add_argument(
        "--corrupt",
        type=int,
        default=2,
        help="cache entries to overwrite with garbage mid-run",
    )
    p_drill.add_argument(
        "--duration",
        type=float,
        default=2.5,
        help="chaos-pass load duration (seconds)",
    )
    p_drill.add_argument(
        "--poison-threshold",
        type=int,
        default=2,
        help="deaths before quarantine in the poison pass",
    )
    p_drill.add_argument(
        "--bench-workers",
        default="0,2,4",
        help="comma-separated workers axis for the scaling bench "
        "(0 = in-process baseline)",
    )
    p_drill.add_argument("--seed", type=int, default=0)
    p_drill.add_argument(
        "--report",
        default="drill-report.json",
        metavar="FILE",
        help="write the full drill report here ('' disables)",
    )
    p_drill.add_argument(
        "--bench",
        default="BENCH_serve.json",
        metavar="FILE",
        help="write the ledger-compatible workers-axis artifact here "
        "('' disables)",
    )
    p_drill.set_defaults(func=_cmd_drill)

    p_load = sub.add_parser(
        "loadgen", help="closed-loop load generator against a running server"
    )
    p_load.add_argument(
        "--url", default="http://127.0.0.1:8321", help="server base URL"
    )
    p_load.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop worker threads"
    )
    p_load.add_argument(
        "--duration", type=float, default=5.0, help="issuing window (seconds)"
    )
    p_load.add_argument(
        "--mix",
        default="whatif=2,availability=1,echo=1",
        help="weighted request mix, e.g. 'whatif=2,rank=1' "
        "(shapes: echo, whatif, availability, rank, sweep)",
    )
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="per-request deadline forwarded in each body",
    )
    p_load.add_argument(
        "--timeout", type=float, default=60.0, help="client socket timeout"
    )
    p_load.add_argument(
        "--net-retries",
        type=int,
        default=2,
        help="per-request retry budget for connection refused/reset "
        "(a restarting worker pool seen from outside)",
    )
    p_load.add_argument(
        "--output",
        default="BENCH_serve.json",
        metavar="FILE",
        help="write the report here ('' disables)",
    )
    p_load.set_defaults(func=_cmd_loadgen)

    p_cache = sub.add_parser(
        "cache", help="show result-cache statistics and optionally prune it"
    )
    p_cache.add_argument("dir", help="cache directory (as given to --cache)")
    p_cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="prune oldest-first until the cache fits this many bytes",
    )
    p_cache.add_argument(
        "--max-age-s",
        type=float,
        default=None,
        help="prune entries whose mtime is older than this many seconds",
    )
    p_cache.set_defaults(func=_cmd_cache)

    # Observability flags go on *every* subcommand (so they read naturally
    # after it: ``repro availability ... --trace out.json``).
    for p in sub.choices.values():
        group = p.add_argument_group("observability")
        group.add_argument(
            "--trace",
            default=None,
            metavar="FILE",
            help="write a Chrome/Perfetto trace_event JSON of this run",
        )
        group.add_argument(
            "--metrics",
            default=None,
            metavar="FILE",
            help="write a JSONL event log (spans + metrics) for `repro stats`",
        )
    return parser


def _run_command(args: argparse.Namespace) -> int:
    """Dispatch to the subcommand, under an observability session when
    ``--trace``/``--metrics`` ask for one."""
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None:
        return args.func(args)

    from repro import obs
    from repro.obs.export import write_chrome_trace, write_events_jsonl

    session = obs.activate()
    try:
        with session.tracer.span("cli", "cli", command=args.command) as span:
            code = args.func(args)
            span.set("exit_code", code)
    finally:
        obs.deactivate()
    if trace_path is not None:
        count = write_chrome_trace(trace_path, session.tracer)
        print(f"[obs] wrote {count} trace events to {trace_path}", file=sys.stderr)
    if metrics_path is not None:
        count = write_events_jsonl(
            metrics_path, session.tracer, session.metrics
        )
        print(f"[obs] wrote {count} event lines to {metrics_path}", file=sys.stderr)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
