"""The empirical outage distributions of Figure 1.

Figure 1(a): power-outage *frequency* per year across US businesses —
17 % see none, 40 % see 1-2, 30 % see 3-6, 13 % see 7 or more; so 87 %
experience 6 or fewer.

Figure 1(b): outage *duration* — 31 % last under a minute, 27 % 1-5 min,
14 % 5-30 min, 17 % 30-120 min, 6 % 120-240 min, 5 % over 240 min; over
58 % are shorter than 5 minutes, and more than 30 % end before a diesel
generator would even have finished its start-up and load transfer.

Both histograms are bucketised, so the library represents them as
:class:`EmpiricalDistribution` objects over :class:`DurationBucket` ranges
and samples within a bucket log-uniformly (outage durations are heavy-tailed
within buckets; log-uniform is the max-entropy-ish choice that keeps the
bucket probabilities exact while avoiding a pile-up at bucket edges).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.units import hours, minutes, seconds


@dataclass(frozen=True)
class DurationBucket:
    """One histogram bucket: a half-open range with a probability mass.

    Attributes:
        low_seconds: Inclusive lower edge.
        high_seconds: Exclusive upper edge (``inf`` allowed for the tail).
        probability: Mass of the bucket (buckets of a distribution sum to 1).
        label: Human-readable label matching the paper's x-axis.
    """

    low_seconds: float
    high_seconds: float
    probability: float
    label: str

    def __post_init__(self) -> None:
        if self.low_seconds < 0 or self.high_seconds <= self.low_seconds:
            raise ConfigurationError(f"bad bucket range: {self}")
        if not 0 <= self.probability <= 1:
            raise ConfigurationError(f"bad bucket probability: {self}")

    def contains(self, duration_seconds: float) -> bool:
        return self.low_seconds <= duration_seconds < self.high_seconds

    def midpoint_seconds(self) -> float:
        """Geometric midpoint (log-scale) used for expected-value summaries;
        unbounded tails use 1.5x the lower edge."""
        if math.isinf(self.high_seconds):
            return self.low_seconds * 1.5
        low = max(self.low_seconds, 1.0)
        return math.sqrt(low * self.high_seconds)


class EmpiricalDistribution:
    """A bucketised distribution with exact bucket masses.

    Sampling draws a bucket by mass, then a duration log-uniformly within
    the bucket (bounded tails); the unbounded tail bucket samples from a
    truncated exponential anchored at its lower edge.
    """

    def __init__(self, buckets: Sequence[DurationBucket]):
        if not buckets:
            raise ConfigurationError("distribution needs at least one bucket")
        total = sum(b.probability for b in buckets)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"bucket masses sum to {total}, expected 1.0")
        edges = [(b.low_seconds, b.high_seconds) for b in buckets]
        for (_, hi), (lo, _) in zip(edges, edges[1:]):
            if lo < hi:
                raise ConfigurationError("buckets must be ordered and disjoint")
        self._buckets = list(buckets)
        self._masses = np.array([b.probability for b in buckets])

    @property
    def buckets(self) -> List[DurationBucket]:
        return list(self._buckets)

    def probability_at_most(self, duration_seconds: float) -> float:
        """CDF evaluated at a duration, linear (in log space) within the
        straddled bucket."""
        cdf = 0.0
        for bucket in self._buckets:
            if duration_seconds >= bucket.high_seconds:
                cdf += bucket.probability
            elif bucket.contains(duration_seconds):
                low = max(bucket.low_seconds, 1.0)
                high = bucket.high_seconds
                if math.isinf(high):
                    # Exponential tail anchored at the bucket edge.
                    scale = low  # mean residual = lower edge
                    frac = 1.0 - math.exp(-(duration_seconds - low) / scale)
                else:
                    frac = math.log(max(duration_seconds, low) / low) / math.log(
                        high / low
                    )
                cdf += bucket.probability * frac
                break
        return min(1.0, cdf)

    def bucket_for(self, duration_seconds: float) -> DurationBucket:
        for bucket in self._buckets:
            if bucket.contains(duration_seconds):
                return bucket
        return self._buckets[-1]

    def mean_seconds(self) -> float:
        """Expected duration using geometric bucket midpoints."""
        return sum(b.probability * b.midpoint_seconds() for b in self._buckets)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` durations (seconds)."""
        if size < 0:
            raise ValueError("size must be >= 0")
        indices = rng.choice(len(self._buckets), size=size, p=self._masses)
        out = np.empty(size)
        for i, idx in enumerate(indices):
            bucket = self._buckets[int(idx)]
            low = max(bucket.low_seconds, 1.0)
            if math.isinf(bucket.high_seconds):
                out[i] = low + rng.exponential(scale=low)
            else:
                out[i] = math.exp(
                    rng.uniform(math.log(low), math.log(bucket.high_seconds))
                )
        return out


#: Figure 1(b): outage duration distribution.
OUTAGE_DURATION_DISTRIBUTION = EmpiricalDistribution(
    [
        DurationBucket(seconds(0), minutes(1), 0.31, "< 1 minute"),
        DurationBucket(minutes(1), minutes(5), 0.27, "1 to 5"),
        DurationBucket(minutes(5), minutes(30), 0.14, "5 to 30"),
        DurationBucket(minutes(30), minutes(120), 0.17, "30 to 120"),
        DurationBucket(minutes(120), minutes(240), 0.06, "120 to 240"),
        DurationBucket(minutes(240), float("inf"), 0.05, "> 240 minutes"),
    ]
)

#: Figure 1(a): outages-per-year distribution, as (count-range, mass) buckets.
#: Expressed with the same bucket machinery over the integer count axis.
OUTAGE_FREQUENCY_DISTRIBUTION = EmpiricalDistribution(
    [
        DurationBucket(0.0, 1.0, 0.17, "None"),
        DurationBucket(1.0, 3.0, 0.40, "1 to 2"),
        DurationBucket(3.0, 7.0, 0.30, "3 to 6"),
        DurationBucket(7.0, 15.0, 0.13, "7+"),
    ]
)


def sample_outage_count(rng: np.random.Generator) -> int:
    """Draw a yearly outage count from Figure 1(a).

    Counts are integers: a bucket is drawn by mass, then a count uniformly
    from the integers the bucket covers.
    """
    buckets = OUTAGE_FREQUENCY_DISTRIBUTION.buckets
    masses = [b.probability for b in buckets]
    idx = int(rng.choice(len(buckets), p=masses))
    bucket = buckets[idx]
    low = int(bucket.low_seconds)
    high = int(bucket.high_seconds)
    return int(rng.integers(low, high))


def fraction_shorter_than(duration_seconds: float) -> float:
    """Convenience CDF over Figure 1(b) (e.g. ``minutes(5)`` -> ~0.58)."""
    return OUTAGE_DURATION_DISTRIBUTION.probability_at_most(duration_seconds)


#: Durations the paper's evaluation sweeps (Figures 5 and 6).
PAPER_OUTAGE_DURATIONS_SECONDS = (
    seconds(30),
    minutes(5),
    minutes(30),
    hours(1),
    hours(2),
)
