"""Outage events and yearly schedules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_YEAR


@dataclass(frozen=True)
class OutageEvent:
    """One utility power outage.

    Attributes:
        start_seconds: Start time within the simulated horizon.
        duration_seconds: Outage length (brownouts/sags count as outages,
            per Section 3's footnote — the UPS is exercised identically).
    """

    start_seconds: float
    duration_seconds: float

    def __post_init__(self) -> None:
        if self.start_seconds < 0:
            raise ConfigurationError("outage start must be >= 0")
        if self.duration_seconds <= 0:
            raise ConfigurationError("outage duration must be positive")

    @property
    def end_seconds(self) -> float:
        return self.start_seconds + self.duration_seconds

    def overlaps(self, other: "OutageEvent") -> bool:
        return (
            self.start_seconds < other.end_seconds
            and other.start_seconds < self.end_seconds
        )


@dataclass(frozen=True)
class OutageSchedule:
    """An ordered, non-overlapping set of outages over a horizon.

    Attributes:
        events: Outages sorted by start time.
        horizon_seconds: Length of the covered period (default one year).
    """

    events: Sequence[OutageEvent]
    horizon_seconds: float = SECONDS_PER_YEAR

    def __post_init__(self) -> None:
        if self.horizon_seconds <= 0:
            raise ConfigurationError("horizon must be positive")
        ordered = list(self.events)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start_seconds < earlier.end_seconds:
                raise ConfigurationError("outages must be ordered and disjoint")
        if ordered and ordered[-1].end_seconds > self.horizon_seconds:
            raise ConfigurationError("outage extends past the horizon")

    def __iter__(self) -> Iterator[OutageEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def total_outage_seconds(self) -> float:
        return sum(event.duration_seconds for event in self.events)

    @property
    def utility_availability(self) -> float:
        """Fraction of the horizon with utility power present."""
        return 1.0 - self.total_outage_seconds / self.horizon_seconds

    def durations(self) -> List[float]:
        return [event.duration_seconds for event in self.events]

    def longest_seconds(self) -> float:
        return max((e.duration_seconds for e in self.events), default=0.0)
