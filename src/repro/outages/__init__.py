"""Utility-outage statistics and Monte-Carlo outage generation.

Implements the empirical distributions of Figure 1 (US business outage
frequency and duration surveys [50, 60]) and a seeded generator producing
yearly outage schedules for the availability analyses.
"""

from repro.outages.distributions import (
    OUTAGE_DURATION_DISTRIBUTION,
    OUTAGE_FREQUENCY_DISTRIBUTION,
    DurationBucket,
    EmpiricalDistribution,
)
from repro.outages.events import OutageEvent, OutageSchedule
from repro.outages.generator import OutageGenerator

__all__ = [
    "DurationBucket",
    "EmpiricalDistribution",
    "OUTAGE_DURATION_DISTRIBUTION",
    "OUTAGE_FREQUENCY_DISTRIBUTION",
    "OutageEvent",
    "OutageGenerator",
    "OutageSchedule",
]
