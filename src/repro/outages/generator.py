"""Monte-Carlo generation of yearly outage schedules.

Draws a yearly outage count from Figure 1(a) and a duration for each outage
from Figure 1(b), placing outages uniformly (and disjointly) through the
year.  Seeded, so every availability analysis in the benchmarks is
reproducible.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.outages.distributions import (
    OUTAGE_DURATION_DISTRIBUTION,
    EmpiricalDistribution,
    sample_outage_count,
)
from repro.outages.events import OutageEvent, OutageSchedule
from repro.units import SECONDS_PER_YEAR


class OutageGenerator:
    """Seeded generator of :class:`OutageSchedule` samples.

    Args:
        duration_distribution: Distribution of per-outage durations
            (defaults to Figure 1(b)).
        horizon_seconds: Schedule length (defaults to one year).
        seed: RNG seed — an int, or a :class:`numpy.random.SeedSequence`
            (what the runner subsystem spawns per job) — anything
            :func:`numpy.random.default_rng` accepts.
    """

    def __init__(
        self,
        duration_distribution: EmpiricalDistribution = OUTAGE_DURATION_DISTRIBUTION,
        horizon_seconds: float = SECONDS_PER_YEAR,
        seed: "int | np.random.SeedSequence" = 0,
    ):
        self._durations = duration_distribution
        self._horizon = float(horizon_seconds)
        self._rng = np.random.default_rng(seed)

    def sample_year(self) -> OutageSchedule:
        """One yearly schedule: count from Fig 1(a), durations from Fig 1(b)."""
        count = sample_outage_count(self._rng)
        return self.sample_schedule(count)

    def sample_schedule(self, count: int) -> OutageSchedule:
        """A schedule with exactly ``count`` outages."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return OutageSchedule(events=(), horizon_seconds=self._horizon)
        durations = self._durations.sample(self._rng, size=count)
        events = self._place_disjointly(list(map(float, durations)))
        return OutageSchedule(events=tuple(events), horizon_seconds=self._horizon)

    def sample_years(self, num_years: int) -> List[OutageSchedule]:
        """``num_years`` independent yearly schedules."""
        if num_years < 0:
            raise ValueError("num_years must be >= 0")
        return [self.sample_year() for _ in range(num_years)]

    # -- internals --------------------------------------------------------------

    def _place_disjointly(self, durations: List[float]) -> List[OutageEvent]:
        """Place outages at uniform starts, retrying collisions.

        Outages are rare and short relative to a year, so rejection
        sampling converges immediately in practice; a deterministic
        fallback packs sequentially if the year is pathologically full.
        """
        total = sum(durations)
        if total >= self._horizon:
            raise ValueError("outages exceed the schedule horizon")
        for _ in range(1000):
            starts = np.sort(self._rng.uniform(0, self._horizon, size=len(durations)))
            events = [
                OutageEvent(start_seconds=float(s), duration_seconds=d)
                for s, d in zip(starts, durations)
            ]
            if self._disjoint_within_horizon(events):
                return events
        # Fallback: evenly spaced sequential packing (deterministic).
        gap = (self._horizon - total) / (len(durations) + 1)
        events = []
        cursor = gap
        for duration in durations:
            events.append(OutageEvent(start_seconds=cursor, duration_seconds=duration))
            cursor += duration + gap
        return events

    def _disjoint_within_horizon(self, events: List[OutageEvent]) -> bool:
        for earlier, later in zip(events, events[1:]):
            if later.start_seconds < earlier.end_seconds:
                return False
        return bool(events) and events[-1].end_seconds <= self._horizon
