"""The datacenter assembly handed to the outage simulator.

Binds together a homogeneous cluster, the workload it runs, and the physical
backup infrastructure (aggregate UPS spec and DG plant).  Named paper
configurations (Table 3) are materialised into this shape by
:mod:`repro.core.configurations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.power.generator import DieselGeneratorSpec
from repro.power.psu import PowerSupplySpec
from repro.power.ups import UPSSpec
from repro.servers.cluster import Cluster
from repro.workloads.base import WorkloadSpec


@dataclass(frozen=True)
class Datacenter:
    """One power domain: servers + workload + backup infrastructure.

    Attributes:
        cluster: The server fleet.
        workload: The application on every server.
        ups: Facility-aggregate UPS rating (rack UPSes sum; see
            :meth:`~repro.power.hierarchy.PowerHierarchy.aggregate_ups`).
        generator: The DG plant rating.
        psu: Server power-supply hold-up characteristics.
    """

    cluster: Cluster
    workload: WorkloadSpec
    ups: UPSSpec
    generator: DieselGeneratorSpec
    psu: PowerSupplySpec = field(default_factory=PowerSupplySpec)

    def __post_init__(self) -> None:
        if self.cluster.utilization != self.workload.utilization:
            # Keep the two sources of truth aligned; build via `assemble`.
            raise ConfigurationError(
                "cluster.utilization must equal workload.utilization "
                f"({self.cluster.utilization} != {self.workload.utilization})"
            )

    @classmethod
    def assemble(
        cls,
        cluster: Cluster,
        workload: WorkloadSpec,
        ups: UPSSpec,
        generator: DieselGeneratorSpec,
        psu: "PowerSupplySpec | None" = None,
    ) -> "Datacenter":
        """Build a datacenter, aligning cluster utilisation to the workload."""
        aligned = replace(cluster, utilization=workload.utilization)
        return cls(
            cluster=aligned,
            workload=workload,
            ups=ups,
            generator=generator,
            psu=psu if psu is not None else PowerSupplySpec(),
        )

    @classmethod
    def from_hierarchy(
        cls,
        hierarchy,
        cluster: Cluster,
        workload: WorkloadSpec,
    ) -> "Datacenter":
        """Build a datacenter from a :class:`~repro.power.hierarchy.PowerHierarchy`.

        The hierarchy's rack-level UPSes aggregate into the facility spec
        (homogeneous sizing makes that exact), and its DG plant and PSU
        characteristics carry over.  The hierarchy's facility peak must
        match the cluster's nameplate peak — they describe the same iron.
        """
        if abs(hierarchy.facility_peak_watts - cluster.peak_power_watts) > 1e-6 * max(
            1.0, cluster.peak_power_watts
        ):
            raise ConfigurationError(
                f"hierarchy peak {hierarchy.facility_peak_watts:.0f} W does not "
                f"match cluster peak {cluster.peak_power_watts:.0f} W"
            )
        return cls.assemble(
            cluster=cluster,
            workload=workload,
            ups=hierarchy.aggregate_ups,
            generator=hierarchy.generator,
            psu=hierarchy.psu,
        )

    @property
    def peak_power_watts(self) -> float:
        """Nameplate peak the backup is provisioned against."""
        return self.cluster.peak_power_watts

    @property
    def normal_power_watts(self) -> float:
        """Draw at the workload's normal operating point."""
        return self.cluster.power_watts(utilization=self.workload.utilization)

    @property
    def backup_power_budget_watts(self) -> float:
        """Largest load any backup source could carry — the plan budget.

        During the DG-transfer gap only the UPS can carry load, so the
        budget for plan compilation is the larger of the two ratings (a plan
        needing DG-only power simply crashes during the gap, which the
        simulator surfaces).
        """
        return max(self.ups.power_capacity_watts, self.generator.power_capacity_watts)

    @property
    def has_any_backup(self) -> bool:
        return self.ups.is_provisioned or self.generator.is_provisioned

    @property
    def switchover_is_seamless(self) -> bool:
        """Whether the PSU hold-up bridges the UPS switch-in gap.

        Section 3: offline UPSes take ~10 ms to detect a failure, and
        "today's power supplies have inherent capacitance to power the
        server for over 30ms to ride-through this transfer delay".  A PSU
        with less hold-up than the switch delay drops the servers at the
        very start of every outage — the UPS then only powers the reboot.
        """
        if not self.ups.is_provisioned:
            return True  # nothing to switch to; the question is moot
        return self.psu.covers(self.ups.switch_delay_seconds)
