"""Outcome metrics of one simulated outage.

These mirror Section 6's evaluation metrics exactly:

* **down time** — "the total time for which an application is unavailable
  (not performing computation or responding to users) during a power outage
  and immediately after power is restored", including performance-induced
  down time (warm-up shortfall) after a state loss;
* **performance during the outage** — time-weighted normalised throughput
  over the outage window, normalised to MaxPerf (which is 1.0 by
  construction);
* the backup *demand* the run imposed (peak power, battery charge consumed,
  DG energy) that the cost model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.sim.trace import PowerTrace


class SourceKind(str, Enum):
    """Who carried the load during a trace segment."""

    UTILITY = "utility"
    UPS = "ups"
    DG = "dg"
    NONE = "none"


@dataclass(frozen=True)
class OutageOutcome:
    """Everything one simulated outage produced.

    Attributes:
        technique_name: The executed plan's technique.
        outage_seconds: Simulated outage duration.
        crashed: Volatile state was lost (backup could not carry the plan).
        crash_time_seconds: When the crash happened (None if none).
        state_preserved: State survived to restoration (saved or sustained).
        downtime_during_outage_seconds: Zero-service time within the outage.
        downtime_after_restore_seconds: Zero-service plus performance-induced
            down time after power returned (resume, reboot, reload, warm-up
            shortfall, recompute).
        mean_performance: Time-weighted normalised throughput over the
            outage window.
        ups_charge_consumed: Fraction of the UPS battery's state of charge
            consumed (0 when no UPS / unused; 1 means fully drained).
        ups_state_of_charge_end: Charge remaining when the run ended (0 when
            no UPS); the seed for back-to-back outage studies.
        ups_energy_joules: Energy sourced from the UPS battery.
        dg_energy_joules: Energy sourced from the diesel generator.
        peak_backup_power_watts: Largest draw imposed on any backup source.
        restored_by_dg: Full service returned on DG power before utility.
        trace: The full piecewise power/performance trace.
    """

    technique_name: str
    outage_seconds: float
    crashed: bool
    crash_time_seconds: Optional[float]
    state_preserved: bool
    downtime_during_outage_seconds: float
    downtime_after_restore_seconds: float
    mean_performance: float
    ups_charge_consumed: float
    ups_state_of_charge_end: float
    ups_energy_joules: float
    dg_energy_joules: float
    peak_backup_power_watts: float
    restored_by_dg: bool
    trace: PowerTrace = field(repr=False)

    @property
    def downtime_seconds(self) -> float:
        """The paper's reported down-time metric (during + after)."""
        return (
            self.downtime_during_outage_seconds
            + self.downtime_after_restore_seconds
        )

    @property
    def available_throughout(self) -> bool:
        """Zero down time — the MaxPerf bar."""
        return self.downtime_seconds <= 1e-9

    def summary(self) -> str:
        """One-line human-readable summary for reports."""
        return (
            f"{self.technique_name}: outage={self.outage_seconds / 60:.1f}min "
            f"perf={self.mean_performance:.2f} "
            f"down={self.downtime_seconds / 60:.2f}min "
            f"{'CRASH' if self.crashed else 'ok'}"
        )
