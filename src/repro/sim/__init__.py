"""Simulation: the engine, the datacenter assembly, and the outage simulator.

:mod:`repro.sim.outage_sim` is the load-bearing piece — it executes a
technique's :class:`~repro.techniques.base.OutagePlan` against a concrete
backup infrastructure (Peukert battery, DG start-up, PSU hold-up) and
produces the :class:`~repro.sim.metrics.OutageOutcome` the evaluation
figures are built from.
"""

from repro.sim.datacenter import Datacenter
from repro.sim.engine import Event, SimulationEngine
from repro.sim.metrics import OutageOutcome, SourceKind
from repro.sim.outage_sim import OutageSimulator, simulate_outage
from repro.sim.trace import PowerTrace, TraceSegment
from repro.sim.yearly import YearlyResult, YearlyRunner

__all__ = [
    "Datacenter",
    "Event",
    "OutageOutcome",
    "OutageSimulator",
    "PowerTrace",
    "SimulationEngine",
    "SourceKind",
    "TraceSegment",
    "YearlyResult",
    "YearlyRunner",
    "simulate_outage",
]
