"""Execute an outage plan against a concrete backup infrastructure.

This is the library's experiment harness: given a :class:`Datacenter`, a
technique's :class:`~repro.techniques.base.OutagePlan` and an outage
duration, it plays out the outage second by second (in closed form — plans
are piecewise-constant, so every segment integrates exactly) and produces an
:class:`~repro.sim.metrics.OutageOutcome`.

Semantics implemented here, all from Sections 3-5 of the paper:

* **Source selection.**  Until the DG's start-up + load-step transfer
  completes (~2 min), only the UPS can carry load; a load above the UPS
  rating, or a drained battery, crashes the servers (the 30 ms PSU hold-up
  cannot bridge it).  Once the DG carries the full normal draw, the outage
  is over from the servers' perspective: service resumes (after the current
  phase's resume path) and runs on DG until utility returns.
* **Peukert battery accounting.**  Battery charge drains at
  ``dt / runtime(P)``, so light loads (S3 sleep at 5 W/server) stretch the
  same pack enormously — the mechanism behind Throttle+Sleep-L's two-hour
  outages on a 20 %-cost backup.
* **Adaptive phases.**  A hybrid's sustain phase holds exactly as long as
  the battery can afford while reserving charge for the remaining (save)
  phases over the bridging horizon; the reservation is solved in closed
  form against the same Peukert accounting.
* **Crash and recovery.**  A crash loses volatile state; recovery starts
  when power returns (utility, or a full-capacity DG mid-outage) and walks
  the workload's reboot/reload/warm-up/recompute pipeline.
* **Committed phases.**  A hibernation image write or S3 suspend completes
  even if power returns mid-way; the remainder plus the phase's resume path
  is booked as post-restore down time.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.checks.guard import InvariantGuard
from repro.errors import SimulationError
from repro.faults import FaultDraw
from repro.obs import MetricsRegistry, Tracer, current_metrics, current_tracer
from repro.power.generator import DieselGenerator
from repro.power.ups import UPSUnit
from repro.sim.datacenter import Datacenter
from repro.sim.metrics import OutageOutcome, SourceKind
from repro.sim.trace import PowerTrace
from repro.techniques.base import OutagePlan, PlanPhase

#: Relative slack on the adaptive-phase reservation so float accumulation
#: never crashes a plan the solver deemed exactly feasible.
_RESERVE_SLACK = 1e-6

_EPS = 1e-9


def solve_hold_time(
    soc: float,
    rate_hold: float,
    rate_save: float,
    committed_soc: float,
    committed_time: float,
    remaining_window: float,
) -> float:
    """Closed-form adaptive hold: how long the sustain stage can run.

    Given drain rates in state-of-charge fraction per second, solves the
    charge budget ``soc = x*rate_hold + committed_soc + (max_hold - x) *
    rate_save`` for the hold time ``x``, clamped to ``[0, max_hold]`` where
    ``max_hold = remaining_window - committed_time``.  This is the algebra
    :class:`_OutageRun` applies at every adaptive phase, factored out so
    ``repro selfcheck`` can cross-check it against
    :func:`repro.sim.validation.numeric_adaptive_hold`.
    """
    if remaining_window <= 0:
        return 0.0
    if math.isinf(rate_hold):
        return 0.0  # zero-runtime pack: holding is instantly infeasible
    if rate_hold * remaining_window <= soc:
        # The battery sustains the whole bridging window without ever
        # transitioning to the save stage: ride it out.
        return remaining_window
    max_hold = max(0.0, remaining_window - committed_time)
    if rate_hold <= rate_save + _EPS:
        # Sustaining is no more expensive than saving: never transition.
        return max_hold
    budget = soc - committed_soc - max_hold * rate_save
    hold = budget / (rate_hold - rate_save)
    return min(max(0.0, hold), max_hold)


class OutageSimulator:
    """Simulates outages for one datacenter.  Stateless across runs.

    Args:
        datacenter: The facility under study.
        guard: Optional :class:`~repro.checks.InvariantGuard` checking the
            run's physical invariants (SoC range, monotone discharge,
            energy conservation, non-negative downtime) as it executes;
            None (the default) skips every check at zero cost.
        tracer: Span sink; defaults to the ambient
            :func:`repro.obs.current_tracer` (None = tracing off).  A
            traced run wraps itself in an ``outage`` span with one child
            ``phase`` span per technique phase executed.
        metrics: Metrics sink; defaults to the ambient registry.  Records
            battery SoC samples, discharge watt-hours, per-phase simulated
            durations and downtime attribution.
    """

    def __init__(
        self,
        datacenter: Datacenter,
        guard: Optional[InvariantGuard] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.datacenter = datacenter
        self.guard = guard
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()

    # -- public API ---------------------------------------------------------

    def run(
        self,
        plan: Optional[OutagePlan],
        outage_seconds: float,
        lost_work_seconds: Optional[float] = None,
        initial_state_of_charge: float = 1.0,
        dg_starts: bool = True,
        faults: Optional[FaultDraw] = None,
        policy: Optional[object] = None,
        catalog: Optional[object] = None,
    ) -> OutageOutcome:
        """Simulate one outage of ``outage_seconds`` under ``plan``.

        Args:
            plan: The technique's compiled plan.  ``None`` when a
                ``policy`` drives the outage instead.
            outage_seconds: Utility outage duration.
            lost_work_seconds: Work to recompute if a crash occurs (defaults
                to the workload's expected loss — half its recompute
                horizon).  Sweep it for the Figure 9 min/max bars.
            initial_state_of_charge: Battery charge at outage start (< 1.0
                when a recent outage drained the string; back-to-back
                outage and yearly availability studies set this).
            dg_starts: Whether the DG engine starts this time.  Single-
                outage studies leave it True; Monte-Carlo availability runs
                sample it against the spec's ``start_reliability``.
            faults: Optional :class:`~repro.faults.FaultDraw` of injected
                backup failures this outage (DG fail-to-start or mid-run
                trip, battery capacity fade, ATS transfer failure/delay,
                PSU hold-up loss).  ``None`` (the default) is the
                fault-free path and costs nothing.
            policy: Optional :class:`~repro.policy.OutagePolicy` consulted
                stepwise *during* the outage instead of a precompiled
                plan.  Mutually exclusive with ``plan``.  ``None`` (the
                default) is the plan path, untouched.
            catalog: Optional precompiled
                :class:`~repro.policy.ModeCatalog` for the policy engine
                (compiled from the datacenter when omitted).  Ignored on
                the plan path.
        """
        if outage_seconds <= 0:
            raise SimulationError("outage duration must be positive")
        if policy is not None:
            if plan is not None:
                raise SimulationError(
                    "pass exactly one of plan and policy, not both"
                )
            return self._run_policy(
                policy,
                outage_seconds,
                lost_work_seconds,
                initial_state_of_charge=initial_state_of_charge,
                dg_starts=dg_starts,
                faults=faults,
                catalog=catalog,
            )
        if plan is None:
            raise SimulationError("pass exactly one of plan and policy")
        if self.tracer is None:
            run = _OutageRun(
                self.datacenter,
                plan,
                outage_seconds,
                lost_work_seconds,
                initial_state_of_charge=initial_state_of_charge,
                dg_starts=dg_starts,
                guard=self.guard,
                metrics=self.metrics,
                faults=faults,
            )
            return run.execute()
        with self.tracer.span(
            "outage",
            "sim",
            technique=plan.technique_name,
            outage_seconds=float(outage_seconds),
            dg_starts=dg_starts,
        ) as span:
            run = _OutageRun(
                self.datacenter,
                plan,
                outage_seconds,
                lost_work_seconds,
                initial_state_of_charge=initial_state_of_charge,
                dg_starts=dg_starts,
                guard=self.guard,
                tracer=self.tracer,
                metrics=self.metrics,
                faults=faults,
            )
            outcome = run.execute()
            span.set("crashed", outcome.crashed)
            span.set("downtime_seconds", outcome.downtime_seconds)
            span.set("soc_end", outcome.ups_state_of_charge_end)
            return outcome

    def _run_policy(
        self,
        policy,
        outage_seconds: float,
        lost_work_seconds: Optional[float],
        initial_state_of_charge: float,
        dg_starts: bool,
        faults: Optional[FaultDraw],
        catalog,
    ) -> OutageOutcome:
        # Imported lazily: the plan path must not pay for (or depend on)
        # the policy subsystem.
        from repro.policy.engine import _PolicyRun

        def execute(tracer: Optional[Tracer]) -> OutageOutcome:
            run = _PolicyRun(
                self.datacenter,
                policy,
                outage_seconds,
                lost_work_seconds,
                initial_state_of_charge=initial_state_of_charge,
                dg_starts=dg_starts,
                guard=self.guard,
                tracer=tracer,
                metrics=self.metrics,
                faults=faults,
                catalog=catalog,
            )
            return run.execute()

        if self.tracer is None:
            return execute(None)
        with self.tracer.span(
            "outage",
            "sim",
            technique=f"policy:{policy.name}",
            outage_seconds=float(outage_seconds),
            dg_starts=dg_starts,
        ) as span:
            outcome = execute(self.tracer)
            span.set("crashed", outcome.crashed)
            span.set("downtime_seconds", outcome.downtime_seconds)
            span.set("soc_end", outcome.ups_state_of_charge_end)
            return outcome


def simulate_outage(
    datacenter: Datacenter,
    plan: Optional[OutagePlan],
    outage_seconds: float,
    lost_work_seconds: Optional[float] = None,
    initial_state_of_charge: float = 1.0,
    dg_starts: bool = True,
    guard: Optional[InvariantGuard] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    faults: Optional[FaultDraw] = None,
    policy=None,
    catalog=None,
) -> OutageOutcome:
    """Functional convenience wrapper over :class:`OutageSimulator`."""
    return OutageSimulator(datacenter, guard=guard, tracer=tracer, metrics=metrics).run(
        plan,
        outage_seconds,
        lost_work_seconds,
        initial_state_of_charge=initial_state_of_charge,
        dg_starts=dg_starts,
        faults=faults,
        policy=policy,
        catalog=catalog,
    )


class _PooledBackupStore:
    """Rack-level (pooled) battery adapter over :class:`UPSUnit`."""

    def __init__(
        self,
        spec,
        num_servers: int,
        state_of_charge: float,
        guard: Optional[InvariantGuard] = None,
    ):
        self._unit = UPSUnit(spec, state_of_charge=state_of_charge, guard=guard)
        self.spec = spec

    def can_carry(self, power_watts: float, active: Optional[int]) -> bool:
        return self._unit.can_carry(power_watts)

    def remaining_runtime_at(self, power_watts: float, active: Optional[int]) -> float:
        return self._unit.remaining_runtime_at(power_watts)

    def carry(self, power_watts: float, duration: float, active: Optional[int]) -> float:
        return self._unit.carry(power_watts, duration)

    def drain_rate(self, power_watts: float, active: Optional[int]) -> float:
        if power_watts <= 0:
            return 0.0
        runtime = self.spec.battery_spec.runtime_at(
            min(power_watts, self.spec.power_capacity_watts)
        )
        if runtime <= 0:
            # Zero-runtime pack: any load drains it instantly.
            return math.inf
        return 0.0 if math.isinf(runtime) else 1.0 / runtime

    @property
    def is_exhausted(self) -> bool:
        return self._unit.is_exhausted

    @property
    def state_of_charge(self) -> float:
        return self._unit.battery.state_of_charge

    @property
    def energy_delivered_joules(self) -> float:
        return self._unit.battery.energy_delivered_joules


class _ServerBackupStore:
    """Server-level (private packs) adapter over
    :class:`~repro.power.placement.ServerLevelBatteryBank`."""

    def __init__(
        self,
        spec,
        num_servers: int,
        state_of_charge: float,
        guard: Optional[InvariantGuard] = None,
    ):
        # The bank's per-step invariants are checked by _OutageRun._advance
        # (the bank aggregates many private packs, so the guard observes it
        # at the store level rather than per pack).
        from repro.power.placement import ServerLevelBatteryBank

        self.spec = spec
        self.num_servers = num_servers
        unit_spec = spec.battery_spec.with_power(
            spec.power_capacity_watts / num_servers
        )
        self._bank = ServerLevelBatteryBank(
            unit_spec, num_servers, state_of_charge=state_of_charge
        )

    def _units(self, active: Optional[int]) -> int:
        return self.num_servers if active is None else active

    def can_carry(self, power_watts: float, active: Optional[int]) -> bool:
        per_unit = power_watts / self._units(active)
        return per_unit <= self._bank.unit_spec.rated_power_watts * (1 + 1e-9)

    def remaining_runtime_at(self, power_watts: float, active: Optional[int]) -> float:
        if not self.can_carry(power_watts, active):
            return 0.0
        return self._bank.remaining_runtime_at(power_watts, self._units(active))

    def carry(self, power_watts: float, duration: float, active: Optional[int]) -> float:
        return self._bank.discharge(power_watts, duration, self._units(active))

    def drain_rate(self, power_watts: float, active: Optional[int]) -> float:
        if power_watts <= 0:
            return 0.0
        per_unit = min(
            power_watts / self._units(active), self._bank.unit_spec.rated_power_watts
        )
        runtime = self._bank.unit_spec.runtime_at(per_unit)
        if runtime <= 0:
            # Zero-runtime packs: any load drains them instantly.
            return math.inf
        return 0.0 if math.isinf(runtime) else 1.0 / runtime

    @property
    def is_exhausted(self) -> bool:
        return self._bank.is_empty

    @property
    def state_of_charge(self) -> float:
        return self._bank.active_state_of_charge

    @property
    def energy_delivered_joules(self) -> float:
        return self._bank.energy_delivered_joules


class _OutageRun:
    """One simulation's mutable state (the simulator itself stays stateless)."""

    def __init__(
        self,
        datacenter: Datacenter,
        plan: OutagePlan,
        outage_seconds: float,
        lost_work_seconds: Optional[float],
        initial_state_of_charge: float = 1.0,
        dg_starts: bool = True,
        guard: Optional[InvariantGuard] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultDraw] = None,
    ):
        from repro.power.placement import UPSPlacement

        self.dc = datacenter
        self.plan = plan
        self.phases: List[PlanPhase] = list(plan.phases)
        self.T = float(outage_seconds)
        self.lost_work_seconds = lost_work_seconds
        self.guard = guard
        self.tracer = tracer
        self.metrics = metrics
        self.faults = faults
        self._phase_span = None
        self._last_source: Optional[SourceKind] = None
        if guard is not None:
            guard.check_soc(initial_state_of_charge, "initial state of charge")

        # Apply the outage's fault draw to the component specs before any
        # state is built: a faded battery is a different pack for the whole
        # run, not an event mid-way.  The fault-free path (faults None or
        # null) touches nothing.
        ups_spec = datacenter.ups
        run_limit: Optional[float] = None
        dg_starts_eff = dg_starts
        ats_ok = True
        extra_delay = 0.0
        self._psu_ok = True
        if faults is not None and not faults.is_null:
            if faults.battery_capacity_factor < 1.0:
                ups_spec = ups_spec.derated(faults.battery_capacity_factor)
                self._record_fault(
                    "battery_fade", factor=faults.battery_capacity_factor
                )
            run_limit = faults.dg_run_limit_seconds
            if not faults.dg_starts:
                dg_starts_eff = False
                self._record_fault("dg_start", t=0.0)
            if not faults.ats_transfer_ok:
                ats_ok = False
                self._record_fault("ats_transfer", t=0.0)
            if faults.ats_extra_delay_seconds > 0:
                extra_delay = faults.ats_extra_delay_seconds
                self._record_fault("ats_delay", extra_seconds=extra_delay)
            if not faults.psu_holdup_ok:
                self._psu_ok = False
                self._record_fault("psu_holdup", t=0.0)

        if not ups_spec.is_provisioned:
            self.ups = None
        elif ups_spec.placement is UPSPlacement.SERVER:
            self.ups = _ServerBackupStore(
                ups_spec,
                datacenter.cluster.num_servers,
                initial_state_of_charge,
                guard=guard,
            )
        else:
            self.ups = _PooledBackupStore(
                ups_spec,
                datacenter.cluster.num_servers,
                initial_state_of_charge,
                guard=guard,
            )
        self._initial_soc = initial_state_of_charge
        self.dg = DieselGenerator(datacenter.generator, run_limit_seconds=run_limit)
        # A failed ATS transfer strands the plant behind an open switch: the
        # engine may well start, the load never reaches it.
        dg_usable = datacenter.generator.is_provisioned and dg_starts_eff and ats_ok
        self.t_dg = (
            datacenter.generator.transfer_complete_seconds + extra_delay
            if dg_usable
            else math.inf
        )
        self._dg_usable = dg_usable
        self.normal_power = datacenter.normal_power_watts
        self.dg_full = dg_usable and self.dg.can_carry(self.normal_power)

        self.trace = PowerTrace()
        self.t = 0.0
        self.idx = 0
        self.phase_remaining = self._phase_duration_on_entry(0)

        self.crashed = False
        self.crash_time: Optional[float] = None
        self.restored_by_dg = False
        self.downtime_after = 0.0

    # -- observability ----------------------------------------------------------

    def _record_fault(self, kind: str, **attrs) -> None:
        """Make an injected-fault activation observable: a ``fault`` span
        event and a ``faults.<kind>`` counter bump (both no-ops when the
        respective sink is off)."""
        if self.tracer is not None:
            self.tracer.event("fault", kind=kind, **attrs)
        if self.metrics is not None:
            self.metrics.counter(f"faults.{kind}").inc()

    def _open_phase_span(self) -> None:
        """One span per technique-phase occupancy (manual begin/end because
        phase boundaries do not nest lexically with the main loop)."""
        phase = self.phases[self.idx]
        self._phase_span = self.tracer.start_span(
            "phase",
            "technique",
            phase=phase.name,
            technique=self.plan.technique_name,
            index=self.idx,
            t_enter=self.t,
        )

    def _close_phase_span(self) -> None:
        if self._phase_span is not None:
            self._phase_span.set("t_exit", self.t)
            self.tracer.end_span(self._phase_span)
            self._phase_span = None

    # -- phase bookkeeping ------------------------------------------------------

    def _phase_duration_on_entry(self, idx: int) -> float:
        phase = self.phases[idx]
        if phase.is_adaptive:
            return self._adaptive_hold(idx)
        return float(phase.duration_seconds)

    def _bridging_horizon(self) -> float:
        """Time until something other than the battery carries the day:
        utility restore, or a full-capacity DG taking over."""
        if self.dg_full:
            return min(self.T, self.t_dg)
        return self.T

    def _drain_rate(self, power_watts: float, active: Optional[int] = None) -> float:
        """Fractional state-of-charge consumed per second at ``power_watts``
        (0 for loads the battery never sees)."""
        if self.ups is None or power_watts <= 0:
            return 0.0
        return self.ups.drain_rate(power_watts, active)

    def _adaptive_hold(self, idx: int) -> float:
        """Solve how long the adaptive phase can run (module docstring)."""
        phase = self.phases[idx]
        horizon = self._bridging_horizon()
        remaining_window = horizon - self.t
        if remaining_window <= 0:
            return 0.0
        if self.ups is None:
            # No battery to ration: hold until the horizon (a DG must be
            # carrying the load, or the run will crash immediately anyway).
            return remaining_window

        fixed = self.phases[idx + 1 : -1]
        terminal = self.phases[-1]
        if any(p.is_adaptive or p.is_terminal for p in fixed):
            raise SimulationError("plan has multiple adaptive/terminal phases")

        soc = self.ups.state_of_charge * (1.0 - _RESERVE_SLACK)
        rate_hold = self._drain_rate(phase.power_watts, phase.active_servers)
        rate_save = self._drain_rate(terminal.power_watts, terminal.active_servers)
        committed_soc = sum(
            self._drain_rate(p.power_watts, p.active_servers) * float(p.duration_seconds)
            for p in fixed
        )
        committed_time = sum(float(p.duration_seconds) for p in fixed)
        return solve_hold_time(
            soc,
            rate_hold,
            rate_save,
            committed_soc,
            committed_time,
            remaining_window,
        )

    # -- source selection ---------------------------------------------------------

    def _source_for(
        self, power_watts: float, active: Optional[int] = None
    ) -> Optional[SourceKind]:
        """Who can carry ``power_watts`` right now; None means nobody."""
        if power_watts <= 0:
            return SourceKind.NONE
        if (
            self._dg_usable
            and self.t >= self.t_dg - _EPS
            and self.dg.can_carry(power_watts)
            and self.dg.fuel_energy_joules > 0
        ):
            return SourceKind.DG
        if (
            self.ups is not None
            and self.ups.can_carry(power_watts, active)
            and not self.ups.is_exhausted
        ):
            return SourceKind.UPS
        return None

    # -- main loop -------------------------------------------------------------------

    def execute(self) -> OutageOutcome:
        if self.tracer is not None:
            self._open_phase_span()
        # Section 3's seamlessness condition: the PSU hold-up must bridge
        # the offline UPS's switch-in gap, or the servers drop at the very
        # first instant despite the battery behind them.  (Default specs
        # are seamless — 30 ms hold-up vs 10 ms detection; an injected PSU
        # hold-up loss voids the bridge the same way.)
        if (
            not (self.dc.switchover_is_seamless and self._psu_ok)
            and self.phases[0].power_watts > 0
        ):
            self._crash(0.0)
            return self._outcome()
        while self.t < self.T - _EPS:
            if self.dg_full and self.t >= self.t_dg - _EPS:
                self._internal_dg_restore()
                break

            phase = self.phases[self.idx]
            source = self._source_for(phase.power_watts, phase.active_servers)
            if source is None:
                self._crash(self.t)
                break

            seg_end = self._segment_end(phase, source)
            self._advance(phase, source, seg_end)

            if self._dispatch_boundary(phase, source, seg_end):
                break

        if not self.crashed and not self.restored_by_dg and self.t >= self.T - _EPS:
            self._utility_restore()

        return self._outcome()

    def _segment_end(self, phase: PlanPhase, source: SourceKind) -> float:
        candidates = [self.T]
        if self._dg_usable and self.t < self.t_dg:
            candidates.append(self.t_dg)
        if not math.isinf(self.phase_remaining):
            candidates.append(self.t + self.phase_remaining)
        if source is SourceKind.UPS:
            assert self.ups is not None
            candidates.append(
                self.t
                + self.ups.remaining_runtime_at(
                    phase.power_watts, phase.active_servers
                )
            )
        if source is SourceKind.DG:
            candidates.append(self.t + self.dg.remaining_runtime_at(phase.power_watts))
        return min(candidates)

    def _advance(self, phase: PlanPhase, source: SourceKind, seg_end: float) -> None:
        duration = seg_end - self.t
        if duration < 0:
            raise SimulationError("segment moved backwards")
        self.trace.record(
            self.t,
            seg_end,
            phase.power_watts,
            phase.performance,
            source.value,
            phase.name,
        )
        if source is SourceKind.UPS:
            assert self.ups is not None
            if self.guard is not None:
                soc_before = self.ups.state_of_charge
                self.ups.carry(phase.power_watts, duration, phase.active_servers)
                self.guard.check_discharge_step(
                    soc_before,
                    self.ups.state_of_charge,
                    f"phase {phase.name!r} at t={self.t:.1f}s",
                )
            else:
                self.ups.carry(phase.power_watts, duration, phase.active_servers)
        elif source is SourceKind.DG:
            self.dg.carry(phase.power_watts, duration)
        if self.metrics is not None:
            if source is SourceKind.UPS:
                self.metrics.histogram("battery.soc").observe(
                    self.ups.state_of_charge
                )
                self.metrics.counter("battery.discharge_wh").inc(
                    phase.power_watts * duration / 3600.0
                )
            if duration > 0:
                self.metrics.histogram(
                    f"sim.phase_seconds[{phase.name}]"
                ).observe(duration)
        if self.tracer is not None and source is not self._last_source:
            self.tracer.event("source", t=self.t, source=source.value)
            self._last_source = source
        if not math.isinf(self.phase_remaining):
            self.phase_remaining -= duration
        self.t = seg_end

    def _dispatch_boundary(
        self, phase: PlanPhase, source: SourceKind, seg_end: float
    ) -> bool:
        """Handle whichever event ended the segment.  Returns True to stop."""
        if seg_end >= self.T - _EPS:
            return True  # outage over; restore handled by caller
        if self._dg_usable and abs(seg_end - self.t_dg) <= _EPS:
            if self.dg_full:
                self._internal_dg_restore()
                return True
            if self.phase_remaining > _EPS:
                return False  # source re-evaluated next iteration
            # The DG arrival coincides with a phase boundary (within
            # _EPS).  Fall through to the phase transition: returning
            # False here would re-enter this branch every iteration with
            # a zero-length segment and never advance — the infinite
            # loop the scalar/batch differential certification caught.
        if self.phase_remaining <= _EPS:
            self.idx += 1
            if self.idx >= len(self.phases):
                raise SimulationError("ran past the terminal phase")
            self.phase_remaining = self._phase_duration_on_entry(self.idx)
            if self.tracer is not None:
                self._close_phase_span()
                self._open_phase_span()
            return False
        # Otherwise the battery (or DG fuel / run budget) ran dry mid-phase.
        if source is SourceKind.DG and self.dg.tripped:
            # The injected run limit expired under load: the engine dies.
            # Strike the DG from the rest of the run and re-evaluate the
            # source — a still-charged UPS catches the load (that is what
            # an offline UPS is for); nobody left means a crash next turn.
            self._record_fault("dg_trip", t=self.t)
            self._dg_usable = False
            self.dg_full = False
            self.t_dg = math.inf
            return False
        if phase.state_safe:
            # State is parked safely; just wait out the outage at 0 W.
            if self.tracer is not None:
                self.tracer.event("backup-exhausted", t=self.t, phase=phase.name)
            self.phase_remaining = math.inf
            return False
        self._crash(seg_end)
        return True

    # -- terminal paths -----------------------------------------------------------------

    def _crash(self, when: float) -> None:
        if self.tracer is not None:
            self.tracer.event(
                "crash", t=float(when), phase=self.phases[self.idx].name
            )
        self.crashed = True
        self.crash_time = when
        # Remote serving (geo-failover) survives the local fleet's death.
        crash_perf = self.phases[self.idx].crash_performance
        dg_recovers = self.dg_full and not self.dg.tripped
        power_return = min(self.T, self.t_dg) if dg_recovers else self.T
        power_return = max(power_return, when)
        if dg_recovers and power_return < self.T and self.dg.run_limited:
            # A run-limited engine only counts as a mid-outage recovery
            # source if its remaining budget carries the fleet all the way
            # to utility restore; otherwise it would die mid-reboot, so we
            # conservatively book recovery from utility return instead.
            needed = self.T - power_return
            if self.dg.remaining_runtime_at(self.normal_power) < needed - _EPS:
                self._record_fault("dg_trip", t=power_return)
                self._dg_usable = False
                self.dg_full = False
                self.t_dg = math.inf
                power_return = self.T
        recovery = self.dc.workload.crash_downtime_after_restore_seconds(
            self.dc.cluster.spec, lost_work_seconds=self.lost_work_seconds
        )
        recovery_end = power_return + recovery
        if crash_perf > 0 and power_return > when:
            self.trace.record(
                when, power_return, 0.0, crash_perf,
                SourceKind.NONE.value, "degraded-after-local-loss",
            )
        if power_return < self.T:
            # Recovering (and then serving) on DG power inside the outage;
            # any remote serving keeps answering while the fleet reboots.
            boot_end = min(recovery_end, self.T)
            self.trace.record(
                power_return, boot_end, self.normal_power, crash_perf,
                SourceKind.DG.value, "crash-recovery",
            )
            self.dg.carry(self.normal_power, boot_end - power_return)
            if recovery_end < self.T:
                sustained = self.dg.carry(self.normal_power, self.T - recovery_end)
                self.trace.record(
                    recovery_end, recovery_end + sustained, self.normal_power, 1.0,
                    SourceKind.DG.value, "full-service-on-dg",
                )
            self.downtime_after = max(0.0, recovery_end - self.T) * (
                1.0 - crash_perf
            )
        else:
            # Recovery happens after utility restore; remote serving (if
            # any) degrades it from an outage to a slowdown.
            self.downtime_after = recovery * (1.0 - crash_perf)
        self.t = self.T

    def _internal_dg_restore(self) -> None:
        """A full-capacity DG takes over mid-outage: resume full service."""
        if self.tracer is not None:
            self.tracer.event(
                "dg-restore", t=self.t, phase=self.phases[self.idx].name
            )
        self.restored_by_dg = True
        phase = self.phases[self.idx]
        committed_remaining = 0.0
        if phase.committed and not math.isinf(self.phase_remaining):
            committed_remaining = max(0.0, self.phase_remaining)
        resume = phase.resume_downtime_seconds
        start = max(self.t, self.t_dg)

        # Finish the committed work, then walk the resume path, on DG power.
        # Each segment carries first and records what was actually
        # sustained: a run-limited engine (injected fail-while-running) can
        # die under any of them, at which point _dg_died books the abrupt
        # loss.  An unlimited engine always sustains in full — the default
        # 24 h fuel reserve never runs dry for the paper's outages — so the
        # fault-free trace is unchanged.
        commit_end = start + committed_remaining
        resume_end = commit_end + resume
        if committed_remaining > 0:
            seg_end = min(commit_end, self.T)
            if seg_end > start:
                wanted = seg_end - start
                sustained = self.dg.carry(
                    min(phase.power_watts, self.normal_power), wanted
                )
                if sustained > 0:
                    self.trace.record(
                        start, start + sustained, phase.power_watts,
                        phase.performance, SourceKind.DG.value,
                        f"{phase.name}-completing",
                    )
                if sustained < wanted - _EPS:
                    return self._dg_died(start + sustained)
        if resume > 0:
            seg_start = min(commit_end, self.T)
            seg_end = min(resume_end, self.T)
            if seg_end > seg_start:
                wanted = seg_end - seg_start
                sustained = self.dg.carry(self.normal_power, wanted)
                if sustained > 0:
                    self.trace.record(
                        seg_start, seg_start + sustained, self.normal_power,
                        0.0, SourceKind.DG.value, "resuming",
                    )
                if sustained < wanted - _EPS:
                    return self._dg_died(seg_start + sustained)
        if resume_end < self.T:
            wanted = self.T - resume_end
            sustained = self.dg.carry(self.normal_power, wanted)
            if sustained > 0:
                self.trace.record(
                    resume_end, resume_end + sustained, self.normal_power, 1.0,
                    SourceKind.DG.value, "full-service-on-dg",
                )
            if sustained < wanted - _EPS:
                return self._dg_died(resume_end + sustained)
        # Down time inside the outage window is read off the trace; only the
        # overflow past utility restore is booked separately.
        self.downtime_after = max(0.0, resume_end - self.T)
        self.t = self.T

    def _dg_died(self, when: float) -> None:
        """The engine dies while carrying the restored fleet (injected
        fail-while-running): abrupt power loss with the plan already
        retired, so the servers crash and recovery waits for utility."""
        self._record_fault("dg_trip", t=float(when))
        if self.tracer is not None:
            self.tracer.event("crash", t=float(when), phase="dg-carried")
        self._dg_usable = False
        self.dg_full = False
        self.t_dg = math.inf
        self.restored_by_dg = False
        self.crashed = True
        self.crash_time = when
        # Remote serving (geo-failover) survives the local fleet's death,
        # exactly as in _crash.
        crash_perf = self.phases[self.idx].crash_performance
        if crash_perf > 0 and self.T > when:
            self.trace.record(
                when, self.T, 0.0, crash_perf,
                SourceKind.NONE.value, "degraded-after-local-loss",
            )
        recovery = self.dc.workload.crash_downtime_after_restore_seconds(
            self.dc.cluster.spec, lost_work_seconds=self.lost_work_seconds
        )
        self.downtime_after = recovery * (1.0 - crash_perf)
        self.t = self.T

    def _utility_restore(self) -> None:
        """Utility returns at T with the plan still in control (no crash)."""
        phase = self.phases[self.idx]
        committed_remaining = 0.0
        if phase.committed and not math.isinf(self.phase_remaining):
            committed_remaining = max(0.0, self.phase_remaining)
        self.downtime_after = (
            committed_remaining * (1.0 - phase.performance)
            + phase.resume_downtime_seconds
        )

    # -- outcome assembly ------------------------------------------------------------------

    def _outcome(self) -> OutageOutcome:
        if self.tracer is not None:
            self._close_phase_span()
        downtime_during = self.trace.zero_performance_seconds(0.0, self.T)
        mean_perf = self.trace.mean_performance(0.0, self.T)
        charge_used = 0.0
        soc_end = 0.0
        ups_energy = 0.0
        if self.ups is not None:
            soc_end = self.ups.state_of_charge
            charge_used = self._initial_soc - soc_end
            ups_energy = self.ups.energy_delivered_joules
        outcome = OutageOutcome(
            technique_name=self.plan.technique_name,
            outage_seconds=self.T,
            crashed=self.crashed,
            crash_time_seconds=self.crash_time,
            state_preserved=not self.crashed,
            downtime_during_outage_seconds=downtime_during,
            downtime_after_restore_seconds=self.downtime_after,
            mean_performance=mean_perf,
            ups_charge_consumed=charge_used,
            ups_state_of_charge_end=soc_end,
            ups_energy_joules=ups_energy,
            dg_energy_joules=self.dg.spec.fuel_energy_joules
            - self.dg.fuel_energy_joules,
            peak_backup_power_watts=self.trace.peak_power_watts(),
            restored_by_dg=self.restored_by_dg,
            trace=self.trace,
        )
        if self.metrics is not None:
            self.metrics.counter("sim.outages").inc()
            self.metrics.counter("sim.downtime_seconds[during]").inc(
                max(0.0, downtime_during)
            )
            self.metrics.counter("sim.downtime_seconds[after]").inc(
                max(0.0, self.downtime_after)
            )
            if self.crashed:
                self.metrics.counter("sim.crashes").inc()
        if self.guard is not None:
            self.guard.check_outcome(outcome)
        return outcome
