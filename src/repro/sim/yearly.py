"""Multi-outage (schedule) simulation with cross-outage state.

Single-outage studies assume a fully charged battery and a willing diesel
engine; across a year, neither is guaranteed:

* a battery drained by one outage recharges over hours, so a back-to-back
  outage starts from partial charge, and
* a DG fails to start with some small probability each time it is called.

:class:`YearlyRunner` threads this state through an
:class:`~repro.outages.events.OutageSchedule`, producing per-event outcomes
plus a small aggregate; the availability analyzer builds its Monte-Carlo
statistics on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.checks.guard import InvariantGuard
from repro.errors import SimulationError
from repro.faults import FaultInjector
from repro.obs import current_metrics, current_tracer
from repro.outages.events import OutageEvent, OutageSchedule
from repro.power.ups import DEFAULT_RECHARGE_SECONDS
from repro.sim.datacenter import Datacenter
from repro.sim.metrics import OutageOutcome
from repro.sim.outage_sim import simulate_outage
from repro.techniques.base import OutagePlan


@dataclass(frozen=True)
class YearlyResult:
    """Outcomes of one schedule run.

    Attributes:
        outcomes: Per-event simulator outcomes, schedule order.
        events: The schedule's events (parallel to ``outcomes``).
        dg_start_failures: How many times the engine refused to start.
    """

    outcomes: Sequence[OutageOutcome]
    events: Sequence[OutageEvent]
    dg_start_failures: int

    @property
    def total_downtime_seconds(self) -> float:
        return sum(outcome.downtime_seconds for outcome in self.outcomes)

    @property
    def crashes(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.crashed)

    @property
    def worst_event_downtime_seconds(self) -> float:
        return max(
            (outcome.downtime_seconds for outcome in self.outcomes), default=0.0
        )


class YearlyRunner:
    """Runs outage schedules with battery-recharge and DG-reliability state.

    Args:
        datacenter: The facility under study.
        plan: The compiled outage plan executed at every event.  ``None``
            when ``policy`` drives the events instead.
        recharge_seconds: Full battery recharge time (linear refill between
            outages).
        rng: Source for DG start rolls (None -> deterministic: the engine
            always starts).
        strict: Install an :class:`~repro.checks.InvariantGuard` (unless one
            is supplied) so every event's outcome is invariant-checked;
            off (the default) costs nothing.
        guard: An explicit guard instance (implies strict checking);
            supply one with ``collect=True`` to gather violations instead
            of raising on the first.
        injector: Optional :class:`~repro.faults.FaultInjector` drawing one
            set of injected backup faults per outage event.  The injector
            consumes a fixed variate budget per draw regardless of what
            activates, so results stay deterministic for a given seed; None
            (the default) is the fault-free path.
        policy: Optional :class:`~repro.policy.OutagePolicy` consulted
            stepwise during every event instead of a precompiled plan.
            Mutually exclusive with ``plan``; the mode catalog is compiled
            once here and shared across the schedule's events.
    """

    def __init__(
        self,
        datacenter: Datacenter,
        plan: Optional[OutagePlan],
        recharge_seconds: float = DEFAULT_RECHARGE_SECONDS,
        rng: Optional[np.random.Generator] = None,
        strict: bool = False,
        guard: Optional[InvariantGuard] = None,
        injector: Optional[FaultInjector] = None,
        policy=None,
    ):
        if recharge_seconds <= 0:
            raise SimulationError("recharge_seconds must be positive")
        if (plan is None) == (policy is None):
            raise SimulationError("pass exactly one of plan and policy")
        self.datacenter = datacenter
        self.plan = plan
        self.policy = policy
        self.catalog = None
        if policy is not None:
            # Imported lazily: the plan path must not pay for the policy
            # subsystem.  Compiling once amortises the per-event cost.
            from repro.policy.catalog import ModeCatalog

            self.catalog = ModeCatalog.compile(datacenter)
        self.recharge_seconds = recharge_seconds
        self.rng = rng
        self.guard = guard if guard is not None else (
            InvariantGuard() if strict else None
        )
        self.injector = injector
        # Ambient observability, captured at construction (None = off).
        self._tracer = current_tracer()
        self._metrics = current_metrics()

    def _dg_starts(self) -> bool:
        generator = self.datacenter.generator
        if not generator.is_provisioned:
            return True  # vacuously; the simulator ignores it
        if self.rng is None or generator.start_reliability >= 1.0:
            return True
        return bool(self.rng.random() < generator.start_reliability)

    def run_schedule(self, schedule: OutageSchedule) -> YearlyResult:
        """Simulate every event of ``schedule`` in order.

        Raises:
            SimulationError: If the events are unordered or overlapping.
                (:class:`~repro.outages.events.OutageSchedule` validates
                this at construction, but any iterable of events is
                accepted here, so the runner re-checks rather than letting
                a negative recharge gap drive the state of charge below 0.)
        """
        if self._tracer is None:
            return self._run_schedule(schedule)
        technique = (
            self.plan.technique_name
            if self.plan is not None
            else f"policy:{self.policy.name}"
        )
        with self._tracer.span("schedule", "sim", technique=technique) as span:
            result = self._run_schedule(schedule)
            span.set("outages", len(result.outcomes))
            span.set("crashes", result.crashes)
            span.set("dg_start_failures", result.dg_start_failures)
            span.set("downtime_seconds", result.total_downtime_seconds)
            return result

    def _run_schedule(self, schedule: OutageSchedule) -> YearlyResult:
        if self.guard is not None:
            self.guard.check_schedule(schedule, context="run_schedule")
        outcomes: List[OutageOutcome] = []
        failures = 0
        soc = 1.0
        previous_end = -float("inf")
        for event in schedule:
            gap = event.start_seconds - previous_end
            if gap < 0:
                raise SimulationError(
                    f"schedule events must be ordered and non-overlapping: "
                    f"event at {event.start_seconds:g}s starts before the "
                    f"previous event ended at {previous_end:g}s"
                )
            # Clamp: a fully drained string plus float rounding in the
            # previous outcome must never push the next outage's initial
            # charge outside [0, 1].
            soc = min(1.0, max(0.0, soc + gap / self.recharge_seconds))
            dg_starts = self._dg_starts()
            if self.datacenter.generator.is_provisioned and not dg_starts:
                failures += 1
                if self._tracer is not None:
                    self._tracer.event(
                        "dg-start-failure", start_seconds=event.start_seconds
                    )
                if self._metrics is not None:
                    self._metrics.counter("sim.dg_start_failures").inc()
            draw = self.injector.draw() if self.injector is not None else None
            outcome = simulate_outage(
                self.datacenter,
                self.plan,
                event.duration_seconds,
                initial_state_of_charge=soc,
                dg_starts=dg_starts,
                guard=self.guard,
                faults=draw,
                policy=self.policy,
                catalog=self.catalog,
            )
            outcomes.append(outcome)
            if self.guard is not None:
                self.guard.check_discharge_step(
                    soc,
                    outcome.ups_state_of_charge_end,
                    f"event at {event.start_seconds:g}s",
                )
            soc = outcome.ups_state_of_charge_end
            previous_end = event.end_seconds
        return YearlyResult(
            outcomes=tuple(outcomes),
            events=tuple(schedule),
            dg_start_failures=failures,
        )
