"""Cross-validation utilities for the outage simulator.

The simulator computes two quantities in closed form that are easy to get
subtly wrong: the Peukert state-of-charge bookkeeping across piecewise
segments, and the adaptive-phase hold time (how long a hybrid can sustain
before transitioning to its save stage).  This module provides independent
brute-force implementations of both —

* :func:`numeric_battery_runtime` integrates the drain ODE with small time
  steps instead of using the closed form, and
* :func:`numeric_adaptive_hold` scans candidate hold times and replays the
  remaining phases against a fresh battery

— so the test suite can assert the fast paths agree with first principles.
They are deliberately slow and live outside the hot path.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import SimulationError
from repro.power.battery import Battery, BatterySpec


def numeric_battery_runtime(
    spec: BatterySpec,
    load_watts: float,
    step_seconds: float = 0.5,
    max_seconds: float = 1e6,
) -> float:
    """Runtime at a constant load via explicit small-step integration.

    Should agree with :meth:`BatterySpec.runtime_at` to within one step.
    """
    if step_seconds <= 0:
        raise SimulationError("step must be positive")
    battery = Battery(spec)
    elapsed = 0.0
    while not battery.is_empty and elapsed < max_seconds:
        sustained = battery.discharge(load_watts, step_seconds)
        elapsed += sustained
        if sustained < step_seconds:
            break
    return elapsed


def replay_phases(
    spec: BatterySpec,
    segments: Sequence[Tuple[float, float]],
) -> bool:
    """Whether a fresh battery survives ``(power, duration)`` segments."""
    battery = Battery(spec)
    for power, duration in segments:
        if power <= 0:
            continue
        sustained = battery.discharge(power, duration)
        if sustained < duration - 1e-9:
            return False
    return True


def numeric_adaptive_hold(
    spec: BatterySpec,
    hold_power_watts: float,
    committed: Sequence[Tuple[float, float]],
    save_power_watts: float,
    window_seconds: float,
    resolution_seconds: float = 1.0,
) -> float:
    """Longest hold time surviving the window, by scanning candidates.

    Mirrors the simulator's adaptive solve: hold at ``hold_power_watts`` for
    ``x``, execute the committed ``(power, duration)`` phases, then sit at
    ``save_power_watts`` for whatever remains of ``window_seconds``.
    Returns the largest feasible ``x`` on the scan grid (0 if none).
    """
    if resolution_seconds <= 0:
        raise SimulationError("resolution must be positive")
    committed_time = sum(duration for _, duration in committed)
    max_hold = max(0.0, window_seconds - committed_time)

    best = 0.0
    steps = int(max_hold / resolution_seconds)
    # steps + 2 so the final clamped candidate is max_hold itself even
    # when it is not a multiple of the resolution — otherwise a fully
    # feasible plan scans out at the last grid point below max_hold.
    for i in range(steps + 2):
        hold = min(max_hold, i * resolution_seconds)
        tail = max(0.0, window_seconds - hold - committed_time)
        segments: List[Tuple[float, float]] = [(hold_power_watts, hold)]
        segments.extend(committed)
        segments.append((save_power_watts, tail))
        if replay_phases(spec, segments):
            best = hold
    return best


def trace_energy_balance_error(trace, ups_energy_joules: float) -> float:
    """Relative mismatch between the trace's UPS-sourced energy integral and
    the battery's delivered-energy counter (should be ~0)."""
    integral = trace.energy_joules(source="ups")
    if max(integral, ups_energy_joules) <= 0:
        return 0.0
    return abs(integral - ups_energy_joules) / max(integral, ups_energy_joules)


def verify_peukert_consistency(
    spec: BatterySpec, loads_watts: Sequence[float], tolerance: float = 1e-6
) -> None:
    """Raise :class:`SimulationError` if split-discharge accounting diverges
    from the closed-form runtime at any probed load."""
    for load in loads_watts:
        closed = spec.runtime_at(load)
        if math.isinf(closed):
            continue
        battery = Battery(spec)
        half = battery.discharge(load, closed / 2)
        rest = battery.remaining_runtime_at(load)
        total = half + rest
        if abs(total - closed) > tolerance * closed:
            raise SimulationError(
                f"Peukert accounting inconsistent at {load} W: "
                f"{total} vs {closed}"
            )
