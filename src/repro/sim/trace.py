"""Power/performance traces: the simulator's Yokogawa power meter.

The paper's methodology records each experiment's power draw at fine
temporal resolution with an external meter and integrates it to derive the
required DG and UPS power and energy capacities.  Our simulator produces
piecewise-constant traces, so the trace is stored exactly (no sampling
error) as ordered segments and integrated in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class TraceSegment:
    """One piecewise-constant stretch of the experiment.

    Attributes:
        start_seconds: Segment start (relative to outage start).
        end_seconds: Segment end.
        power_watts: Aggregate draw from the *backup* infrastructure.
        performance: Normalised delivered throughput.
        source: Which source carried the load ("utility", "ups", "dg",
            "none").
        label: Phase name for reports.
    """

    start_seconds: float
    end_seconds: float
    power_watts: float
    performance: float
    source: str
    label: str

    def __post_init__(self) -> None:
        if self.end_seconds < self.start_seconds:
            raise SimulationError(
                f"segment ends before it starts: {self.start_seconds}..{self.end_seconds}"
            )

    @property
    def duration_seconds(self) -> float:
        return self.end_seconds - self.start_seconds

    @property
    def energy_joules(self) -> float:
        return self.power_watts * self.duration_seconds


class PowerTrace:
    """An append-only, time-ordered sequence of trace segments."""

    def __init__(self) -> None:
        self._segments: List[TraceSegment] = []

    def record(
        self,
        start_seconds: float,
        end_seconds: float,
        power_watts: float,
        performance: float,
        source: str,
        label: str,
    ) -> None:
        """Append a segment; zero-length segments are dropped silently."""
        if end_seconds <= start_seconds:
            return
        if self._segments and start_seconds < self._segments[-1].end_seconds - 1e-9:
            raise SimulationError(
                f"segment at {start_seconds} overlaps previous "
                f"(ends {self._segments[-1].end_seconds})"
            )
        self._segments.append(
            TraceSegment(
                start_seconds=start_seconds,
                end_seconds=end_seconds,
                power_watts=power_watts,
                performance=performance,
                source=source,
                label=label,
            )
        )

    def __iter__(self) -> Iterator[TraceSegment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __eq__(self, other: object) -> bool:
        # Value equality (two traces with the same segments are the same
        # measurement) so outcomes compare equal across process
        # boundaries — the runner's serial == parallel guarantee.
        if not isinstance(other, PowerTrace):
            return NotImplemented
        return self._segments == other._segments

    def __repr__(self) -> str:
        return (
            f"PowerTrace({len(self._segments)} segments, "
            f"0..{self.end_seconds:g}s)"
        )

    @property
    def segments(self) -> List[TraceSegment]:
        return list(self._segments)

    @property
    def end_seconds(self) -> float:
        return self._segments[-1].end_seconds if self._segments else 0.0

    # -- integrals ------------------------------------------------------------

    def energy_joules(self, source: Optional[str] = None) -> float:
        """Total energy, optionally restricted to one source."""
        return sum(
            s.energy_joules
            for s in self._segments
            if source is None or s.source == source
        )

    def peak_power_watts(self, source: Optional[str] = None) -> float:
        """Largest draw, optionally restricted to one source."""
        powers = [
            s.power_watts
            for s in self._segments
            if source is None or s.source == source
        ]
        return max(powers, default=0.0)

    def mean_performance(self, start_seconds: float, end_seconds: float) -> float:
        """Time-weighted mean performance over a window; time not covered by
        any segment counts as zero performance (not serving)."""
        if end_seconds <= start_seconds:
            raise SimulationError("window must have positive length")
        total = 0.0
        for seg in self._segments:
            lo = max(seg.start_seconds, start_seconds)
            hi = min(seg.end_seconds, end_seconds)
            if hi > lo:
                total += seg.performance * (hi - lo)
        return total / (end_seconds - start_seconds)

    def zero_performance_seconds(self, start_seconds: float, end_seconds: float) -> float:
        """Time within a window with zero delivered performance (down time);
        uncovered time counts as down."""
        if end_seconds <= start_seconds:
            return 0.0
        covered_up = 0.0
        covered_total = 0.0
        for seg in self._segments:
            lo = max(seg.start_seconds, start_seconds)
            hi = min(seg.end_seconds, end_seconds)
            if hi > lo:
                covered_total += hi - lo
                if seg.performance > 0:
                    covered_up += hi - lo
        window = end_seconds - start_seconds
        return (window - covered_total) + (covered_total - covered_up)

    def power_at(self, time_seconds: float) -> float:
        """Draw at an instant (0 outside any segment)."""
        for seg in self._segments:
            if seg.start_seconds <= time_seconds < seg.end_seconds:
                return seg.power_watts
        return 0.0
