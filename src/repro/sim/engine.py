"""A small discrete-event simulation engine.

The outage simulator's phases are piecewise-constant, so its core integrates
them in closed form; but multi-outage studies (yearly availability runs, the
adaptive-policy ablation, the examples) need ordered event scheduling with
cancellation.  This heap-based engine provides that: schedule callbacks at
absolute times, let handlers schedule further events, and run to quiescence
or a horizon.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.obs import current_metrics, current_tracer

Handler = Callable[["SimulationEngine"], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, sequence) so simultaneous
    events fire in scheduling order (deterministic runs)."""

    time_seconds: float
    sequence: int
    handler: Handler = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class SimulationEngine:
    """A classic event-heap simulator.

    Example::

        engine = SimulationEngine()
        engine.schedule(10.0, lambda eng: eng.schedule(5.0, noop, relative=True))
        engine.run()
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_processed = 0
        self.faults_fired = 0
        # Ambient observability, captured at construction (None = off).
        self._tracer = current_tracer()
        self._metrics = current_metrics()

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    def schedule(
        self,
        time_seconds: float,
        handler: Handler,
        label: str = "",
        relative: bool = False,
    ) -> Event:
        """Schedule ``handler`` at an absolute time (or ``now + time`` when
        ``relative``).  Returns the :class:`Event` for cancellation."""
        when = self._now + time_seconds if relative else time_seconds
        if when < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now {self._now}"
            )
        event = Event(
            time_seconds=max(when, self._now),
            sequence=next(self._counter),
            handler=handler,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def inject_fault(
        self,
        time_seconds: float,
        handler: Handler,
        label: str = "fault",
        relative: bool = False,
    ) -> Event:
        """Schedule a fault activation as an ordinary event.

        Event-driven studies arm injected failures (an engine trip, a
        breaker opening) with this instead of :meth:`schedule` so the
        activation is observable: when the event fires, a traced run
        records a ``fault`` span event and bumps the ``faults.engine``
        counter, and :attr:`faults_fired` counts it either way.  The
        closed-form outage simulator has its own equivalent hooks (see
        :mod:`repro.faults`); this one serves engine-based models.
        """

        def fire(engine: "SimulationEngine") -> None:
            engine.faults_fired += 1
            if self._tracer is not None:
                self._tracer.event("fault", t=engine.now, kind=label)
            if self._metrics is not None:
                self._metrics.counter("faults.engine").inc()
            handler(engine)

        return self.schedule(
            time_seconds, fire, label=f"fault:{label}", relative=relative
        )

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_seconds if self._heap else None

    def step(self) -> bool:
        """Process one event.  Returns False when the heap is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time_seconds
            self.events_processed += 1
            if self._tracer is not None and event.label:
                self._tracer.event(
                    "engine-event", t=event.time_seconds, label=event.label
                )
            event.handler(self)
            return True
        return False

    def run(self, until_seconds: Optional[float] = None) -> None:
        """Run to quiescence, or until simulation time would pass
        ``until_seconds`` (the clock is left at the horizon)."""
        if self._tracer is None:
            return self._run_loop(until_seconds)
        with self._tracer.span("engine.run", "sim") as span:
            self._run_loop(until_seconds)
            span.set("events_processed", self.events_processed)
            span.set("sim_now", self._now)

    def _run_loop(self, until_seconds: Optional[float] = None) -> None:
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until_seconds is not None and next_time > until_seconds:
                    self._now = until_seconds
                    break
                if not self.step():
                    break
        finally:
            self._running = False
