"""Continuous-bench ledger: BENCH_*.json history and a regression gate.

The repo's benchmarks each write a point-in-time artifact (BENCH_sim,
BENCH_serve, BENCH_policy) and until now every run overwrote the last —
the perf trajectory ROADMAP item 2 demands was never recorded.  This
module is the memory:

* :func:`record` ingests the current BENCH_*.json artifacts, extracts a
  small named-metric vector from each known shape, and appends one JSONL
  entry per artifact to ``BENCH_history.jsonl``;
* :func:`check` compares the newest entry per benchmark against a
  baseline (median of the preceding entries) and fails when any metric
  regresses past a tolerance *in its bad direction* — throughput only
  fails by falling, latency only by rising.

The gate is deliberately median-of-history, not previous-run: a single
noisy run neither poisons the baseline nor slips a real regression
through, which is the dependability-benchmarking stance (quantify, don't
assume) the source paper applies to power envelopes.

Everything is stdlib; the ledger is append-only JSONL and the loader
tolerates a torn final line (a crashed writer must not brick the gate).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from statistics import median
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObsError

#: Ledger schema version.
LEDGER_VERSION = 1

#: Default ledger filename, at the repo root next to the BENCH artifacts.
HISTORY_FILENAME = "BENCH_history.jsonl"

#: Artifacts the ledger knows how to ingest.
ARTIFACT_FILENAMES = (
    "BENCH_sim.json",
    "BENCH_serve.json",
    "BENCH_policy.json",
    "BENCH_fleet.json",
)

#: Fractional tolerance before a bad-direction move counts as a regression.
DEFAULT_TOLERANCE = 0.15

#: How many trailing history entries feed the median baseline.
BASELINE_DEPTH = 8


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: where it lives and which direction is bad."""

    name: str
    direction: str  # "higher" or "lower" is better
    extract: Callable[[Mapping[str, Any]], Optional[float]]

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ObsError("direction must be 'higher' or 'lower'")


def _path(*keys: str) -> Callable[[Mapping[str, Any]], Optional[float]]:
    def extract(payload: Mapping[str, Any]) -> Optional[float]:
        node: Any = payload
        for key in keys:
            if not isinstance(node, Mapping) or key not in node:
                return None
            node = node[key]
        try:
            return float(node)
        except (TypeError, ValueError):
            return None

    return extract


def _dominations(payload: Mapping[str, Any]) -> Optional[float]:
    doms = payload.get("dominations")
    return float(len(doms)) if isinstance(doms, list) else None


#: bench kind → (identifier predicate, metric roster).
_KINDS: Dict[str, Tuple[Callable[[Mapping[str, Any]], bool], Tuple[MetricSpec, ...]]] = {
    # The drill writes the same BENCH_serve.json file but measures a
    # deliberately different workload (sleep-shaped requests isolating
    # pool concurrency, plus chaos overhead), so it gates against its
    # own history stream — never against loadgen numbers.
    "serve-drill": (
        lambda p: p.get("bench") == "serve" and p.get("source") == "drill",
        (
            MetricSpec("throughput_rps", "higher", _path("throughput_rps")),
            MetricSpec("p99_ms", "lower", _path("latency_ms", "p99")),
            MetricSpec(
                "workers_speedup", "higher", _path("workers_speedup")
            ),
        ),
    ),
    "serve": (
        lambda p: p.get("bench") == "serve" and p.get("source") != "drill",
        (
            MetricSpec("throughput_rps", "higher", _path("throughput_rps")),
            MetricSpec("p99_ms", "lower", _path("latency_ms", "p99")),
        ),
    ),
    "sim": (
        lambda p: p.get("benchmark") == "scalar-vs-batch engine",
        (
            MetricSpec("speedup", "higher", _path("speedup")),
            MetricSpec("yearly_speedup", "higher", _path("yearly", "speedup")),
        ),
    ),
    "policy": (
        lambda p: p.get("benchmark") == "policy-smoke",
        (MetricSpec("dominations", "higher", _dominations),),
    ),
    "fleet": (
        lambda p: p.get("benchmark") == "fleet-smoke",
        (
            MetricSpec("dominations", "higher", _dominations),
            MetricSpec(
                "multi_site_gap", "higher", _path("correlation", "gap")
            ),
            MetricSpec(
                "years_per_second",
                "higher",
                _path("throughput", "years_per_second"),
            ),
        ),
    ),
}


def classify(payload: Mapping[str, Any]) -> Optional[str]:
    """Which known benchmark shape a BENCH_*.json payload is, if any."""
    for kind, (predicate, _) in _KINDS.items():
        if predicate(payload):
            return kind
    return None


def extract_metrics(payload: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """``{"bench", "metrics": {name: value}}`` for a known payload."""
    kind = classify(payload)
    if kind is None:
        return None
    metrics: Dict[str, float] = {}
    for spec in _KINDS[kind][1]:
        value = spec.extract(payload)
        if value is not None:
            metrics[spec.name] = value
    if not metrics:
        return None
    return {"bench": kind, "metrics": metrics}


def metric_direction(bench: str, metric: str) -> str:
    for spec in _KINDS.get(bench, (None, ()))[1]:
        if spec.name == metric:
            return spec.direction
    return "higher"


# -- ledger I/O ---------------------------------------------------------------


def load_history(path: str) -> List[Dict[str, Any]]:
    """All well-formed ledger entries, oldest first.

    A torn final line (interrupted append) is skipped silently; torn
    lines elsewhere raise, since they indicate corruption rather than a
    crashed writer.
    """
    if not os.path.exists(path):
        return []
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                continue
            raise ObsError(f"{path}:{i + 1}: corrupt ledger line")
        if isinstance(entry, dict) and "bench" in entry and "metrics" in entry:
            entries.append(entry)
    return entries


def record(
    root: str = ".",
    history_path: Optional[str] = None,
    now: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Ingest every known BENCH_*.json under ``root`` into the ledger.

    Returns the entries appended (possibly empty).  Each entry:
    ``{"v", "bench", "source", "recorded_unix", "metrics"}``.
    """
    history_path = history_path or os.path.join(root, HISTORY_FILENAME)
    stamp = time.time() if now is None else now
    appended: List[Dict[str, Any]] = []
    for filename in ARTIFACT_FILENAMES:
        path = os.path.join(root, filename)
        if not os.path.exists(path):
            continue
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ObsError(f"unreadable bench artifact {path}: {exc}") from exc
        extracted = extract_metrics(payload)
        if extracted is None:
            continue
        appended.append(
            {
                "v": LEDGER_VERSION,
                "bench": extracted["bench"],
                "source": filename,
                "recorded_unix": round(stamp, 3),
                "metrics": extracted["metrics"],
            }
        )
    if appended:
        with open(history_path, "a", encoding="utf-8") as fh:
            for entry in appended:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return appended


# -- regression gate ----------------------------------------------------------


@dataclass
class MetricVerdict:
    bench: str
    metric: str
    direction: str
    current: float
    baseline: Optional[float]
    delta_frac: Optional[float]
    status: str  # "ok" | "regression" | "no-baseline"


@dataclass
class CheckReport:
    tolerance: float
    verdicts: List[MetricVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "verdicts": [
                {
                    "bench": v.bench,
                    "metric": v.metric,
                    "direction": v.direction,
                    "current": v.current,
                    "baseline": v.baseline,
                    "delta_frac": v.delta_frac,
                    "status": v.status,
                }
                for v in self.verdicts
            ],
        }


def check(
    entries: Sequence[Mapping[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_depth: int = BASELINE_DEPTH,
) -> CheckReport:
    """Gate the newest entry per benchmark against its history median.

    For each benchmark present, the newest entry is "current" and the
    baseline per metric is the median of that metric over the preceding
    ``baseline_depth`` entries.  A metric regresses when it moves past
    ``tolerance`` (fractional) in its bad direction; good-direction
    moves of any size pass.  A metric with no prior history passes as
    ``no-baseline`` — the first recorded run seeds the trajectory.
    """
    if tolerance < 0:
        raise ObsError("tolerance must be >= 0")
    report = CheckReport(tolerance=tolerance)
    by_bench: Dict[str, List[Mapping[str, Any]]] = {}
    for entry in entries:
        by_bench.setdefault(str(entry["bench"]), []).append(entry)
    for bench in sorted(by_bench):
        history = by_bench[bench]
        current = history[-1]
        prior = history[:-1][-baseline_depth:]
        for metric, value in sorted(current["metrics"].items()):
            direction = metric_direction(bench, metric)
            prior_values = [
                float(e["metrics"][metric])
                for e in prior
                if metric in e.get("metrics", {})
            ]
            if not prior_values:
                report.verdicts.append(
                    MetricVerdict(
                        bench, metric, direction, float(value),
                        None, None, "no-baseline",
                    )
                )
                continue
            baseline = median(prior_values)
            if baseline == 0:
                delta = 0.0
            else:
                delta = (float(value) - baseline) / abs(baseline)
            bad = -delta if direction == "higher" else delta
            status = "regression" if bad > tolerance else "ok"
            report.verdicts.append(
                MetricVerdict(
                    bench, metric, direction, float(value),
                    baseline, round(delta, 6), status,
                )
            )
    return report


def format_report(report: CheckReport) -> str:
    """Human-oriented table for ``repro bench check``."""
    lines = [
        f"bench check (tolerance {report.tolerance:.0%}, "
        f"baseline = median of last {BASELINE_DEPTH})"
    ]
    for v in report.verdicts:
        if v.baseline is None:
            detail = "no baseline yet"
        else:
            arrow = "^" if (v.delta_frac or 0) >= 0 else "v"
            detail = (
                f"baseline {v.baseline:.3f} {arrow}{abs(v.delta_frac or 0):.1%}"
            )
        mark = {"ok": "ok ", "no-baseline": "new", "regression": "REG"}[v.status]
        lines.append(
            f"  [{mark}] {v.bench}.{v.metric} ({v.direction} better): "
            f"{v.current:.3f}  ({detail})"
        )
    lines.append("PASS" if report.ok else "FAIL: regression past tolerance")
    return "\n".join(lines)
