"""Prometheus text-format exposition (0.0.4) for registry snapshots.

``/metrics`` keeps its JSON snapshot as the default — JSON is what the
exact-merge tests and ``repro stats`` consume — but a scraper asking for
``text/plain`` gets this module's rendering instead: the same snapshot,
re-expressed in the Prometheus exposition grammar so the serve tier can
sit behind a stock Prometheus without an adapter process.

The mapping is mechanical and lossless where the grammar allows:

* metric names are sanitised to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` and
  prefixed ``repro_``; the registry's bracket idiom
  (``serve.requests[echo]`` / ``serve.queue[depth=3]``) becomes one
  *family* with a label (``repro_serve_requests_total{analysis="echo"}``),
  which is exactly what the idiom was standing in for;
* counters gain the conventional ``_total`` suffix;
* power-of-two-bin histograms render as cumulative ``_bucket`` series
  with ``le`` upper edges (the underflow bin maps to ``le="0"``), plus
  ``_sum``/``_count`` — an exact re-encoding, no quantile estimation;
* rolling-window summaries (sliding p50/p95/p99) render as ``summary``
  families with ``quantile`` labels, and SLO reports as gauges.

:func:`validate_prometheus_text` checks a rendering against the grammar
(HELP/TYPE well-formedness, sample-line syntax, bucket cumulativity,
``+Inf`` presence, duplicate detection) and is both a test oracle and a
CLI (``python -m repro.obs.prom dump.txt``).
"""

from __future__ import annotations

import math
import re
import sys
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ObsError
from repro.obs.metrics import _ZERO_BIN

#: Content type a conforming scraper sends and expects.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: (?P<ts>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
#: The registry's bracket idiom: ``base[label]`` or ``base[key=label]``.
_BRACKET = re.compile(r"^(?P<base>[^\[\]]+)\[(?P<inner>[^\[\]]+)\]$")


def _sanitize(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> str:
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _split_family(name: str) -> Tuple[str, Dict[str, str]]:
    """Map a registry name to (family, labels) via the bracket idiom."""
    match = _BRACKET.match(name)
    if not match:
        return _sanitize(f"repro_{name}"), {}
    base, inner = match.group("base"), match.group("inner")
    if "=" in inner:
        key, _, value = inner.partition("=")
        label_key = _sanitize(key.strip()).lstrip(":") or "label"
    else:
        # Bare bracket values are analysis names throughout the serve
        # tier (serve.requests[echo], serve.coalesced[yearly_cost]).
        label_key, value = "analysis", inner
    return _sanitize(f"repro_{base}"), {label_key: value.strip()}


def _sample(
    name: str, labels: Mapping[str, str], value: Any
) -> str:
    if labels:
        body = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Family:
    __slots__ = ("name", "kind", "help", "lines")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.lines: List[str] = []


def _histogram_lines(
    family: _Family, labels: Mapping[str, str], entry: Mapping[str, Any]
) -> None:
    """Exact re-encoding of power-of-two bins as cumulative buckets."""
    cumulative = 0
    for key, count in entry["bins"]:
        cumulative += int(count)
        edge = "0" if int(key) == _ZERO_BIN else _format_value(2.0 ** int(key))
        family.lines.append(
            _sample(f"{family.name}_bucket", {**labels, "le": edge}, cumulative)
        )
    family.lines.append(
        _sample(
            f"{family.name}_bucket", {**labels, "le": "+Inf"}, entry["count"]
        )
    )
    family.lines.append(_sample(f"{family.name}_sum", labels, entry["sum"]))
    family.lines.append(_sample(f"{family.name}_count", labels, entry["count"]))


def render_prometheus(
    snapshot: Mapping[str, Mapping[str, Any]],
    rolling: Optional[Mapping[str, Mapping[str, float]]] = None,
    slo_report: Optional[Mapping[str, Any]] = None,
    extra: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a registry snapshot (plus serve-side extras) as 0.0.4 text.

    ``rolling`` is a :meth:`RollingStats.summary` mapping, ``slo_report``
    an :meth:`SLOTracker.report`, ``extra`` plain name→gauge values
    (queue depth and friends).  Families are emitted name-sorted; bins
    and labels inside a family keep deterministic order, so the output
    is stable for a given input.
    """
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str, help_text: str) -> _Family:
        fam = families.get(name)
        if fam is None:
            fam = _Family(name, kind, help_text)
            families[name] = fam
        elif fam.kind != kind:
            raise ObsError(
                f"metric family {name!r} rendered as both "
                f"{fam.kind} and {kind}"
            )
        return fam

    for raw_name in sorted(snapshot):
        entry = snapshot[raw_name]
        kind = entry.get("type")
        base, labels = _split_family(raw_name)
        if kind == "counter":
            fam = family(
                f"{base}_total", "counter", f"repro counter {raw_name}"
            )
            fam.lines.append(_sample(fam.name, labels, entry["value"]))
        elif kind == "gauge":
            if entry["value"] is None:
                continue
            fam = family(base, "gauge", f"repro gauge {raw_name}")
            fam.lines.append(_sample(fam.name, labels, entry["value"]))
        elif kind == "histogram":
            fam = family(base, "histogram", f"repro histogram {raw_name}")
            _histogram_lines(fam, labels, entry)
        else:
            raise ObsError(f"unknown metric type {kind!r} for {raw_name!r}")

    if rolling:
        for raw_name in sorted(rolling):
            summary = rolling[raw_name]
            if not summary.get("count"):
                continue
            base, labels = _split_family(f"rolling.{raw_name}")
            fam = family(
                base, "summary", f"repro rolling window {raw_name}"
            )
            for q in ("p50", "p95", "p99"):
                fam.lines.append(
                    _sample(
                        fam.name,
                        {**labels, "quantile": f"0.{q[1:]}"},
                        summary[q],
                    )
                )
            fam.lines.append(
                _sample(f"{fam.name}_sum", labels,
                        summary["mean"] * summary["count"])
            )
            fam.lines.append(
                _sample(f"{fam.name}_count", labels, summary["count"])
            )

    if slo_report:
        burn = family(
            "repro_slo_burn_rate", "gauge",
            "error-budget burn rate per SLO and window (>1 = overspending)",
        )
        compliant = family(
            "repro_slo_compliant", "gauge",
            "1 when the SLO meets its objective over the window",
        )
        alerting = family(
            "repro_slo_alerting", "gauge",
            "1 when every window of the SLO burns budget faster than it accrues",
        )
        for slo_name in sorted(slo_report.get("slos", {})):
            slo = slo_report["slos"][slo_name]
            for window_name in sorted(slo["windows"]):
                window = slo["windows"][window_name]
                labels = {"slo": slo_name, "window": window_name}
                burn.lines.append(
                    _sample(burn.name, labels, window["burn_rate"])
                )
                compliant.lines.append(
                    _sample(
                        compliant.name, labels,
                        1 if window["compliant"] else 0,
                    )
                )
            alerting.lines.append(
                _sample(
                    alerting.name, {"slo": slo_name},
                    1 if slo["alerting"] else 0,
                )
            )

    if extra:
        for raw_name in sorted(extra):
            value = extra[raw_name]
            if value is None:
                continue
            base, labels = _split_family(raw_name)
            fam = family(base, "gauge", f"repro gauge {raw_name}")
            fam.lines.append(_sample(fam.name, labels, value))

    chunks: List[str] = []
    for name in sorted(families):
        fam = families[name]
        chunks.append(f"# HELP {fam.name} {fam.help}")
        chunks.append(f"# TYPE {fam.name} {fam.kind}")
        chunks.extend(fam.lines)
    return "\n".join(chunks) + "\n" if chunks else ""


# -- validation ---------------------------------------------------------------


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    out: Dict[str, str] = {}
    # Split on commas not inside quotes.
    parts, depth, start = [], False, 0
    for i, ch in enumerate(text):
        if ch == '"' and (i == 0 or text[i - 1] != "\\"):
            depth = not depth
        elif ch == "," and not depth:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    for part in parts:
        part = part.strip().rstrip(",")
        if not part:
            continue
        match = _LABEL_PAIR.match(part)
        if not match:
            raise ObsError(f"malformed label pair {part!r}")
        key = match.group("key")
        if key in out:
            raise ObsError(f"duplicate label {key!r}")
        out[key] = match.group("value")
    return out


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError as exc:
        raise ObsError(f"bad sample value {text!r}") from exc


def validate_prometheus_text(text: str) -> Dict[str, Any]:
    """Validate exposition text against the 0.0.4 grammar.

    Checks: HELP/TYPE comment well-formedness; at most one TYPE per
    family, appearing before its samples; every sample line parses;
    histogram families have a ``+Inf`` bucket with count == ``_count``
    and cumulative (non-decreasing) buckets per label set; no duplicate
    samples.  Returns a census (``families``, ``samples``, per-family
    kinds); raises :class:`ObsError` on the first violation.
    """
    types: Dict[str, str] = {}
    sampled: set = set()
    seen_families: set = set()
    samples = 0
    # histogram bookkeeping: family → label-key → list of (le, value)
    buckets: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    counts: Dict[str, Dict[str, float]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_OK.match(parts[2]):
                    raise ObsError(
                        f"line {lineno}: malformed {parts[1]} comment"
                    )
                if parts[1] == "TYPE":
                    name = parts[2]
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        raise ObsError(
                            f"line {lineno}: unknown TYPE {kind!r}"
                        )
                    if name in types:
                        raise ObsError(
                            f"line {lineno}: duplicate TYPE for {name}"
                        )
                    if name in seen_families:
                        raise ObsError(
                            f"line {lineno}: TYPE for {name} after samples"
                        )
                    types[name] = kind
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ObsError(f"line {lineno}: unparseable sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        samples += 1

        # Resolve the family: strip histogram/summary suffixes.
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[: -len(suffix)] if name.endswith(suffix) else None
            if stem and types.get(stem) in ("histogram", "summary"):
                base = stem
                break
        if base not in types:
            raise ObsError(f"line {lineno}: sample {name} has no TYPE")
        seen_families.add(base)

        dedup_key = (name, tuple(sorted(labels.items())))
        if dedup_key in sampled:
            raise ObsError(f"line {lineno}: duplicate sample {line!r}")
        sampled.add(dedup_key)

        if types[base] == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                raise ObsError(f"line {lineno}: bucket without le label")
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            buckets.setdefault(base, {}).setdefault(str(key), []).append(
                (_parse_value(labels["le"]), value)
            )
        if types[base] == "histogram" and name.endswith("_count"):
            key = tuple(sorted(labels.items()))
            counts.setdefault(base, {})[str(key)] = value

    for fam, per_labels in buckets.items():
        for key, series in per_labels.items():
            ordered = sorted(series, key=lambda p: p[0])
            if not ordered or not math.isinf(ordered[-1][0]):
                raise ObsError(f"{fam}: histogram missing le=\"+Inf\" bucket")
            last = -math.inf
            for _, v in ordered:
                if v < last:
                    raise ObsError(f"{fam}: buckets not cumulative")
                last = v
            fam_counts = counts.get(fam, {})
            if fam_counts:
                inf_value = ordered[-1][1]
                if all(c != inf_value for c in fam_counts.values()):
                    raise ObsError(
                        f"{fam}: +Inf bucket disagrees with _count"
                    )

    return {
        "families": len(types),
        "samples": samples,
        "types": dict(sorted(types.items())),
    }


def _main(argv: List[str]) -> int:
    """Validate exposition text from a file (or stdin with no args)."""
    if argv:
        with open(argv[0], "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()
    try:
        census = validate_prometheus_text(text)
    except ObsError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK: {census['families']} families, {census['samples']} samples"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(_main(sys.argv[1:]))
