"""Exporters: JSONL event logs, Chrome ``trace_event`` JSON, summary tables.

Three consumers, three formats:

* **JSONL** (``--metrics FILE``) — one JSON object per line: a ``meta``
  header, every finished span record, and one ``metrics`` snapshot.  This
  is the machine-readable archive; ``repro stats FILE`` renders it back
  into tables, and anything else (pandas, jq) can stream it.
* **Chrome trace JSON** (``--trace FILE``) — the ``trace_event`` format
  that ``chrome://tracing`` and https://ui.perfetto.dev open directly:
  complete (``"ph": "X"``) events for spans, instant (``"ph": "i"``)
  events for span events, and process-name metadata.  Worker spans carry
  their own pid, so a parallel run renders as one track per worker.
* **Summary tables** — the human digest: per-span-name counts and
  durations plus every metric, via the same fixed-width renderer the rest
  of the CLI uses.

:func:`validate_chrome_trace` is the schema check ``make trace-smoke`` and
the exporter tests share; it validates structure, not semantics.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RECORD_VERSION, Tracer

# -- JSONL event log -----------------------------------------------------------


def write_events_jsonl(
    path: str,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Write the session's spans + metrics as JSONL; returns line count."""
    lines = [{"type": "meta", "version": RECORD_VERSION}]
    if tracer is not None:
        for record in tracer.records:
            lines.append({"type": "span", **record})
    if metrics is not None:
        lines.append({"type": "metrics", "metrics": metrics.snapshot()})
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(json.dumps(line, sort_keys=True) + "\n")
    return len(lines)


def read_events_jsonl(
    path: str,
) -> Tuple[List[Dict[str, Any]], Dict[str, Dict[str, Any]]]:
    """Load a JSONL event log back into (span records, metrics snapshot)."""
    spans: List[Dict[str, Any]] = []
    metrics: Dict[str, Dict[str, Any]] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ObsError(f"{path}:{lineno}: not JSON: {exc}") from exc
            kind = obj.pop("type", None)
            if kind == "span":
                spans.append(obj)
            elif kind == "metrics":
                merged = MetricsRegistry()
                merged.merge(metrics)
                merged.merge(obj.get("metrics", {}))
                metrics = merged.snapshot()
            elif kind not in ("meta",):
                raise ObsError(f"{path}:{lineno}: unknown record type {kind!r}")
    return spans, metrics


# -- Chrome trace_event JSON ---------------------------------------------------


def chrome_trace_events(
    records: Sequence[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Convert span records to ``trace_event`` dicts.

    Timestamps are rebased to the earliest record so the viewer opens at
    t=0 instead of the Unix epoch; microsecond units per the spec.
    """
    if not records:
        return []
    epoch = min(float(r["ts"]) for r in records)
    events: List[Dict[str, Any]] = []
    pids = set()
    for record in records:
        pid = int(record["pid"])
        tid = int(record["tid"])
        pids.add(pid)
        ts_us = (float(record["ts"]) - epoch) * 1e6
        args = dict(record.get("attrs", {}))
        args["span_id"] = record["span_id"]
        if record.get("parent_id"):
            args["parent_id"] = record["parent_id"]
        events.append(
            {
                "name": record["name"],
                "cat": record.get("cat") or "repro",
                "ph": "X",
                "ts": ts_us,
                "dur": float(record["dur"]) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for inner in record.get("events", ()):
            events.append(
                {
                    "name": inner["name"],
                    "cat": record.get("cat") or "repro",
                    "ph": "i",
                    "ts": (float(inner["ts"]) - epoch) * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": dict(inner.get("attrs", {})),
                }
            )
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return events


def write_chrome_trace(path: str, tracer: Tracer) -> int:
    """Write the tracer's spans as a Chrome trace file; returns event count."""
    events = chrome_trace_events(tracer.records)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(events)


def validate_chrome_trace(
    trace: Union[str, Mapping[str, Any], Sequence[Any]]
) -> Dict[str, int]:
    """Structural schema check of a ``trace_event`` document.

    Accepts a file path, the parsed JSON object form, or the bare event
    array form.  Raises :class:`~repro.errors.ObsError` on the first
    problem; returns ``{"events", "spans", "instants", "pids"}`` counts.
    """
    if isinstance(trace, str):
        with open(trace, "r", encoding="utf-8") as fh:
            try:
                trace = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ObsError(f"trace file is not JSON: {exc}") from exc
    if isinstance(trace, Mapping):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            raise ObsError("object-form trace needs a 'traceEvents' array")
    elif isinstance(trace, Sequence):
        events = list(trace)
    else:
        raise ObsError(f"trace must be an object or array, got {type(trace)}")

    spans = instants = 0
    pids = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, Mapping):
            raise ObsError(f"{where}: not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ObsError(f"{where}: missing phase field 'ph'")
        if not isinstance(event.get("name"), str):
            raise ObsError(f"{where}: missing 'name'")
        if not isinstance(event.get("pid"), int):
            raise ObsError(f"{where}: missing integer 'pid'")
        pids.add(event["pid"])
        if ph in ("X", "i", "B", "E"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ObsError(f"{where}: 'ts' must be a number >= 0")
            if not isinstance(event.get("tid"), int):
                raise ObsError(f"{where}: missing integer 'tid'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ObsError(f"{where}: complete event needs 'dur' >= 0")
            spans += 1
        elif ph == "i":
            instants += 1
    return {
        "events": len(events),
        "spans": spans,
        "instants": instants,
        "pids": len(pids),
    }


# -- human summary -------------------------------------------------------------


def span_tree_paths(
    records: Sequence[Mapping[str, Any]]
) -> List[str]:
    """Each record's ``/``-joined name path from its root (for tests and
    grouping): ``runner.run/job/outage/phase``."""
    by_id = {r["span_id"]: r for r in records}
    paths = []
    for record in records:
        parts = [record["name"]]
        seen = {record["span_id"]}
        parent = record.get("parent_id")
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            node = by_id[parent]
            parts.append(node["name"])
            parent = node.get("parent_id")
        paths.append("/".join(reversed(parts)))
    return paths


def render_summary(
    spans: Sequence[Mapping[str, Any]],
    metrics: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> str:
    """Render the human digest: span timings by name, then every metric."""
    # Local import: analysis pulls in the simulation stack, which is itself
    # instrumented with repro.obs — a module-level import would be circular.
    from repro.analysis.report import format_table

    groups: Dict[Tuple[str, str], List[float]] = {}
    for record in spans:
        key = (record["name"], record.get("cat") or "")
        groups.setdefault(key, []).append(float(record["dur"]))
    rows = []
    for (name, cat), durs in sorted(
        groups.items(), key=lambda kv: -sum(kv[1])
    ):
        total = sum(durs)
        rows.append(
            (
                name,
                cat,
                len(durs),
                f"{total:.3f}",
                f"{total / len(durs) * 1e3:.2f}",
                f"{max(durs) * 1e3:.2f}",
            )
        )
    parts = [
        format_table(
            ("span", "cat", "count", "total s", "mean ms", "max ms"),
            rows,
            title=f"spans ({len(spans)} records)",
        )
    ]
    if metrics:
        metric_rows = []
        for name in sorted(metrics):
            entry = metrics[name]
            kind = entry["type"]
            if kind in ("counter", "gauge"):
                value = entry["value"]
                detail = "-" if value is None else f"{value:.6g}"
            else:
                count = entry["count"]
                mean = entry["sum"] / count if count else 0.0
                detail = (
                    f"n={count} mean={mean:.4g} "
                    f"min={entry['min']:.4g} max={entry['max']:.4g}"
                    if count
                    else "n=0"
                )
            metric_rows.append((name, kind, detail))
        parts.append(
            format_table(("metric", "type", "value"), metric_rows, title="metrics")
        )
    return "\n\n".join(parts)
