"""repro.obs: spans, metrics and trace export across the simulation stack.

The paper's methodology is instrumentation — a power meter samples every
experiment so demand and downtime can be attributed to technique phases.
This package gives the reproduction the same visibility over its own
execution:

* :mod:`repro.obs.tracer` — a context-propagating :class:`Tracer` whose
  spans wrap executor runs, jobs, outages and technique phases, with
  process-safe ids so pool workers ship their span trees back to the
  coordinator;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and magnitude-binned histograms with deterministic
  snapshot/merge semantics (bit-identical aggregates at any worker
  count);
* :mod:`repro.obs.export` — JSONL event logs, Chrome/Perfetto
  ``trace_event`` JSON, and the human summary ``repro stats`` renders;
* :mod:`repro.obs.telemetry` — serving-side telemetry: request ids,
  per-request span trees in a bounded store, and rolling-window
  p50/p95/p99 alongside the deterministic cumulative bins;
* :mod:`repro.obs.slo` — declarative latency/shed/error SLOs with
  multi-window error-budget burn;
* :mod:`repro.obs.prom` — Prometheus text-format exposition (and its
  grammar validator) for ``/metrics`` content negotiation;
* :mod:`repro.obs.bench` — the BENCH_history.jsonl ledger and the
  ``repro bench check`` regression gate.

**The off switch is the default.**  Instrumented classes capture the
*ambient* session at construction time (:func:`current_tracer` /
:func:`current_metrics`, both ``None`` unless :func:`activate` ran), and
every hot-path hook is a single ``if self._tracer is None`` check — a run
without ``--trace``/``--metrics`` executes the exact pre-instrumentation
code path.  ``benchmarks/bench_obs_overhead.py`` holds that contract to
measurement.

Quickstart::

    from repro import obs
    from repro.obs.export import write_chrome_trace

    with obs.session() as s:
        report = analyzer.analyze(config, technique, years=20, jobs=4)
    write_chrome_trace("trace.json", s.tracer)      # open in Perfetto
    print(s.metrics.snapshot()["battery.discharge_wh"])
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ObsError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_bins,
)
from repro.obs.slo import DEFAULT_SLOS, SLOSpec, SLOTracker, parse_slo
from repro.obs.telemetry import (
    REQUEST_ID_HEADER,
    RequestTrace,
    RollingStats,
    RollingWindow,
    Telemetry,
    TelemetryStore,
    new_request_id,
    span_tree,
)
from repro.obs.tracer import RECORD_VERSION, Span, Tracer


@dataclass
class ObsSession:
    """One observability session: a tracer plus a metrics registry.

    Sessions are what gets activated as the process-wide ambient context;
    pool workers build a private one per job and ship its contents back.
    """

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


#: The process-wide ambient session (None = observability off, the default).
_ACTIVE: Optional[ObsSession] = None


def activate(session: Optional[ObsSession] = None) -> ObsSession:
    """Install ``session`` (or a fresh one) as the ambient context.

    Instrumentation constructed *after* this call records into it; code
    constructed before stays dark.  Activating over an active session is
    an error — nest with :func:`session` instead.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise ObsError(
            "an observability session is already active; deactivate() first"
        )
    _ACTIVE = session if session is not None else ObsSession()
    return _ACTIVE


def deactivate() -> Optional[ObsSession]:
    """Remove the ambient session (idempotent); returns what was active."""
    global _ACTIVE
    session, _ACTIVE = _ACTIVE, None
    return session


def current() -> Optional[ObsSession]:
    """The ambient session, or None when observability is off."""
    return _ACTIVE


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or None — what instrumented constructors capture."""
    return _ACTIVE.tracer if _ACTIVE is not None else None


def current_metrics() -> Optional[MetricsRegistry]:
    """The ambient metrics registry, or None when observability is off."""
    return _ACTIVE.metrics if _ACTIVE is not None else None


@contextmanager
def session(existing: Optional[ObsSession] = None) -> Iterator[ObsSession]:
    """Activate a session for the body of a ``with`` block.

    The deactivation is unconditional, so an exception inside the block
    never leaks an ambient session into unrelated code (or other tests).
    """
    active = activate(existing)
    try:
        yield active
    finally:
        deactivate()


__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "RECORD_VERSION",
    "REQUEST_ID_HEADER",
    "RequestTrace",
    "RollingStats",
    "RollingWindow",
    "SLOSpec",
    "SLOTracker",
    "Span",
    "Telemetry",
    "TelemetryStore",
    "Tracer",
    "activate",
    "current",
    "current_metrics",
    "current_tracer",
    "deactivate",
    "new_request_id",
    "parse_slo",
    "quantile_from_bins",
    "session",
    "span_tree",
]
