"""Metrics: counters, gauges and histograms with deterministic merging.

The registry exists to answer aggregate questions a span timeline cannot
("how many watt-hours did the batteries deliver across this sweep?", "how
often did a guard fire?") without forcing every consumer to walk the trace.
Instrumented code records into whichever registry was ambient when it was
constructed; parallel workers record into private registries whose
snapshots the executor merges back **in job submission order**, so a run's
final metrics are bit-identical at any worker count:

* counters and histograms merge commutatively (sums, bin adds, min/max);
* gauges take the last merged write, and because merging follows submission
  order, "last" is the same job everywhere.

Histograms keep count/sum/min/max plus power-of-two magnitude bins — enough
for latency attribution and SoC distributions at a few dozen bytes per
metric, with an exactly mergeable representation (no quantile sketches).
Snapshots additionally carry a derived ``summary`` (mean plus p50/p95/p99
estimated from the bins) so consumers like ``/metrics`` get quantiles
without reimplementing the bin geometry; the raw bins stay alongside for
exact-merge semantics.

All mutation and snapshotting is lock-protected, so one registry can be
shared between the threaded HTTP server's handler threads without torn
counters; the determinism story is unchanged (merges still happen in job
submission order, single-threaded).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObsError

#: Bin key for non-positive observations (histograms bin by magnitude).
_ZERO_BIN = -(2**15)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError("counters only go up; use a gauge for level values")
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins level value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


def quantile_from_bins(
    bins: Sequence[Tuple[int, int]],
    count: int,
    q: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> float:
    """Estimate the ``q``-quantile of a power-of-two-binned distribution.

    ``bins`` is the snapshot form (sorted ``[key, count]`` pairs); bin
    ``k`` covers ``(2**(k-1), 2**k]`` and the underflow bin holds every
    non-positive observation.  The estimate interpolates linearly inside
    the covering bin and clamps to the observed ``[lo, hi]`` when known —
    deterministic, and exact at the observed extremes.
    """
    if count <= 0:
        return 0.0
    position = q * count  # continuous rank in (0, count]
    cumulative = 0
    value = 0.0
    for key, n in bins:
        if n <= 0:
            continue
        if key == _ZERO_BIN:
            low_edge = high_edge = min(0.0, lo) if lo is not None else 0.0
        else:
            low_edge, high_edge = 2.0 ** (key - 1), 2.0**key
        if cumulative + n >= position:
            fraction = (position - cumulative) / n
            value = low_edge + fraction * (high_edge - low_edge)
            break
        cumulative += n
        value = high_edge
    if lo is not None:
        value = max(value, lo)
    if hi is not None:
        value = min(value, hi)
    return value


class Histogram:
    """count/sum/min/max plus power-of-two magnitude bins.

    An observation ``v > 0`` lands in bin ``ceil(log2(v))`` (the bucket
    ``(2**(k-1), 2**k]``); non-positive observations share one underflow
    bin.  Bins merge by addition, so any partition of the observations
    over workers reproduces the same histogram.
    """

    __slots__ = ("count", "sum", "min", "max", "bins", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bins: Dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ObsError("cannot observe NaN")
        key = _ZERO_BIN if value <= 0 else int(math.ceil(math.log2(value)))
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            self.bins[key] = self.bins.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metrics with get-or-create access and mergeable snapshots."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind()
                self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise ObsError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A picklable, JSON-able, name-sorted dump of every metric.

        Histogram entries carry the raw bins (the exact-merge
        representation) *and* a derived ``summary`` — mean plus
        p50/p95/p99 estimated from the bins — so JSON consumers get
        usable latency figures without decoding bin keys.  The summary
        is a pure function of the mergeable fields, so merged snapshots
        stay bit-identical at any worker count.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            else:
                with metric._lock:
                    count = metric.count
                    total = metric.sum
                    lo = metric.min if count else None
                    hi = metric.max if count else None
                    bins: List[Tuple[int, int]] = sorted(metric.bins.items())
                out[name] = {
                    "type": "histogram",
                    "count": count,
                    "sum": total,
                    "min": lo,
                    "max": hi,
                    "bins": [[k, c] for k, c in bins],
                    "summary": {
                        "mean": total / count if count else 0.0,
                        "p50": quantile_from_bins(bins, count, 0.50, lo, hi),
                        "p95": quantile_from_bins(bins, count, 0.95, lo, hi),
                        "p99": quantile_from_bins(bins, count, 0.99, lo, hi),
                    },
                }
        return out

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold another registry's snapshot into this one.

        Call in a deterministic order (the executor merges by job
        submission index) and the merged registry is identical for every
        worker count.
        """
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).value += float(entry["value"])
            elif kind == "gauge":
                if entry["value"] is not None:
                    self.gauge(name).set(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(name)
                hist.count += int(entry["count"])
                hist.sum += float(entry["sum"])
                if entry["min"] is not None:
                    hist.min = min(hist.min, float(entry["min"]))
                if entry["max"] is not None:
                    hist.max = max(hist.max, float(entry["max"]))
                for key, count in entry["bins"]:
                    key = int(key)
                    hist.bins[key] = hist.bins.get(key, 0) + int(count)
            else:
                raise ObsError(f"unknown metric type {kind!r} for {name!r}")
