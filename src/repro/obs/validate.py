"""Validate a Chrome ``trace_event`` file from the command line.

``make trace-smoke`` (and the CI job behind it) runs a tiny traced sweep
and then::

    python -m repro.obs.validate trace.json

which exits 0 with a one-line census when the file is structurally valid
``trace_event`` JSON, and 1 with the first schema problem otherwise.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.errors import ObsError
from repro.obs.export import validate_chrome_trace


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE.json", file=sys.stderr)
        return 2
    path = argv[0]
    try:
        census = validate_chrome_trace(path)
    except (OSError, ObsError) as exc:
        print(f"INVALID {path}: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK {path}: {census['events']} events "
        f"({census['spans']} spans, {census['instants']} instants, "
        f"{census['pids']} process{'es' if census['pids'] != 1 else ''})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
