"""Request-scoped telemetry: rolling windows and retrievable span trees.

:mod:`repro.obs.tracer` answers "what did this *process* spend its time
on"; this module answers the serving questions the paper's methodology
demands of production systems — *what happened to this one request*, and
*what do the tails look like right now*:

* :class:`RollingWindow` / :class:`RollingStats` — fixed-ring sliding
  windows over the last N seconds giving honest p50/p95/p99 (computed
  from the actual samples, not cumulative bins), per endpoint and per
  analysis.  They deliberately complement — not replace — the
  deterministic cumulative histograms in :mod:`repro.obs.metrics`.
* :func:`new_request_id` — process-unique request ids minted at
  admission and returned in the ``X-Repro-Request-Id`` response header.
* :class:`RequestTrace` / :class:`TelemetryStore` — per-request span
  records (the same plain-dict shape :class:`~repro.obs.tracer.Tracer`
  produces, so they export through the same machinery) kept in a
  bounded ring; one request id retrieves the full
  admission→batch→execute→reduce tree via :func:`span_tree`.
* :class:`Telemetry` — the bundle the serve tier threads through its
  hooks.  The PR-3 contract holds: a disabled server passes ``None``
  and every hook is a single ``is None`` check.

Nothing in this module touches the simulation stack: rolling windows and
request traces live on the serving side only, so worker-count
bit-identical metrics are unaffected.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ObsError
from repro.obs.slo import SLOTracker

#: Response header carrying the request id minted at admission.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

_REQUEST_COUNTER = itertools.count(1)


def new_request_id() -> str:
    """A process-unique request id: ``req-<pid hex>-<counter hex>-<rand>``.

    The random suffix keeps ids unique across server restarts sharing a
    PID; the counter keeps them unique (and roughly ordered) within one.
    """
    return (
        f"req-{os.getpid():x}-{next(_REQUEST_COUNTER):x}"
        f"-{os.urandom(3).hex()}"
    )


class RollingWindow:
    """A fixed-ring sliding window of (timestamp, value) samples.

    The ring bounds memory (``max_samples``); the window bounds time.
    Percentiles are computed from the surviving samples directly —
    nearest-rank, the same convention the load generator reports — so a
    quiet minute after a noisy one actually *looks* quiet, which
    cumulative histograms can never show.
    """

    __slots__ = ("window_s", "max_samples", "_samples", "_lock")

    def __init__(self, window_s: float = 60.0, max_samples: int = 4096) -> None:
        if window_s <= 0:
            raise ObsError("window_s must be positive")
        if max_samples < 1:
            raise ObsError("max_samples must be >= 1")
        self.window_s = window_s
        self.max_samples = max_samples
        self._samples: List[tuple] = []  # (t, value), append-ordered
        self._lock = threading.Lock()

    def observe(self, value: float, now: Optional[float] = None) -> None:
        t = time.monotonic() if now is None else now
        with self._lock:
            self._samples.append((t, float(value)))
            if len(self._samples) > self.max_samples:
                del self._samples[: len(self._samples) - self.max_samples]

    def _live(self, now: Optional[float]) -> List[float]:
        t = time.monotonic() if now is None else now
        horizon = t - self.window_s
        with self._lock:
            # Drop expired samples in place so the ring never retains
            # more than one window of dead weight.
            cut = 0
            for cut, (ts, _) in enumerate(self._samples):
                if ts >= horizon:
                    break
            else:
                cut = len(self._samples)
            if cut:
                del self._samples[:cut]
            return [v for _, v in self._samples]

    def summary(self, now: Optional[float] = None) -> Dict[str, float]:
        """``{count, mean, p50, p95, p99, max}`` over the live window."""
        values = sorted(self._live(now))
        if not values:
            return {"count": 0}
        n = len(values)

        def rank(q: float) -> float:
            return values[max(0, min(n - 1, int(round(q * (n - 1)))))]

        return {
            "count": n,
            "mean": sum(values) / n,
            "p50": rank(0.50),
            "p95": rank(0.95),
            "p99": rank(0.99),
            "max": values[-1],
        }


class RollingStats:
    """Named rolling windows with get-or-create access (thread-safe)."""

    def __init__(self, window_s: float = 60.0, max_samples: int = 4096) -> None:
        self.window_s = window_s
        self.max_samples = max_samples
        self._windows: Dict[str, RollingWindow] = {}
        self._lock = threading.Lock()

    def window(self, name: str) -> RollingWindow:
        with self._lock:
            win = self._windows.get(name)
            if win is None:
                win = RollingWindow(self.window_s, self.max_samples)
                self._windows[name] = win
            return win

    def observe(self, name: str, value: float, now: Optional[float] = None) -> None:
        self.window(name).observe(value, now=now)

    def summary(self, now: Optional[float] = None) -> Dict[str, Dict[str, float]]:
        with self._lock:
            windows = dict(self._windows)
        return {
            name: windows[name].summary(now) for name in sorted(windows)
        }


class RequestTrace:
    """One request's span records, built as the request moves through serve.

    Records use the exact shape :class:`~repro.obs.tracer.Tracer`
    produces (name/cat/span_id/parent_id/pid/tid/ts/dur/attrs/events),
    so a stored trace can be exported as Chrome ``trace_event`` JSON or
    re-rendered by ``repro stats`` with zero adaptation.  The root span
    is opened at admission and closed by :meth:`finish`.
    """

    def __init__(self, request_id: str, analysis: str, **attrs: Any) -> None:
        self.request_id = request_id
        self.analysis = analysis
        self._counter = itertools.count(1)
        self._pid = os.getpid()
        self._started_unix = time.time()
        self._started_perf = time.perf_counter()
        self.records: List[Dict[str, Any]] = []
        self.root_id = self.add_span(
            "request", ts=self._started_unix, dur=0.0, parent_id=None,
            analysis=analysis, request_id=request_id, **attrs,
        )

    def _next_id(self) -> str:
        return f"{self.request_id}-{next(self._counter):x}"

    def add_span(
        self,
        name: str,
        ts: float,
        dur: float,
        parent_id: Optional[str] = "root",
        **attrs: Any,
    ) -> str:
        """Append one finished span; ``parent_id="root"`` hangs it off the
        request root.  Returns the new span id."""
        span_id = self._next_id()
        if parent_id == "root":
            parent_id = getattr(self, "root_id", None)
        self.records.append(
            {
                "name": name,
                "cat": "serve",
                "span_id": span_id,
                "parent_id": parent_id,
                "pid": self._pid,
                "tid": 0,
                "ts": ts,
                "dur": float(dur),
                "attrs": dict(attrs),
                "events": [],
            }
        )
        return span_id

    def set_root(self, **attrs: Any) -> None:
        """Attach attributes to the root request span."""
        self.records[0]["attrs"].update(attrs)

    def finish(self, outcome: str) -> Dict[str, Any]:
        """Close the root span and return the storable trace dict."""
        root = self.records[0]
        root["dur"] = time.perf_counter() - self._started_perf
        root["attrs"]["outcome"] = outcome
        return {
            "request_id": self.request_id,
            "analysis": self.analysis,
            "outcome": outcome,
            "spans": self.records,
        }


def span_tree(records: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Nest flat span records into a parent→children tree (roots returned).

    Children keep record order.  Records whose parent is missing from
    the set are treated as roots, so partial traces still render.
    """
    nodes = {
        r["span_id"]: {**r, "children": []} for r in records
    }
    roots: List[Dict[str, Any]] = []
    for record in records:
        node = nodes[record["span_id"]]
        parent = record.get("parent_id")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots


class TelemetryStore:
    """A bounded ring of finished request traces, keyed by request id.

    Oldest-evicted at ``capacity``; lookups build the nested span tree
    on demand.  The store is the backing of ``GET /trace/<id>`` — a
    request id from a response header retrieves the admission→batch→
    execute→reduce tree for as long as the trace survives the ring.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ObsError("capacity must be >= 1")
        self.capacity = capacity
        self._traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def put(self, trace: Mapping[str, Any]) -> None:
        with self._lock:
            self._traces[trace["request_id"]] = dict(trace)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, request_id: str) -> Optional[Dict[str, Any]]:
        """The stored trace plus its nested ``tree``, or None."""
        with self._lock:
            trace = self._traces.get(request_id)
            if trace is None:
                return None
            trace = dict(trace)
        trace["tree"] = span_tree(trace["spans"])
        return trace

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)


class Telemetry:
    """The serve tier's telemetry bundle: traces + rolling stats + SLOs.

    One instance per server; the batcher and HTTP front end hold either
    this or ``None`` (telemetry disabled) and guard every hook with one
    ``is None`` check — the same discipline as the simulation hooks.
    """

    def __init__(
        self,
        trace_capacity: int = 256,
        window_s: float = 60.0,
        slo: Optional[SLOTracker] = None,
    ) -> None:
        self.store = TelemetryStore(capacity=trace_capacity)
        self.rolling = RollingStats(window_s=window_s)
        self.slo = slo if slo is not None else SLOTracker()

    def record_request(
        self,
        endpoint: str,
        analysis: Optional[str],
        outcome: str,
        latency_ms: float,
    ) -> None:
        """Fold one finished HTTP request into rolling stats and SLOs."""
        self.rolling.observe(f"latency_ms[endpoint={endpoint}]", latency_ms)
        if analysis:
            self.rolling.observe(f"latency_ms[analysis={analysis}]", latency_ms)
        self.rolling.observe(
            "shed", 1.0 if outcome == "shed" else 0.0
        )
        self.slo.record(outcome, latency_ms)

    def shed_rate(self) -> Optional[float]:
        """Rolling shed fraction over the window (None with no traffic)."""
        summary = self.rolling.window("shed").summary()
        if not summary.get("count"):
            return None
        return summary["mean"]

    def rolling_p99_ms(self, endpoint: str = "/v1/eval") -> Optional[float]:
        summary = self.rolling.window(
            f"latency_ms[endpoint={endpoint}]"
        ).summary()
        return summary.get("p99")
