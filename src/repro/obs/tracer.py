"""Spans: the paper's power meter turned inward.

The paper attributes demand and downtime to *phases* of each technique by
sampling every experiment with an external power meter (Section 6).  This
module is the software equivalent: a context-propagating tracer whose spans
wrap the simulation stack — one span per executor run, per job, per outage,
per technique phase — so a slow sweep cell or a drifting availability number
can be attributed to the exact stretch of simulated work that produced it.

Design constraints, in priority order:

* **Zero overhead when off.**  Nothing here runs unless a caller activated
  an observability session (:func:`repro.obs.activate`); every instrumented
  hot path guards its hook with one ``if tracer is None`` check captured at
  construction time.
* **Process-safe identity.**  Span ids embed the producing PID plus a
  per-tracer counter, so records shipped back from pool workers never
  collide with coordinator spans and re-parenting is a pure id rewrite.
* **Picklable records.**  Finished spans are plain dicts (name, category,
  ids, wall-clock start, duration, attributes, instant events) so workers
  return them alongside job values with no custom reduction.

Timestamps are wall-clock (``time.time()``) for cross-process alignment in
Chrome/Perfetto; durations are measured with ``time.perf_counter`` so they
do not jitter with clock adjustments.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import ObsError

#: Span record schema version, stamped into JSONL exports.
RECORD_VERSION = 1


class Span:
    """One live span.  Finished spans become plain dict records.

    Attributes are write-only from the instrumented code's point of view:
    :meth:`set` attaches a key/value, :meth:`event` appends an instant
    event inside the span's time range.  Spans are handed out by
    :class:`Tracer` — never construct one directly.
    """

    __slots__ = (
        "name",
        "category",
        "span_id",
        "parent_id",
        "pid",
        "tid",
        "start_unix",
        "_start_perf",
        "attrs",
        "events",
        "_finished",
    )

    def __init__(
        self,
        name: str,
        category: str,
        span_id: str,
        parent_id: Optional[str],
        pid: int,
        tid: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.pid = pid
        self.tid = tid
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        self.attrs = attrs
        self.events: List[Dict[str, Any]] = []
        self._finished = False

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant event inside this span."""
        self.events.append(
            {"name": name, "ts": time.time(), "attrs": dict(attrs)}
        )

    def _finish(self) -> Dict[str, Any]:
        self._finished = True
        return {
            "name": self.name,
            "cat": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "ts": self.start_unix,
            "dur": time.perf_counter() - self._start_perf,
            "attrs": self.attrs,
            "events": self.events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id!r})"


class Tracer:
    """Collects spans into an in-memory sink of plain dict records.

    The tracer keeps one span stack per thread (``threading.local``), so
    :meth:`current` and the parent links of new spans always reflect the
    calling thread's own nesting; the record sink itself is shared and
    lock-protected.

    The manual :meth:`start_span`/:meth:`end_span` pair exists for state
    machines whose span boundaries do not nest lexically (the outage
    simulator's phase transitions); everything else should prefer the
    :meth:`span` context manager.
    """

    #: Process-wide tracer instance counter.  Span ids embed it next to the
    #: PID so two tracers in the same process (the coordinator's and a
    #: per-job session's) can never mint colliding ids — a collision would
    #: corrupt parent links when one tracer ingests the other's records.
    _INSTANCES = itertools.count(1)

    def __init__(self) -> None:
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._local = threading.local()
        self._tids: Dict[int, int] = {}
        self.pid = os.getpid()
        self._token = f"{self.pid:x}-{next(Tracer._INSTANCES):x}"

    # -- identity -------------------------------------------------------------

    def _next_id(self) -> str:
        return f"{self._token}-{next(self._counter):x}"

    def _tid(self) -> int:
        """A small, stable per-thread integer (Chrome traces want ints)."""
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids) + 1)
        return tid

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- span lifecycle -------------------------------------------------------

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread (None outside any)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start_span(self, name: str, category: str = "", **attrs: Any) -> Span:
        """Open a span as a child of the current one and make it current."""
        parent = self.current()
        span = Span(
            name=name,
            category=category,
            span_id=self._next_id(),
            parent_id=parent.span_id if parent is not None else None,
            pid=self.pid,
            tid=self._tid(),
            attrs=dict(attrs),
        )
        self._stack().append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` (and any forgotten children still open inside it)."""
        stack = self._stack()
        if span not in stack:
            raise ObsError(
                f"cannot end span {span.name!r}: not open on this thread"
            )
        finished = []
        while stack:
            top = stack.pop()
            finished.append(top._finish())
            if top is span:
                break
        with self._lock:
            # Children were popped first; store outermost-first so record
            # order follows span start order within the burst.
            self._records.extend(reversed(finished))

    @contextmanager
    def span(self, name: str, category: str = "", **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("outage", "sim", technique=...) as s: ...``"""
        span = self.start_span(name, category, **attrs)
        try:
            yield span
        finally:
            self.end_span(span)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant event on the current span.

        Outside any span the event still lands in the sink as a standalone
        zero-duration record, so guard violations fired from un-spanned
        code paths are never dropped.
        """
        current = self.current()
        if current is not None:
            current.event(name, **attrs)
            return
        record = {
            "name": name,
            "cat": "event",
            "span_id": self._next_id(),
            "parent_id": None,
            "pid": self.pid,
            "tid": self._tid(),  # may take the lock — stay outside it here
            "ts": time.time(),
            "dur": 0.0,
            "attrs": dict(attrs),
            "events": [],
        }
        with self._lock:
            self._records.append(record)

    # -- sink access ----------------------------------------------------------

    @property
    def records(self) -> List[Dict[str, Any]]:
        """A copy of every finished span record (picklable plain dicts)."""
        with self._lock:
            return list(self._records)

    def ingest(
        self,
        records: Sequence[Dict[str, Any]],
        parent_id: Optional[str] = None,
    ) -> None:
        """Adopt records produced by another tracer (a pool worker).

        Root records (``parent_id is None``) are re-parented under
        ``parent_id`` so worker span trees hang off the coordinator span
        that dispatched them.
        """
        adopted = []
        for record in records:
            if parent_id is not None and record.get("parent_id") is None:
                record = dict(record)
                record["parent_id"] = parent_id
            adopted.append(record)
        with self._lock:
            self._records.extend(adopted)
