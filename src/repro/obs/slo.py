"""Declarative SLOs with multi-window error-budget burn.

The paper's core discipline is that tail behaviour must be *quantified*
— Figure 1(b) is a distribution, Table 3 an availability target — and a
serving tier inherits the same obligation: "the service is fine" means
a stated objective, measured over stated windows, with the budget spent
so far visible.  This module is that statement:

* :class:`SLOSpec` — one declarative objective.  Three kinds:
  ``latency`` (a request is *good* when it completed OK within
  ``threshold_ms``), ``shed_rate`` (good = admitted, not 429-shed) and
  ``error_rate`` (good = did not fail server-side).
* :class:`SLOTracker` — records request outcomes and computes, per SLO
  and per window, the bad fraction, remaining error budget, and the
  **burn rate** (bad fraction ÷ allowed fraction; >1 means the budget
  is being spent faster than it accrues).  Windows default to the
  classic fast/slow pair (5 min, 1 h): an SLO is ``alerting`` only when
  *every* window burns >1, which filters blips without missing slow
  leaks (the multi-window, multi-burn-rate alert shape).

The tracker is serving-side state — nothing here participates in the
deterministic metrics merge.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Sequence, Tuple

from repro.errors import ObsError

#: Request outcomes the tracker understands.
OUTCOMES = ("ok", "shed", "error")

#: The fast/slow window pair (seconds) used when a spec names none.
DEFAULT_WINDOWS_S: Tuple[float, ...] = (300.0, 3600.0)


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    Attributes:
        name: Stable identifier (appears in ``/slo`` and Prometheus).
        kind: ``latency`` | ``shed_rate`` | ``error_rate``.
        objective: Target good fraction in (0, 1), e.g. ``0.99``.
        threshold_ms: For ``latency`` only — the bound a good request
            completes within.
        windows_s: Evaluation windows, seconds, fast to slow.
    """

    name: str
    kind: str
    objective: float
    threshold_ms: Optional[float] = None
    windows_s: Tuple[float, ...] = DEFAULT_WINDOWS_S

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "shed_rate", "error_rate"):
            raise ObsError(
                f"unknown SLO kind {self.kind!r}; "
                "one of latency, shed_rate, error_rate"
            )
        if not 0.0 < self.objective < 1.0:
            raise ObsError("SLO objective must be in (0, 1)")
        if self.kind == "latency":
            if self.threshold_ms is None or self.threshold_ms <= 0:
                raise ObsError("latency SLOs need a positive threshold_ms")
        elif self.threshold_ms is not None:
            raise ObsError(f"{self.kind} SLOs take no threshold_ms")
        if not self.windows_s or any(w <= 0 for w in self.windows_s):
            raise ObsError("windows_s must be positive")

    def classify(self, outcome: str, latency_ms: float) -> Optional[bool]:
        """Good (True), bad (False), or not counted (None) for this SLO."""
        if self.kind == "latency":
            if outcome == "ok":
                return latency_ms <= self.threshold_ms
            if outcome == "error":
                return False  # a failed request is not a fast one
            return None  # sheds never entered evaluation
        if self.kind == "shed_rate":
            return outcome != "shed"
        return outcome != "error"  # error_rate counts sheds as good


def parse_slo(spec: str) -> SLOSpec:
    """Parse ``kind[:threshold_ms]:objective[@win1,win2]`` into a spec.

    Examples::

        latency:500:0.99        # 99% of OK requests within 500 ms
        shed_rate:0.99          # at most 1% shed
        error_rate:0.999@60,600 # custom fast/slow windows (seconds)
    """
    text = spec.strip()
    windows = DEFAULT_WINDOWS_S
    if "@" in text:
        text, _, window_text = text.partition("@")
        try:
            windows = tuple(float(w) for w in window_text.split(",") if w)
        except ValueError as exc:
            raise ObsError(f"bad SLO windows in {spec!r}") from exc
    parts = [p for p in text.split(":") if p]
    if not parts:
        raise ObsError(f"empty SLO spec {spec!r}")
    kind = parts[0]
    try:
        if kind == "latency":
            if len(parts) != 3:
                raise ObsError(
                    f"latency SLO needs 'latency:<threshold_ms>:<objective>', "
                    f"got {spec!r}"
                )
            return SLOSpec(
                name=f"latency_{parts[1]}ms",
                kind="latency",
                objective=float(parts[2]),
                threshold_ms=float(parts[1]),
                windows_s=windows,
            )
        if len(parts) != 2:
            raise ObsError(
                f"{kind} SLO needs '{kind}:<objective>', got {spec!r}"
            )
        return SLOSpec(
            name=kind, kind=kind, objective=float(parts[1]), windows_s=windows
        )
    except ValueError as exc:
        raise ObsError(f"bad number in SLO spec {spec!r}") from exc


#: The default roster a telemetry-enabled server tracks.
DEFAULT_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec(name="latency_500ms", kind="latency", objective=0.99,
            threshold_ms=500.0),
    SLOSpec(name="shed_rate", kind="shed_rate", objective=0.99),
    SLOSpec(name="error_rate", kind="error_rate", objective=0.999),
)


@dataclass
class _Event:
    t: float
    outcome: str
    latency_ms: float


class SLOTracker:
    """Shared event ring + per-SLO multi-window budget arithmetic.

    One bounded deque of (time, outcome, latency) events backs every
    SLO; a report walks the ring once per SLO per window.  Event count
    is bounded by ``max_events`` and age by the longest window, so a
    long-lived server's tracker stays flat.
    """

    def __init__(
        self,
        slos: Sequence[SLOSpec] = DEFAULT_SLOS,
        max_events: int = 65536,
    ) -> None:
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ObsError(f"duplicate SLO names: {sorted(names)}")
        self.slos: Tuple[SLOSpec, ...] = tuple(slos)
        self.max_events = max_events
        self._events: Deque[_Event] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self._horizon = max(
            (w for s in self.slos for w in s.windows_s), default=3600.0
        )

    def record(
        self, outcome: str, latency_ms: float = 0.0, now: Optional[float] = None
    ) -> None:
        if outcome not in OUTCOMES:
            raise ObsError(
                f"unknown outcome {outcome!r}; one of {OUTCOMES}"
            )
        t = time.monotonic() if now is None else now
        with self._lock:
            self._events.append(_Event(t, outcome, float(latency_ms)))
            # Age-bound the ring so idle periods don't pin dead events.
            horizon = t - self._horizon
            while self._events and self._events[0].t < horizon:
                self._events.popleft()

    def report(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Per-SLO, per-window compliance and error-budget burn."""
        t = time.monotonic() if now is None else now
        with self._lock:
            events = list(self._events)
        out: Dict[str, Any] = {"slos": {}, "alerting": []}
        for spec in self.slos:
            allowed = 1.0 - spec.objective
            windows: Dict[str, Any] = {}
            burns: list = []
            for window_s in spec.windows_s:
                horizon = t - window_s
                total = bad = 0
                for event in events:
                    if event.t < horizon:
                        continue
                    good = spec.classify(event.outcome, event.latency_ms)
                    if good is None:
                        continue
                    total += 1
                    bad += 0 if good else 1
                bad_fraction = bad / total if total else 0.0
                burn = bad_fraction / allowed if allowed > 0 else 0.0
                burns.append(burn if total else 0.0)
                windows[f"{window_s:g}s"] = {
                    "events": total,
                    "bad": bad,
                    "bad_fraction": round(bad_fraction, 6),
                    "budget_remaining": round(
                        1.0 - (bad_fraction / allowed) if allowed else 0.0, 6
                    ),
                    "burn_rate": round(burn, 4),
                    "compliant": bad_fraction <= allowed,
                }
            alerting = bool(burns) and all(b > 1.0 for b in burns)
            out["slos"][spec.name] = {
                "kind": spec.kind,
                "objective": spec.objective,
                "threshold_ms": spec.threshold_ms,
                "windows": windows,
                "alerting": alerting,
            }
            if alerting:
                out["alerting"].append(spec.name)
        return out
