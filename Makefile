# Developer entry points.  Everything runs from the repo root with the
# in-tree package on PYTHONPATH — no install step required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# One cached-vs-uncached sweep through repro.runner: populates a fresh
# on-disk ResultCache, reruns, and fails unless the second pass is
# served entirely from cache with identical results.
bench-smoke:
	$(PYTHON) benchmarks/bench_smoke.py
