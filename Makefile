# Developer entry points.  Everything runs from the repo root with the
# in-tree package on PYTHONPATH — no install step required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke selfcheck

test:
	$(PYTHON) -m pytest -x -q

# Fast invariant sweep: closed forms vs numeric oracles over the Table-3
# space, plus a short guarded fuzz run (see docs/CHECKS.md).
selfcheck:
	$(PYTHON) -m repro.cli selfcheck --fast

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# One cached-vs-uncached sweep through repro.runner: populates a fresh
# on-disk ResultCache, reruns, and fails unless the second pass is
# served entirely from cache with identical results.
bench-smoke:
	$(PYTHON) benchmarks/bench_smoke.py
