# Developer entry points.  Everything runs from the repo root with the
# in-tree package on PYTHONPATH — no install step required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke batch-smoke bench-obs selfcheck trace-smoke chaos-smoke serve-smoke policy-smoke telemetry-smoke drill-smoke fleet-smoke

test:
	$(PYTHON) -m pytest -x -q

# Fast invariant sweep: closed forms vs numeric oracles over the Table-3
# space, plus a short guarded fuzz run (see docs/CHECKS.md).
selfcheck:
	$(PYTHON) -m repro.cli selfcheck --fast

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# One cached-vs-uncached sweep through repro.runner (cache gate), then
# the same outage cells through both engines (scaling gate): the batch
# kernel must be bit-identical to the scalar path and clear a 10x
# cells/sec speedup.  Writes BENCH_sim.json; CI uploads it as an
# artifact.
bench-smoke:
	$(PYTHON) benchmarks/bench_smoke.py

# Certify the vectorized engine: every registered technique over the
# Table-3 grid, full Monte-Carlo years at a mid-study block split, and
# a seeded bounded scalar<->batch differential fuzz run — all
# bit-identical (see docs/BATCH.md).
batch-smoke:
	$(PYTHON) benchmarks/batch_smoke.py

# Holds repro.obs's zero-overhead-when-off contract to measurement
# (see docs/OBSERVABILITY.md).
bench-obs:
	$(PYTHON) benchmarks/bench_obs_overhead.py

# A tiny traced availability run across 2 workers, schema-validated as
# Chrome trace_event JSON and rendered back through `repro stats`.
# CI uploads the resulting trace-smoke.json as an artifact.
trace-smoke:
	$(PYTHON) -m repro.cli availability -w specjbb -c LargeEUPS -t sleep-l \
		--years 3 --jobs 2 \
		--trace trace-smoke.json --metrics trace-smoke.jsonl
	$(PYTHON) -m repro.obs.validate trace-smoke.json
	$(PYTHON) -m repro.cli stats trace-smoke.jsonl

# Break the runner on purpose — worker kills, transient failures, cache
# corruption — over a fault-injected sweep, and fail unless every
# recovery path reproduces the undisturbed baseline bit-for-bit (see
# docs/FAULTS.md).  CI uploads chaos-smoke.json/.jsonl as an artifact;
# the trace records every fault activation as an event.
chaos-smoke:
	$(PYTHON) -m repro.cli chaos -w websearch -c MaxPerf -t full-service \
		--years 6 --jobs 2 --kills 1 --flaky 1 --corrupt 2 \
		--faults "dg_start=0.2,dg_mtbf_h=2,batt_fade=0.1" \
		--trace chaos-smoke.json --metrics chaos-smoke.jsonl
	$(PYTHON) -m repro.obs.validate chaos-smoke.json

# Certify the evaluation service: CLI-vs-HTTP byte-identical payloads
# (shared result cache), duplicate-request coalescing, a clean closed-loop
# mixed workload under capacity, and visible 429 shedding when a burst
# oversubscribes a tiny queue (see docs/SERVE.md).  Writes
# BENCH_serve.json; CI uploads it as an artifact.
serve-smoke:
	$(PYTHON) benchmarks/serve_smoke.py

# Certify the serve observability layer against a live server: request
# ids round-trip to full span trees (coalesced riders name their
# leader), /healthz + /slo report rolling tails and error-budget burn,
# Prometheus exposition passes the grammar validator, and the bench
# ledger gate passes on the real trajectory while failing on an
# injected regression (see docs/OBSERVABILITY.md).  Appends to
# BENCH_history.jsonl; CI uploads it as an artifact.  The ~3 s smoke
# loadgen samples are noisy, so the gate runs at a loose 50% tolerance
# here; the stricter 15% default suits longer local loadgen runs.
telemetry-smoke:
	$(PYTHON) benchmarks/telemetry_smoke.py
	$(PYTHON) -m repro.cli bench check --tolerance 0.5

# Chaos-certify the supervised serve tier: seeded worker SIGKILLs and
# cache corruption under load with bit-identical 2xx responses, a poison
# request quarantined without crash-looping the pool, brownout tiers
# entered in declared order and unwound, and a multi-worker scaling axis
# that must beat the single-process baseline (see docs/RESILIENCE.md).
# Writes drill-report.json + BENCH_serve.json and runs the bench-ledger
# gate; CI uploads both as artifacts.  The drill's short closed loops
# are noisy, so the gate runs at the loose smoke tolerance.
drill-smoke:
	$(PYTHON) -m repro.cli drill --report drill-report.json \
		--bench BENCH_serve.json
	$(PYTHON) -m repro.cli bench record
	$(PYTHON) -m repro.cli bench check --tolerance 0.5

# Certify the online-dispatch policy subsystem: StaticPolicy outcomes
# identical to the plan path, the hindsight baseline an upper bound on
# every online policy, and at least one adaptive policy strictly
# dominating a static Table-3 cell (see docs/POLICY.md).  Writes
# BENCH_policy.json; CI uploads it as an artifact.
policy-smoke:
	$(PYTHON) benchmarks/policy_smoke.py

# Certify the multi-site fleet subsystem: worker-count-invariant fleet
# years, the uncorrelated-fleet == independent-single-sites bit-identical
# regression, shock correlation strictly raising multi-site outage
# probability, and a fleet-frontier verdict where fleet-level
# provisioning dominates the best single-site Table-3 config (see
# docs/FLEET.md).  Writes BENCH_fleet.json and gates it as its own
# ledger stream; CI uploads both as artifacts.  The smoke's short
# Monte-Carlo runs are noisy, so the gate runs at the loose tolerance.
fleet-smoke:
	$(PYTHON) benchmarks/fleet_smoke.py
	$(PYTHON) -m repro.cli bench record
	$(PYTHON) -m repro.cli bench check --tolerance 0.5
